"""Concurrent queries under contention: the discrete-event simulator at work.

Run with::

    python examples/concurrent_workload.py

The script loads a small TPC-H dataset, then drives the same four-client
closed-loop workload (each client: submit a query, wait for its simulated
completion, think, repeat) through the ``repro.sim`` cluster simulator three
times:

1. queries alone,
2. queries with a background repartitioning stream competing for machines
   and the bounded repartitioning bandwidth,
3. the same, with repartitioning bandwidth doubled.

It prints per-query latency percentiles, queueing delay and machine
utilisation for each scenario — the contention effects the serial and
makespan models cannot express.  Everything is seeded: re-running the script
reproduces the numbers exactly.
"""

from __future__ import annotations

from repro import AdaptDBConfig, Session
from repro.common.rng import make_rng
from repro.sim import run_concurrent_workload
from repro.workloads import TPCHGenerator, tpch_query

NUM_CLIENTS = 4
QUERIES_PER_CLIENT = 4
TEMPLATES = ["q12", "q3", "q14", "q12"]


def build_session() -> Session:
    session = Session(AdaptDBConfig(rows_per_block=512, buffer_blocks=8, seed=1))
    tables = TPCHGenerator(scale=0.1, seed=1).generate(
        ["lineitem", "orders", "customer", "part"]
    )
    for table in tables.values():
        session.load_table(table)
    return session


def client_queries():
    rng = make_rng(77)
    return [
        [tpch_query(TEMPLATES[i % len(TEMPLATES)], rng) for i in range(QUERIES_PER_CLIENT)]
        for _ in range(NUM_CLIENTS)
    ]


def describe(label: str, report) -> None:
    stats = report.percentiles()
    utilisation = report.utilisation()
    print(f"\n{label}")
    print(f"  completed {len(report.queries)} queries in {report.finished_at:.1f} sim-s")
    print(
        "  latency  p50 {p50:8.1f}   p90 {p90:8.1f}   p99 {p99:8.1f}   "
        "mean {mean:8.1f}".format(**stats)
    )
    print(f"  mean queueing delay per query: {report.mean_queueing_seconds:8.1f} sim-s")
    print(f"  mean machine utilisation:      {sum(utilisation) / len(utilisation):8.1%}")


def main() -> None:
    print(f"Simulating {NUM_CLIENTS} closed-loop clients x {QUERIES_PER_CLIENT} queries "
          "(think time 20 sim-s) ...")

    report = run_concurrent_workload(
        build_session(), client_queries(), think_seconds=20.0, seed=5
    )
    describe("queries only", report)

    contended = run_concurrent_workload(
        build_session(), client_queries(), think_seconds=20.0, seed=5,
        background_repartition_blocks=200,
    )
    describe("with background repartitioning (bandwidth 2)", contended)

    relaxed = run_concurrent_workload(
        build_session(), client_queries(), think_seconds=20.0, seed=5,
        background_repartition_blocks=200, repartition_bandwidth=4,
    )
    describe("with background repartitioning (bandwidth 4)", relaxed)

    slowdown = (
        contended.percentiles()["p90"] / report.percentiles()["p90"]
        if report.percentiles()["p90"]
        else float("inf")
    )
    print(f"\nbackground repartitioning inflates p90 latency {slowdown:.2f}x; "
          "raising the repartition bandwidth lets the stream finish earlier "
          f"({relaxed.background_finished_at:.0f} vs "
          f"{contended.background_finished_at:.0f} sim-s) at the price of "
          "more query interference while it runs.")


if __name__ == "__main__":
    main()
