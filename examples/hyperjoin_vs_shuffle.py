"""Hyper-join internals: overlap matrices, block grouping, and the ILP optimum.

This example works at the level of the join machinery rather than the full
AdaptDB facade.  It reproduces Example 1 from the paper's introduction
(grouping three build blocks under a two-block memory budget), then runs the
bottom-up heuristic, the naive first-fit grouping, and the ILP on a larger
synthetic overlap structure, and finally executes a real hyper-join and
shuffle join on TPC-H data to compare their I/O.

Run with::

    python examples/hyperjoin_vs_shuffle.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptDB, AdaptDBConfig
from repro.join import (
    bottom_up_grouping,
    compute_overlap_matrix,
    first_fit_grouping,
    hyper_join,
    ilp_grouping,
    shuffle_join,
)
from repro.workloads import TPCHGenerator


def example_1_from_the_paper() -> None:
    """The 3x3 example of Section 1: grouping changes the probe cost from 6 to 5."""
    print("Example 1 (Section 1 of the paper)")
    overlap = np.array(
        [
            [1, 1, 0],  # A1 joins B1, B2
            [1, 1, 1],  # A2 joins B1, B2, B3
            [0, 1, 1],  # A3 joins B2, B3
        ],
        dtype=bool,
    )
    bad = first_fit_grouping(overlap[[0, 2, 1]], budget=2)       # {A1, A3}, {A2}
    good = bottom_up_grouping(overlap, budget=2)                  # {A1, A2}, {A3}
    print(f"  grouping {{A1,A3}},{{A2}} reads {bad.total_probe_reads} blocks of B")
    print(f"  bottom-up grouping reads {good.total_probe_reads} blocks of B "
          f"(groups: {good.groups})\n")


def grouping_algorithms_demo(num_build: int = 24, num_probe: int = 12, budget: int = 4) -> None:
    """Compare first-fit, bottom-up, and ILP groupings on a random overlap structure."""
    print(f"Grouping {num_build} build blocks against {num_probe} probe blocks (budget {budget})")
    rng = np.random.default_rng(3)
    centers = rng.uniform(0, 100, size=num_build)
    build_ranges = [(float(c), float(c + 15)) for c in centers]
    probe_edges = np.linspace(0, 115, num_probe + 1)
    probe_ranges = [(float(lo), float(hi)) for lo, hi in zip(probe_edges, probe_edges[1:])]
    overlap = compute_overlap_matrix(build_ranges, probe_ranges)

    naive = first_fit_grouping(overlap, budget)
    greedy = bottom_up_grouping(overlap, budget)
    optimal = ilp_grouping(overlap, budget, time_limit_seconds=10.0)
    print(f"  first-fit  : {naive.total_probe_reads} probe-block reads")
    print(f"  bottom-up  : {greedy.total_probe_reads} probe-block reads")
    print(f"  ILP optimum: {optimal.grouping.total_probe_reads} probe-block reads "
          f"(solved in {optimal.solve_seconds * 1000:.1f} ms, optimal={optimal.optimal})\n")


def real_join_demo() -> None:
    """Run an actual hyper-join and shuffle join over TPC-H blocks and compare I/O."""
    print("lineitem ⋈ orders on generated TPC-H data")
    db = AdaptDB(AdaptDBConfig(rows_per_block=512, enable_smooth=False, enable_amoeba=False))
    tables = TPCHGenerator(scale=0.2).generate(["lineitem", "orders"])
    lineitem = db.load_table(tables["lineitem"])
    orders = db.load_table(tables["orders"])

    hyper = hyper_join(
        db.dfs,
        lineitem.non_empty_block_ids(),
        orders.non_empty_block_ids(),
        "l_orderkey",
        "o_orderkey",
        buffer_blocks=8,
        cost_model=db.cluster.cost_model,
    )
    shuffle = shuffle_join(
        db.dfs,
        lineitem.non_empty_block_ids(),
        orders.non_empty_block_ids(),
        "l_orderkey",
        "o_orderkey",
        cost_model=db.cluster.cost_model,
    )
    print(f"  hyper-join : cost={hyper.cost_units:7.1f}  "
          f"build reads={hyper.build_blocks_read}  probe reads={hyper.probe_blocks_read}  "
          f"C_HyJ={hyper.probe_multiplicity:.2f}  output rows={hyper.output_rows}")
    print(f"  shuffle    : cost={shuffle.cost_units:7.1f}  "
          f"blocks read={shuffle.total_blocks_read}  shuffled={shuffle.shuffled_blocks}  "
          f"output rows={shuffle.output_rows}")
    assert hyper.output_rows == shuffle.output_rows, "both joins must produce identical results"


def main() -> None:
    example_1_from_the_paper()
    grouping_algorithms_demo()
    real_join_demo()


if __name__ == "__main__":
    main()
