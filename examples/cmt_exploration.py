"""Exploratory-analysis demo on the synthetic CMT telematics dataset.

Mirrors the paper's real-workload experiment (Section 7.6) at demo scale: a
trace of exploratory queries (trip lookups by user and time range joined with
their processing history) runs against AdaptDB and against a hand-tuned
static layout, showing that the adaptive system converges to comparable
per-query latency without anyone having to design the partitioning up front.

Run with::

    python examples/cmt_exploration.py
"""

from __future__ import annotations

from repro.baselines import AdaptDBRunner, BestGuessFixedBaseline, FullScanBaseline
from repro.core import AdaptDBConfig
from repro.workloads import CMTGenerator


def main() -> None:
    generator = CMTGenerator(scale=0.15)
    tables = list(generator.generate().values())
    queries = generator.query_trace(60)
    config = AdaptDBConfig(rows_per_block=512, buffer_blocks=8)

    print(f"CMT dataset: {', '.join(f'{t.name} ({t.num_rows} rows)' for t in tables)}")
    print(f"Trace: {len(queries)} queries "
          f"({sum(1 for q in queries if q.is_join_query)} with joins)\n")

    runners = [
        FullScanBaseline(tables, config),
        BestGuessFixedBaseline(tables, queries, config),
        AdaptDBRunner(tables, config),
    ]
    results = {runner.name: runner.run_workload(queries) for runner in runners}

    print(f"{'#':>3} {'template':>18}" + "".join(f" {name:>28}" for name in results))
    for index, query in enumerate(queries):
        row = f"{index + 1:>3} {query.template:>18}"
        for per_runner in results.values():
            row += f" {per_runner[index].runtime_seconds:>28.2f}"
        print(row)

    print("\nTotals (modelled seconds):")
    for name, per_runner in results.items():
        first_half = sum(r.runtime_seconds for r in per_runner[: len(per_runner) // 2])
        second_half = sum(r.runtime_seconds for r in per_runner[len(per_runner) // 2:])
        print(f"  {name:<32} total={first_half + second_half:9.1f} "
              f"(first half {first_half:8.1f}, second half {second_half:8.1f})")

    adaptdb = results["AdaptDB"]
    print("\nAdaptDB adaptation summary: "
          f"{sum(r.blocks_repartitioned for r in adaptdb)} blocks migrated, "
          f"{sum(r.trees_created for r in adaptdb)} new partitioning trees created")


if __name__ == "__main__":
    main()
