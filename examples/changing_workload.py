"""Changing-workload demo: AdaptDB vs Full Scan vs abrupt full repartitioning.

Reproduces the spirit of Figure 13(a) at demo scale: the workload switches
between TPC-H templates that join lineitem with different tables
(q12 → q14 → q3), and the script prints per-query modelled runtimes for the
three systems so the adaptation behaviour is visible:

* Full Scan never improves,
* the Repartitioning baseline shows a tall spike when it reorganizes,
* AdaptDB pays a small overhead on many queries and converges to the same
  fast steady state.

Run with::

    python examples/changing_workload.py
"""

from __future__ import annotations

from repro.baselines import AdaptDBRunner, FullRepartitioningBaseline, FullScanBaseline
from repro.common.rng import make_rng
from repro.core import AdaptDBConfig
from repro.workloads import TPCHGenerator, switching_workload

TEMPLATES = ["q12", "q14", "q3"]
QUERIES_PER_TEMPLATE = 10


def main() -> None:
    rng = make_rng(7)
    tables = list(
        TPCHGenerator(scale=0.2).generate(["lineitem", "orders", "customer", "part"]).values()
    )
    queries = switching_workload(TEMPLATES, QUERIES_PER_TEMPLATE, rng)
    config = AdaptDBConfig(rows_per_block=512, buffer_blocks=8)

    runners = [
        FullScanBaseline(tables, config),
        FullRepartitioningBaseline(tables, config),
        AdaptDBRunner(tables, config),
    ]
    print(f"Workload: {QUERIES_PER_TEMPLATE} queries each of {', '.join(TEMPLATES)}\n")
    all_results = {runner.name: runner.run_workload(queries) for runner in runners}

    header = f"{'#':>3} {'template':>9}" + "".join(f" {name:>22}" for name in all_results)
    print(header)
    for index, query in enumerate(queries):
        row = f"{index + 1:>3} {query.template:>9}"
        for results in all_results.values():
            row += f" {results[index].runtime_seconds:>22.2f}"
        print(row)

    print("\nTotals (modelled seconds):")
    for name, results in all_results.items():
        total = sum(result.runtime_seconds for result in results)
        spike = max(result.runtime_seconds for result in results)
        print(f"  {name:<24} total={total:9.1f}  worst query={spike:7.1f}")


if __name__ == "__main__":
    main()
