"""Quickstart: load TPC-H tables into AdaptDB and watch it adapt to a join workload.

Run with::

    python examples/quickstart.py

The script loads a small synthetic TPC-H dataset, runs 15 instances of query
template q12 (lineitem ⋈ orders), and prints how the per-query cost drops as
smooth repartitioning migrates blocks into trees partitioned on the join
attribute — followed by the partitioning state of each table.
"""

from __future__ import annotations

from repro import AdaptDB, AdaptDBConfig
from repro.common.rng import make_rng
from repro.workloads import TPCHGenerator, tpch_query


def main() -> None:
    config = AdaptDBConfig(
        rows_per_block=1024,   # stand-in for the paper's 64 MB HDFS blocks
        buffer_blocks=8,       # hyper-join hash-table budget, in blocks
        window_size=10,        # the paper's default query window
    )
    db = AdaptDB(config)

    print("Generating and loading TPC-H tables ...")
    tables = TPCHGenerator(scale=0.25).generate(["lineitem", "orders", "customer"])
    for table in tables.values():
        stored = db.load_table(table)
        print(f"  loaded {table.name}: {table.num_rows} rows in {len(stored.block_ids())} blocks")

    print("\nRunning 15 q12 queries (lineitem ⋈ orders on orderkey):")
    print(f"{'#':>3} {'join':>8} {'blocks read':>12} {'repartitioned':>14} {'runtime (model s)':>18}")
    rng = make_rng(42)
    for index in range(15):
        query = tpch_query("q12", rng)
        result = db.run(query)
        join = result.join_methods[0] if result.join_methods else "scan"
        print(
            f"{index + 1:>3} {join:>8} {result.blocks_read:>12} "
            f"{result.blocks_repartitioned:>14} {result.runtime_seconds:>18.2f}"
        )

    print("\nFinal partitioning state:")
    print(db.describe())


if __name__ == "__main__":
    main()
