"""Quickstart: the staged session lifecycle on a TPC-H join workload.

Run with::

    python examples/quickstart.py

The script loads a small synthetic TPC-H dataset into a :class:`repro.Session`,
shows the explicit Query -> LogicalPlan -> PhysicalPlan -> QueryResult stages
(including ``explain()`` output), then runs 15 instances of query template
q12 (lineitem ⋈ orders) and prints how the per-query cost drops as smooth
repartitioning migrates blocks — and how the epoch-keyed plan cache starts
serving repeated templates once adaptation has converged.
"""

from __future__ import annotations

from repro import AdaptDBConfig, Session
from repro.common.rng import make_rng
from repro.workloads import TPCHGenerator, tpch_query


def main() -> None:
    config = AdaptDBConfig(
        rows_per_block=1024,   # stand-in for the paper's 64 MB HDFS blocks
        buffer_blocks=8,       # hyper-join hash-table budget, in blocks
        window_size=10,        # the paper's default query window
    )
    session = Session(config)

    print("Generating and loading TPC-H tables ...")
    tables = TPCHGenerator(scale=0.25).generate(["lineitem", "orders", "customer"])
    for table in tables.values():
        stored = session.load_table(table)
        print(f"  loaded {table.name}: {table.num_rows} rows in {len(stored.block_ids())} blocks")

    # The staged lifecycle, one stage at a time.
    rng = make_rng(42)
    query = tpch_query("q12", rng)
    logical = session.plan(query)        # Query -> LogicalPlan (adapts, then plans)
    physical = session.lower(logical)    # LogicalPlan -> PhysicalPlan (tasks + schedule)
    result = session.execute(physical)   # PhysicalPlan -> QueryResult

    print("\nFirst query, explained:")
    print(physical.explain_full())
    print(f"-> {result.output_rows} rows, {result.runtime_seconds:.2f} model-s "
          f"(makespan {result.makespan_seconds:.2f} s)")

    print("\nRunning 15 more q12 queries (lineitem ⋈ orders on orderkey):")
    print(f"{'#':>3} {'join':>8} {'blocks read':>12} {'repartitioned':>14} "
          f"{'runtime (model s)':>18} {'plan':>7}")
    for index in range(15):
        result = session.run(tpch_query("q12", rng))   # all three stages in one call
        join = result.join_methods[0] if result.join_methods else "scan"
        plan_source = "cached" if result.plan_cache_hit else "cold"
        print(
            f"{index + 1:>3} {join:>8} {result.blocks_read:>12} "
            f"{result.blocks_repartitioned:>14} {result.runtime_seconds:>18.2f} "
            f"{plan_source:>7}"
        )

    # Each q12 instance above drew fresh predicate parameters, so the exact
    # plan cache missed (the epoch-keyed hyper-plan memo still hit).  A
    # *repeated* query — a dashboard refresh, a fig13-style template — is
    # served from the cache once adaptation has converged:
    print("\nRepeating one query verbatim:")
    repeated = tpch_query("q12", rng)
    for attempt in range(3):
        result = session.run(repeated)
        plan_source = "cached" if result.plan_cache_hit else "cold"
        print(f"  run {attempt + 1}: {plan_source:>7} plan, "
              f"planning {result.planning_seconds * 1e6:.0f} us, "
              f"{result.output_rows} rows")

    print("\nFinal partitioning state:")
    print(session.describe())
    print("\nPlanning caches:", session.cache_stats())


if __name__ == "__main__":
    main()
