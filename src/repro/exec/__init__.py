"""Task-based parallel execution engine.

The engine replaces the old serial executor loop: a :class:`QueryPlan` is
*compiled* into per-machine work units (scan tasks, shuffle map/reduce tasks,
hyper-join group tasks, repartition tasks), a locality-aware scheduler places
the tasks on the cluster's machines, and every task reads all its blocks with
one batched DFS call.  Runtime is accounted both ways: the serial cost sum
(the paper's block-access model) and the *makespan* — the maximum per-machine
load — which is what a distributed deployment would actually observe,
stragglers included.

* ``repro.exec.tasks``         — task and schedule data structures
* ``repro.exec.scheduler``     — plan compilation and locality-aware placement
* ``repro.exec.engine``        — the executor that runs a schedule
* ``repro.exec.kernels_tasks`` — pure per-task kernels + outcome merging
  (shared with the multi-core backend in ``repro.parallel``)
* ``repro.exec.result``        — per-query accounting (:class:`QueryResult`)
"""

from .engine import Executor, JoinState
from .result import QueryResult
from .scheduler import CompiledPlan, Scheduler, compile_plan, replica_hints
from .tasks import Task, TaskKind, TaskSchedule

__all__ = [
    "CompiledPlan",
    "Executor",
    "JoinState",
    "QueryResult",
    "Scheduler",
    "Task",
    "TaskKind",
    "TaskSchedule",
    "compile_plan",
    "replica_hints",
]
