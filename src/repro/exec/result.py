"""Per-query accounting produced by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.query import Query
from ..join.shuffle import JoinStats


@dataclass
class QueryResult:
    """Outcome and accounting of one executed query.

    Attributes:
        query: The executed query.
        output_rows: Cardinality of the query's *final* join (the answer the
            query returns); for pure-scan queries, the number of matching
            rows.  Per-join cardinalities live in ``join_stats``.
        scan_output_rows: Rows matched by pure scans (tables not taking part
            in any join), accounted separately from join output so mixed
            scan+join queries report both.
        blocks_read: Total blocks read by scans and joins (first-pass reads).
        blocks_repartitioned: Blocks rewritten by adaptation during this query.
        shuffled_blocks: Blocks that went through a shuffle.
        cost_units: Total modelled cost in block accesses (the serial sum).
        runtime_seconds: Serial cost converted to modelled seconds assuming
            perfect parallelism (``cost_units / parallelism``).
        machine_cost_units: Scheduled cost per machine (index = machine id).
        makespan_cost_units: Maximum per-machine cost — the parallel
            completion time of the task schedule in block accesses.
        makespan_seconds: Makespan converted to modelled seconds.
        tasks_scheduled: Number of tasks the plan compiled into.
        join_methods: Join algorithm used per join clause.
        join_stats: Detailed per-join statistics.
        trees_created: New partitioning trees created while adapting.
        planning_seconds: Wall-clock time the session spent planning the
            query (adaptation + logical planning + lowering).  Excluded from
            :meth:`fingerprint` because it is measured, not modelled.
        plan_cache_hit: Whether the session served the plan from its
            epoch-keyed plan cache instead of planning from scratch.
        sim_seconds: Completion time of the schedule in the discrete-event
            simulator (``repro.sim``): makespan plus barrier-induced stalls.
            Zero unless the query ran through the simulated backend.
        sim_queueing_seconds: Summed per-task queueing delay the simulator
            observed (time tasks spent runnable but waiting for a machine).
        sim_machine_busy_seconds: Simulated busy time per machine (index =
            machine id); ``sim_seconds - busy`` is that machine's idle time.
        wall_seconds: Measured wall-clock time of the execution, populated
            only by the multi-core ``ParallelBackend`` (zero elsewhere).
            Excluded from :meth:`fingerprint` — it is measured, not modelled.
        machine_wall_seconds: Measured wall-clock task time per machine
            (index = machine id), populated only by the parallel backend.
            Also excluded from :meth:`fingerprint`.
        buffer_hits: Block-buffer hits during this execution (persistent
            sessions only; zero for in-memory sessions).  Excluded from
            :meth:`fingerprint` — buffer behaviour must never change
            answers or plans, only where bytes were read from.
        buffer_faults: Spilled blocks materialized from disk during this
            execution.  Excluded from :meth:`fingerprint`.
        buffer_evictions: Blocks evicted from the buffer during this
            execution.  Excluded from :meth:`fingerprint`.
    """

    query: Query
    output_rows: int = 0
    scan_output_rows: int = 0
    blocks_read: int = 0
    blocks_repartitioned: int = 0
    shuffled_blocks: int = 0
    cost_units: float = 0.0
    runtime_seconds: float = 0.0
    machine_cost_units: list[float] = field(default_factory=list)
    makespan_cost_units: float = 0.0
    makespan_seconds: float = 0.0
    tasks_scheduled: int = 0
    join_methods: list[str] = field(default_factory=list)
    join_stats: list[JoinStats] = field(default_factory=list)
    trees_created: int = 0
    planning_seconds: float = 0.0
    plan_cache_hit: bool = False
    sim_seconds: float = 0.0
    sim_queueing_seconds: float = 0.0
    sim_machine_busy_seconds: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    machine_wall_seconds: list[float] = field(default_factory=list)
    buffer_hits: int = 0
    buffer_faults: int = 0
    buffer_evictions: int = 0

    def fingerprint(self) -> tuple:
        """Stable digest of every decision-dependent field of the result.

        Two executions of the same query against the same partition state
        must produce equal fingerprints — the plan-cache tests and the
        adaptation benchmark compare cached vs. cold runs through this.
        Wall-clock measurements (``planning_seconds``, ``wall_seconds``,
        ``machine_wall_seconds``), cache provenance (``plan_cache_hit``) and
        buffer traffic (``buffer_hits`` / ``buffer_faults`` /
        ``buffer_evictions``) are deliberately excluded, which is what lets
        the parallel backend — and the mmap persistence tier — produce
        fingerprints bit-identical to the in-memory task backend.
        """
        return (
            self.output_rows,
            self.scan_output_rows,
            self.blocks_read,
            self.blocks_repartitioned,
            self.shuffled_blocks,
            round(self.cost_units, 9),
            round(self.makespan_cost_units, 9),
            tuple(round(load, 9) for load in self.machine_cost_units),
            self.tasks_scheduled,
            tuple(self.join_methods),
            self.trees_created,
        )

    @property
    def used_hyper_join(self) -> bool:
        """Whether any join of the query ran as a hyper-join."""
        return any(method == "hyper" for method in self.join_methods)

    @property
    def straggler_factor(self) -> float:
        """Makespan relative to a perfectly balanced cluster (>= 1.0).

        1.0 means every machine finished at the same time; 2.0 means the
        slowest machine carried twice the average load.
        """
        if not self.machine_cost_units:
            return 1.0
        total = sum(self.machine_cost_units)
        if total <= 0.0:
            return 1.0
        return self.makespan_cost_units / (total / len(self.machine_cost_units))

    @property
    def parallel_speedup(self) -> float:
        """Serial cost sum over makespan: the speedup the schedule achieves."""
        if self.makespan_cost_units <= 0.0:
            return 1.0
        return self.cost_units / self.makespan_cost_units
