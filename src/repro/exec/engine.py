"""The task executor: runs a compiled, scheduled plan and accounts it.

Execution is simulated per machine: every task reads all its blocks with one
batched DFS call issued from its assigned machine (so locality statistics
reflect the scheduler's placement), and row work inside a task is vectorized
over the whole batch.  Two runtimes are reported per query:

* ``runtime_seconds`` — the paper's model: the serial block-access sum spread
  perfectly over the cluster,
* ``makespan_seconds`` — the schedule's actual completion time: the cost of
  the most loaded machine, which includes straggler effects the serial model
  hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import AdaptDBConfig
from ..core.optimizer import JoinDecision, QueryPlan
from ..core.planner import JoinMethod
from ..join.hyperjoin import HyperJoinPlan
from ..join.shuffle import JoinStats
from ..storage.catalog import Catalog
from .kernels_tasks import (
    apply_hyper_group_outcome,
    apply_scan_outcome,
    apply_shuffle_map_outcome,
    apply_shuffle_reduce_outcome,
    run_hyper_group_task,
    run_scan_task,
    run_shuffle_map_task,
    run_shuffle_reduce_task,
)
from .result import QueryResult
from .scheduler import CompiledPlan, Scheduler, compile_plan
from .tasks import Task, TaskKind, TaskSchedule


@dataclass
class JoinState:
    """Mutable per-join accumulator shared by that join's tasks."""

    decision: JoinDecision
    hyper_plan: HyperJoinPlan | None
    num_partitions: int
    build_partitions: list[list[np.ndarray]] = field(init=False)
    probe_partitions: list[list[np.ndarray]] = field(init=False)
    build_blocks_read: int = 0
    probe_blocks_read: int = 0
    output_rows: int = 0

    def __post_init__(self) -> None:
        self.build_partitions = [[] for _ in range(self.num_partitions)]
        self.probe_partitions = [[] for _ in range(self.num_partitions)]

    def partition_keys(self, side: str, partition: int) -> np.ndarray:
        parts = self.build_partitions if side == "build" else self.probe_partitions
        if not parts[partition]:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts[partition])


#: Backwards-compatible private alias (pre-PR-7 name).
_JoinState = JoinState


@dataclass
class Executor:
    """Executes query plans against the stored tables, task by task."""

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig

    def execute(self, plan: QueryPlan) -> QueryResult:
        """Compile, schedule and run ``plan``, returning the accounted result."""
        compiled = compile_plan(plan, self.catalog, self.cluster, self.config)
        schedule = Scheduler(self.cluster.num_machines).schedule(compiled.tasks)
        return self.execute_schedule(plan, compiled, schedule)

    def execute_schedule(
        self, plan: QueryPlan, compiled: CompiledPlan, schedule: TaskSchedule
    ) -> QueryResult:
        """Run an already compiled and scheduled plan.

        The session's plan cache replays a cached ``(compiled, schedule)``
        pair through this entry point; neither is mutated by execution, so a
        pair can be replayed any number of times at a fixed partition state.
        """
        result, states = self.begin_schedule(plan, compiled)
        for machine_id, task in schedule.placements():
            self._run_task(task, machine_id, plan, states, result)
        return self.finish_schedule(plan, schedule, states, result)

    # ------------------------------------------------------------------ #
    # Schedule accounting shared with the multi-core backend
    # ------------------------------------------------------------------ #
    def begin_schedule(
        self, plan: QueryPlan, compiled: CompiledPlan
    ) -> tuple[QueryResult, list[JoinState]]:
        """Pre-execution accounting: the result shell and join accumulators.

        The parallel backend (``repro.parallel``) uses this together with
        :meth:`finish_schedule` so that merging worker outcomes goes through
        exactly the accounting code the in-process loop uses.
        """
        cost_model = self.cluster.cost_model
        result = QueryResult(query=plan.query)

        # Adaptation work scheduled by the optimizer (Type 2 blocks).
        result.blocks_repartitioned = plan.adaptation.blocks_repartitioned
        result.trees_created = plan.adaptation.trees_created
        result.cost_units += cost_model.repartition_cost(plan.adaptation.blocks_repartitioned)

        result.tasks_scheduled = len(compiled.tasks)

        states = [
            JoinState(
                decision=decision,
                hyper_plan=compiled.hyper_plans[index],
                num_partitions=self.cluster.num_machines,
            )
            for index, decision in enumerate(plan.join_decisions)
        ]
        return result, states

    def finish_schedule(
        self,
        plan: QueryPlan,
        schedule: TaskSchedule,
        states: list[JoinState],
        result: QueryResult,
    ) -> QueryResult:
        """Post-execution accounting: join stats, answer, makespan fields."""
        cost_model = self.cluster.cost_model

        # Scan accounting: matched rows were accumulated per task; the cost
        # follows the same per-block model as the serial executor.
        for table_name in plan.scan_tables:
            result.cost_units += cost_model.scan_cost(
                len(plan.scan_blocks.get(table_name, []))
            )

        for state in states:
            stats = self._finish_join(state)
            result.join_stats.append(stats)
            result.join_methods.append(stats.method)
            result.blocks_read += stats.total_blocks_read
            result.shuffled_blocks += stats.shuffled_blocks
            result.cost_units += stats.cost_units

        # The query's answer is its final join's cardinality; pure-scan
        # matches are reported separately (and are the answer when the query
        # has no joins at all).
        if states:
            result.output_rows = states[-1].output_rows
        else:
            result.output_rows = result.scan_output_rows

        result.machine_cost_units = schedule.machine_loads
        result.makespan_cost_units = schedule.makespan
        result.makespan_seconds = cost_model.makespan_seconds(result.machine_cost_units)
        result.runtime_seconds = cost_model.to_seconds(result.cost_units)
        return result

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #
    def _run_task(
        self,
        task: Task,
        machine_id: int,
        plan: QueryPlan,
        states: list[JoinState],
        result: QueryResult,
    ) -> None:
        if task.kind is TaskKind.REPARTITION:
            return  # adaptation already rewrote the blocks; cost-only task

        if task.kind is TaskKind.SCAN:
            dfs = self.catalog.get(task.table).dfs
            blocks = dfs.get_blocks(task.block_ids, machine_id)
            matched = run_scan_task(blocks, plan.query.predicates_on(task.table))
            apply_scan_outcome(result, task, matched)
            return

        state = states[task.join_index]
        decision = state.decision

        if task.kind is TaskKind.SHUFFLE_MAP:
            dfs = self.catalog.get(task.table).dfs
            blocks = dfs.get_blocks(task.block_ids, machine_id)
            parts = run_shuffle_map_task(
                blocks,
                decision.clause.column_for(task.table),
                plan.query.predicates_on(task.table),
                state.num_partitions,
            )
            apply_shuffle_map_outcome(state, task, parts)
            return

        if task.kind is TaskKind.SHUFFLE_REDUCE:
            rows = run_shuffle_reduce_task(
                state.partition_keys("build", task.partition_index),
                state.partition_keys("probe", task.partition_index),
            )
            apply_shuffle_reduce_outcome(state, rows)
            return

        # Hyper-join group: build one hash table, probe the overlapping blocks.
        dfs = self.catalog.get(decision.build_table).dfs
        build_blocks = dfs.get_blocks(task.block_ids, machine_id)
        probe_blocks = dfs.get_blocks(task.probe_block_ids, machine_id)
        rows = run_hyper_group_task(
            build_blocks,
            probe_blocks,
            decision.clause.column_for(decision.build_table),
            decision.clause.column_for(decision.probe_table),
            plan.query.predicates_on(decision.build_table),
            plan.query.predicates_on(decision.probe_table),
        )
        apply_hyper_group_outcome(state, task, rows)

    # ------------------------------------------------------------------ #
    # Join accounting
    # ------------------------------------------------------------------ #
    def _finish_join(self, state: JoinState) -> JoinStats:
        cost_model = self.cluster.cost_model
        if state.decision.method is JoinMethod.SHUFFLE:
            return JoinStats(
                method="shuffle",
                build_blocks_read=state.build_blocks_read,
                probe_blocks_read=state.probe_blocks_read,
                shuffled_blocks=state.build_blocks_read + state.probe_blocks_read,
                output_rows=state.output_rows,
                cost_units=cost_model.shuffle_join_cost(
                    state.build_blocks_read, state.probe_blocks_read
                ),
            )
        hyper_plan = state.hyper_plan
        return JoinStats(
            method="hyper",
            build_blocks_read=state.build_blocks_read,
            probe_blocks_read=state.probe_blocks_read,
            shuffled_blocks=0,
            output_rows=state.output_rows,
            cost_units=cost_model.hyper_join_cost(
                state.build_blocks_read, state.probe_blocks_read
            ),
            probe_multiplicity=hyper_plan.probe_multiplicity if hyper_plan else 1.0,
            groups=hyper_plan.grouping.num_groups if hyper_plan else 0,
        )
