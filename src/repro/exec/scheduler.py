"""Plan compilation and locality-aware task placement.

Compilation turns a :class:`QueryPlan` into per-machine work:

* pure scans and shuffle-join sides are bucketed by block replica location
  (every bucket reads only blocks with a local replica on its home machine)
  and each bucket becomes one task,
* every hyper-join group (one in-memory hash table plus the probe blocks
  overlapping it) becomes one task,
* adaptation work (Type 2 blocks) is spread evenly as repartition tasks,
* each shuffle join adds one reduce task per shuffle partition in a second
  stage, carrying the run write/re-read share of the paper's ``CSJ`` cost —
  sized from the *actual* per-partition row counts (the filtered join keys
  are hash-partitioned once at compile time), so a skewed key distribution
  produces skewed reduce tasks instead of an even split.

The scheduler then places tasks greedily, longest task first, on the machine
that is least loaded among those holding replicas of the task's blocks —
falling back to the globally least-loaded machine when locality would cost
more than a remote read saves.  Placement is fully deterministic: ties break
on machine id and task id, so a fixed plan always yields a fixed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import AdaptDBConfig
from ..core.optimizer import JoinDecision, QueryPlan
from ..core.planner import JoinMethod
from ..join.hyperjoin import HyperJoinPlan, plan_hyper_join
from ..join.kernels import gather_filtered_keys, hash_partition
from ..storage.catalog import Catalog
from ..storage.dfs import DistributedFileSystem
from .tasks import Task, TaskKind, TaskSchedule


def replica_hints(dfs: DistributedFileSystem, block_ids: list[int]) -> dict[int, int]:
    """Count, per machine, how many of ``block_ids`` have a replica there."""
    hints: dict[int, int] = {}
    for block_id in block_ids:
        for machine_id in dfs.replicas_of(block_id):
            hints[machine_id] = hints.get(machine_id, 0) + 1
    return hints


def bucket_blocks_by_replica(
    dfs: DistributedFileSystem, block_ids: list[int], num_machines: int
) -> dict[int, list[int]]:
    """Split blocks into per-machine buckets such that every bucket is local.

    Each block goes to the machine that holds one of its replicas and
    currently has the smallest bucket, keeping bucket sizes balanced while
    guaranteeing that a bucket executed on its home machine reads only local
    replicas.
    """
    buckets: dict[int, list[int]] = {m: [] for m in range(num_machines)}
    for block_id in block_ids:
        replicas = [m for m in sorted(dfs.replicas_of(block_id)) if m < num_machines]
        if not replicas:
            replicas = [block_id % num_machines]
        target = min(replicas, key=lambda m: (len(buckets[m]), m))
        buckets[target].append(block_id)
    return {machine: ids for machine, ids in buckets.items() if ids}


@dataclass
class CompiledPlan:
    """The task list of a query plan plus per-join hyper schedules.

    Attributes:
        tasks: Every task the plan compiled into.
        hyper_plans: Per join decision, the hyper-join schedule the tasks
            were derived from (``None`` for shuffle joins).
    """

    tasks: list[Task]
    hyper_plans: list[HyperJoinPlan | None]


def compile_plan(
    plan: QueryPlan, catalog: Catalog, cluster: Cluster, config: AdaptDBConfig
) -> CompiledPlan:
    """Compile ``plan`` into tasks whose costs sum to the plan's serial cost."""
    cost_model = cluster.cost_model
    num_machines = cluster.num_machines
    tasks: list[Task] = []
    hyper_plans: list[HyperJoinPlan | None] = []

    def new_task(**kwargs) -> Task:
        task = Task(task_id=len(tasks), **kwargs)
        tasks.append(task)
        return task

    # 1. Adaptation work (Type 2 blocks), spread evenly over the cluster.
    repartitioned = plan.adaptation.blocks_repartitioned
    if repartitioned:
        share, remainder = divmod(repartitioned, num_machines)
        for index in range(min(num_machines, repartitioned)):
            blocks = share + (1 if index < remainder else 0)
            new_task(
                kind=TaskKind.REPARTITION,
                cost_units=cost_model.repartition_cost(blocks),
            )

    # 2. Pure scans: one task per replica bucket, batched block reads.
    for table_name in plan.scan_tables:
        dfs = catalog.get(table_name).dfs
        block_ids = plan.scan_blocks.get(table_name, [])
        for bucket in bucket_blocks_by_replica(dfs, block_ids, num_machines).values():
            new_task(
                kind=TaskKind.SCAN,
                cost_units=cost_model.scan_cost(len(bucket)),
                table=table_name,
                block_ids=tuple(bucket),
                replica_hints=replica_hints(dfs, bucket),
            )

    # 3. Joins.
    for join_index, decision in enumerate(plan.join_decisions):
        dfs = catalog.get(decision.build_table).dfs
        if decision.method is JoinMethod.SHUFFLE:
            hyper_plans.append(None)
            _compile_shuffle(new_task, dfs, plan, decision, join_index, cluster)
        else:
            hyper_plan = decision.hyper_plan
            if hyper_plan is None:
                hyper_plan = plan_hyper_join(
                    dfs,
                    decision.build_blocks,
                    decision.probe_blocks,
                    decision.clause.column_for(decision.build_table),
                    decision.clause.column_for(decision.probe_table),
                    config.buffer_blocks,
                    config.grouping_algorithm,
                )
            hyper_plans.append(hyper_plan)
            _compile_hyper(new_task, dfs, hyper_plan, join_index, cluster)

    return CompiledPlan(tasks=tasks, hyper_plans=hyper_plans)


def _compile_shuffle(
    new_task, dfs: DistributedFileSystem, plan: QueryPlan, decision: JoinDecision,
    join_index: int, cluster: Cluster,
) -> None:
    """Map tasks read and partition each side; reduce tasks join partitions.

    Map tasks pay one access per block; the remaining ``CSJ - 1`` accesses
    per block (writing the partitioned runs and re-reading them) are carried
    by the reduce stage, so the task costs sum to equation (1)'s
    ``CSJ * (blocks(R) + blocks(S))``.

    Reduce tasks are **skew-sized**: the filtered join keys of both sides
    are hash-partitioned once here and each partition's reduce task carries
    the run cost in proportion to the rows it will actually receive, instead
    of an even ``1/num_machines`` share.  This pre-reads the key and
    predicate columns of every relevant block at compile time (via
    ``peek_block``, so no I/O is *accounted* — it mirrors what the map tasks
    will read anyway), which the session's plan cache amortises across
    repeated templates.  The per-join total is unchanged; only its split
    across reduce tasks (and therefore the makespan under skew) moves.  When
    no row survives the predicates the even split is kept so empty shuffles
    still charge equation (1).
    """
    cost_model = cluster.cost_model
    num_machines = cluster.num_machines
    side_blocks: dict[str, int] = {}
    partition_rows = np.zeros(num_machines, dtype=np.int64)
    for side, table, block_ids in (
        ("build", decision.build_table, decision.build_blocks),
        ("probe", decision.probe_table, decision.probe_blocks),
    ):
        peeked = [dfs.peek_block(b) for b in block_ids]
        non_empty_pairs = [
            (block_id, block)
            for block_id, block in zip(block_ids, peeked)
            if block.num_rows > 0
        ]
        non_empty = [block_id for block_id, _block in non_empty_pairs]
        side_blocks[side] = len(non_empty)
        for bucket in bucket_blocks_by_replica(dfs, non_empty, num_machines).values():
            new_task(
                kind=TaskKind.SHUFFLE_MAP,
                cost_units=float(len(bucket)),
                table=table,
                block_ids=tuple(bucket),
                join_index=join_index,
                side=side,
                replica_hints=replica_hints(dfs, bucket),
            )
        keys = gather_filtered_keys(
            (block for _block_id, block in non_empty_pairs),
            decision.clause.column_for(table),
            plan.query.predicates_on(table),
        )
        if len(keys):
            partition_rows += np.bincount(
                hash_partition(keys, num_machines), minlength=num_machines
            )

    total_blocks = side_blocks["build"] + side_blocks["probe"]
    if total_blocks == 0:
        return
    run_total = (cost_model.shuffle_factor - 1.0) * total_blocks
    total_rows = int(partition_rows.sum())
    for partition in range(num_machines):
        if total_rows > 0:
            run_cost = run_total * (int(partition_rows[partition]) / total_rows)
        else:
            run_cost = run_total / num_machines
        new_task(
            kind=TaskKind.SHUFFLE_REDUCE,
            cost_units=run_cost,
            join_index=join_index,
            partition_index=partition,
            stage=1,
            input_rows=int(partition_rows[partition]),
        )


def _compile_hyper(
    new_task, dfs: DistributedFileSystem, hyper_plan: HyperJoinPlan, join_index: int,
    cluster: Cluster,
) -> None:
    """One task per group: build its hash table, probe every overlapping block."""
    cost_model = cluster.cost_model
    for group_index, group in enumerate(hyper_plan.grouping.groups):
        if not group:
            continue
        build_ids = [hyper_plan.build_block_ids[index] for index in group]
        group_union = hyper_plan.overlap[group].any(axis=0)
        probe_ids = [
            hyper_plan.probe_block_ids[int(index)] for index in np.flatnonzero(group_union)
        ]
        new_task(
            kind=TaskKind.HYPER_GROUP,
            cost_units=cost_model.hyper_join_cost(len(build_ids), len(probe_ids)),
            block_ids=tuple(build_ids),
            probe_block_ids=tuple(probe_ids),
            join_index=join_index,
            group_index=group_index,
            replica_hints=replica_hints(dfs, build_ids + probe_ids),
        )


@dataclass
class Scheduler:
    """Greedy locality-aware list scheduler (longest processing time first)."""

    num_machines: int

    def schedule(self, tasks: list[Task]) -> TaskSchedule:
        """Place ``tasks`` on machines, balancing load and preferring locality."""
        loads = [0.0] * self.num_machines
        assignments: dict[int, list[Task]] = {m: [] for m in range(self.num_machines)}
        ordered = sorted(tasks, key=lambda task: (-task.cost_units, task.task_id))
        for task in ordered:
            machine_id = self._place(task, loads)
            loads[machine_id] += task.cost_units
            assignments[machine_id].append(task)
        return TaskSchedule(num_machines=self.num_machines, assignments=assignments)

    def _place(self, task: Task, loads: list[float]) -> int:
        """Least-loaded replica holder, unless locality costs more than it saves."""
        machines = range(self.num_machines)
        best_any = min(machines, key=lambda m: (loads[m], m))
        hints = {m: c for m, c in task.replica_hints.items() if m < self.num_machines}
        if not hints:
            return best_any
        most_local = max(hints.values())
        preferred = [m for m, count in sorted(hints.items()) if count == most_local]
        best_preferred = min(preferred, key=lambda m: (loads[m], m))
        # A local placement is worth at most the task's own cost in queueing
        # delay; beyond that the remote read on an idle machine is cheaper.
        if loads[best_preferred] <= loads[best_any] + task.cost_units:
            return best_preferred
        return best_any
