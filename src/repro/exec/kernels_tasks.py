"""Per-task run functions shared by the in-process and multi-core engines.

:class:`~repro.exec.engine.Executor` used to inline all row-level task work
in ``_run_task``, which made the task logic inseparable from executor state
(catalog, cluster, join accumulators).  This module factors that work into
pure module-level functions:

* the ``run_*`` functions do the row work of one task.  They take only
  block *readers* (anything exposing ``num_rows`` / ``columns`` /
  ``column_parts()`` — a live :class:`~repro.storage.block.Block` in the
  in-process engine, a shared-memory
  :class:`~repro.storage.shared_memory.SharedBlockView` in a worker
  process), plain predicates, column names and integers.  Nothing here
  captures a ``Catalog``, ``Cluster``, or ``DistributedFileSystem``, so the
  functions are picklable and a ``multiprocessing`` worker executes exactly
  the same code path the parent would;
* the ``apply_*`` functions merge a task's outcome into the shared
  per-query accumulators (:class:`~repro.exec.engine.JoinState` /
  :class:`~repro.exec.result.QueryResult`).  The parent applies outcomes in
  deterministic task order whether the values were computed in-process or
  returned by workers, which is what keeps the two backends' results and
  fingerprints bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..common.predicates import Predicate
from ..join.kernels import (
    KeyHistogram,
    batch_matching_count,
    gather_filtered_keys,
    hash_partition,
    join_match_count,
)
from .tasks import Task

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .engine import JoinState
    from .result import QueryResult


# --------------------------------------------------------------------- #
# Run functions (pure row work; shared by parent and worker processes)
# --------------------------------------------------------------------- #
def run_scan_task(blocks: Sequence, predicates: list[Predicate]) -> int:
    """Rows of a scan task's block batch matching all ``predicates``."""
    return batch_matching_count(blocks, predicates)


def run_shuffle_map_task(
    blocks: Sequence,
    key_column: str,
    predicates: list[Predicate],
    num_partitions: int,
) -> list[np.ndarray]:
    """Filter and hash-partition one map task's join keys.

    Returns one key array per shuffle partition (empty arrays for
    partitions that received no keys), so the caller can merge outcomes
    without re-deriving the partitioning.
    """
    keys = gather_filtered_keys(blocks, key_column, predicates)
    parts: list[np.ndarray] = [
        np.empty(0, dtype=np.int64) for _ in range(num_partitions)
    ]
    if len(keys):
        assignment = hash_partition(keys, num_partitions)
        for partition in np.unique(assignment):
            parts[int(partition)] = keys[assignment == partition]
    return parts


def run_shuffle_reduce_task(build_keys: np.ndarray, probe_keys: np.ndarray) -> int:
    """Join cardinality of one shuffle partition's build and probe keys."""
    return join_match_count(
        KeyHistogram.from_keys(build_keys), KeyHistogram.from_keys(probe_keys)
    )


def run_hyper_group_task(
    build_blocks: Sequence,
    probe_blocks: Sequence,
    build_column: str,
    probe_column: str,
    build_predicates: list[Predicate],
    probe_predicates: list[Predicate],
) -> int:
    """One hyper-join group: build a histogram, probe the overlapping blocks."""
    build_histogram = KeyHistogram.from_keys(
        gather_filtered_keys(build_blocks, build_column, build_predicates)
    )
    probe_histogram = KeyHistogram.from_keys(
        gather_filtered_keys(probe_blocks, probe_column, probe_predicates)
    )
    return join_match_count(build_histogram, probe_histogram)


# --------------------------------------------------------------------- #
# Apply functions (deterministic merge into the shared accumulators)
# --------------------------------------------------------------------- #
def apply_scan_outcome(result: "QueryResult", task: Task, matched_rows: int) -> None:
    """Merge a scan task's matched-row count into the query result."""
    result.scan_output_rows += matched_rows
    result.blocks_read += len(task.block_ids)


def apply_shuffle_map_outcome(
    state: "JoinState", task: Task, parts: Sequence[np.ndarray]
) -> None:
    """Merge one map task's per-partition key arrays into the join state."""
    partitions = (
        state.build_partitions if task.side == "build" else state.probe_partitions
    )
    for partition, keys in enumerate(parts):
        if len(keys):
            partitions[partition].append(keys)
    if task.side == "build":
        state.build_blocks_read += len(task.block_ids)
    else:
        state.probe_blocks_read += len(task.block_ids)


def apply_shuffle_reduce_outcome(state: "JoinState", output_rows: int) -> None:
    """Merge one reduce task's join cardinality into the join state."""
    state.output_rows += output_rows


def apply_hyper_group_outcome(state: "JoinState", task: Task, output_rows: int) -> None:
    """Merge one hyper-group task's cardinality and read counts."""
    state.output_rows += output_rows
    state.build_blocks_read += len(task.block_ids)
    state.probe_blocks_read += len(task.probe_block_ids)
