"""Work units of the parallel execution engine.

A query plan is compiled into :class:`Task` objects — the unit the scheduler
places and a simulated machine executes.  Tasks are pure descriptions (which
blocks to read, what share of the modelled cost they carry); all row-level
work happens in the engine so tasks stay cheap to create and schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TaskKind(Enum):
    """The five work-unit shapes a query plan compiles into."""

    SCAN = "scan"
    SHUFFLE_MAP = "shuffle_map"
    SHUFFLE_REDUCE = "shuffle_reduce"
    HYPER_GROUP = "hyper_group"
    REPARTITION = "repartition"


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes:
        task_id: Unique id within the compiled plan (compilation order).
        kind: What the task does.
        cost_units: Modelled cost in block accesses; the scheduler balances
            machines on this value and the makespan is derived from it.
        table: Table read by scan tasks and shuffle-map tasks.
        block_ids: Blocks the task reads (build-side blocks for hyper-join
            group tasks).
        probe_block_ids: Probe-side blocks of a hyper-join group task.
        join_index: Index into the plan's join decisions, for join tasks.
        side: ``"build"`` or ``"probe"`` for shuffle-map tasks.
        partition_index: Shuffle partition a reduce task is responsible for.
        group_index: Hyper-join group a group task executes.
        stage: Barrier stage; stage 1 tasks (shuffle reducers) only run after
            every stage 0 task finished.
        replica_hints: Machine id -> how many of the task's blocks have a
            replica there.  The scheduler's locality signal.
        input_rows: Rows the task is sized from, when known — for shuffle
            reduce tasks, the actual per-partition row count gathered at
            compile time (the skew signal behind ``cost_units``).
    """

    task_id: int
    kind: TaskKind
    cost_units: float
    table: str | None = None
    block_ids: tuple[int, ...] = ()
    probe_block_ids: tuple[int, ...] = ()
    join_index: int | None = None
    side: str | None = None
    partition_index: int | None = None
    group_index: int | None = None
    stage: int = 0
    replica_hints: dict[int, int] = field(default_factory=dict)
    input_rows: int | None = None

    @property
    def read_block_ids(self) -> tuple[int, ...]:
        """Every block the task reads (build + probe sides)."""
        return self.block_ids + self.probe_block_ids

    def local_blocks_on(self, machine_id: int) -> int:
        """How many of the task's blocks have a replica on ``machine_id``."""
        return self.replica_hints.get(machine_id, 0)


@dataclass
class TaskSchedule:
    """A complete placement of tasks onto machines.

    Attributes:
        num_machines: Size of the cluster the schedule targets.
        assignments: Machine id -> tasks placed there (placement order).
    """

    num_machines: int
    assignments: dict[int, list[Task]]

    @property
    def tasks(self) -> list[Task]:
        """All scheduled tasks, ordered by (stage, task id)."""
        every = [task for placed in self.assignments.values() for task in placed]
        return sorted(every, key=lambda task: (task.stage, task.task_id))

    def placements(self) -> list[tuple[int, Task]]:
        """(machine id, task) pairs in deterministic execution order.

        Stage 0 tasks run before stage 1 tasks (the shuffle barrier); within
        a stage, compilation order.  The engine iterates this to execute.
        """
        pairs = [
            (machine_id, task)
            for machine_id, placed in self.assignments.items()
            for task in placed
        ]
        return sorted(pairs, key=lambda pair: (pair[1].stage, pair[1].task_id))

    @property
    def machine_loads(self) -> list[float]:
        """Total assigned cost per machine (index = machine id)."""
        loads = [0.0] * self.num_machines
        for machine_id, placed in self.assignments.items():
            loads[machine_id] += sum(task.cost_units for task in placed)
        return loads

    @property
    def total_cost(self) -> float:
        """Serial cost sum: what one machine running everything would pay."""
        return sum(self.machine_loads)

    @property
    def makespan(self) -> float:
        """Parallel completion time: the maximum per-machine load."""
        loads = self.machine_loads
        return max(loads) if loads else 0.0

    @property
    def straggler_factor(self) -> float:
        """Makespan relative to a perfectly balanced cluster (>= 1.0)."""
        total = self.total_cost
        if total <= 0.0 or self.num_machines == 0:
            return 1.0
        return self.makespan / (total / self.num_machines)

    @property
    def locality_fraction(self) -> float:
        """Fraction of scheduled block reads served from a local replica.

        An empty schedule (a query whose relevant-block set is empty) reads
        nothing, so the fraction is defined as 0.0 — no read was local —
        while :attr:`straggler_factor` stays 1.0 (nobody straggled).
        """
        local = 0
        total = 0
        for machine_id, placed in self.assignments.items():
            for task in placed:
                blocks = len(task.read_block_ids)
                total += blocks
                local += min(blocks, task.local_blocks_on(machine_id))
        if total == 0:
            return 0.0
        return local / total
