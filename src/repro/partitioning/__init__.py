"""Partitioning trees and their builders (upfront/Amoeba and two-phase)."""

from .builders import BalancedAttributeAllocator, build_median_tree, median_cutpoint
from .tree import PartitioningTree, TreeNode
from .two_phase import DEFAULT_JOIN_LEVEL_FRACTION, TwoPhasePartitioner, default_join_levels
from .upfront import UpfrontPartitioner, leaves_for_block_budget

__all__ = [
    "BalancedAttributeAllocator",
    "DEFAULT_JOIN_LEVEL_FRACTION",
    "PartitioningTree",
    "TreeNode",
    "TwoPhasePartitioner",
    "UpfrontPartitioner",
    "build_median_tree",
    "default_join_levels",
    "leaves_for_block_budget",
    "median_cutpoint",
]
