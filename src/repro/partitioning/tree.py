"""Partitioning trees.

A partitioning tree (Amoeba [21], Section 3) is a balanced binary tree whose
internal nodes are ``(attribute, cutpoint)`` pairs and whose leaves are data
blocks.  Records with ``attribute <= cutpoint`` belong to the left subtree,
the rest to the right subtree.  The tree answers two questions:

* ``route_rows`` — which block does each record belong to (used when loading
  and when repartitioning), and
* ``lookup`` — which blocks can contain rows matching a set of predicates
  (used for block pruning and as the ``lookup(T, q)`` function of the cost
  model, equations (1) and (2)).

In AdaptDB a tree may additionally carry a *join attribute*: the top
``join_levels`` levels split on that attribute (two-phase partitioning,
Section 5.1).

Both hot entry points run off a *compiled* form of the tree: flat numpy
arrays (per-node attribute index, cutpoint and child offsets, plus the
left-to-right leaf list) built once and cached until the structure changes.
``lookup`` walks the arrays iteratively, narrowing one ``(lo, hi)`` interval
per attribute in place instead of copying a bounds dict per node, and
``route_rows`` advances all rows level-synchronously through the node arrays
instead of rebuilding ``leaves()`` and an ``id()``-keyed index per call.
Structural edits must go through :meth:`resplit_node` (or call
:meth:`invalidate_compiled`) so the cache is rebuilt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.epochs import mutates_partition_state
from ..common.errors import PartitioningError
from ..common.predicates import Predicate


@dataclass
class TreeNode:
    """A node of a partitioning tree.

    Internal nodes have ``attribute``/``cutpoint``/``left``/``right`` set and
    ``block_id`` unset; leaves are the opposite.
    """

    attribute: str | None = None
    cutpoint: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    block_id: int | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a leaf (i.e. a data block)."""
        return self.left is None and self.right is None

    def clone(self) -> "TreeNode":
        """Deep-copy the subtree rooted at this node."""
        if self.is_leaf:
            return TreeNode(block_id=self.block_id)
        assert self.left is not None and self.right is not None
        return TreeNode(
            attribute=self.attribute,
            cutpoint=self.cutpoint,
            left=self.left.clone(),
            right=self.right.clone(),
            block_id=None,
        )


@dataclass
class CompiledTree:
    """Flat, allocation-friendly form of a partitioning tree.

    Nodes are numbered in preorder (root = 0).  ``node_attr[i]`` is the index
    into ``attributes`` of node ``i``'s split attribute, or ``-1`` for a
    leaf; ``left``/``right`` hold child node numbers (``-1`` for leaves) and
    ``leaf_pos`` maps a leaf node number to its left-to-right leaf position.
    ``leaf_nodes`` keeps the live :class:`TreeNode` references so block-id
    (re)binding never stales the cache.
    """

    attributes: list[str]
    attribute_index: dict[str, int]
    node_attr: np.ndarray
    cutpoints: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_pos: np.ndarray
    leaf_nodes: list[TreeNode]
    node_index: dict[int, int]
    parent: np.ndarray
    all_block_ids: list[int] | None = None
    block_leaf_node: dict[int, int] | None = None


@dataclass
class PartitioningTree:
    """A complete partitioning tree for one table (or one join attribute of it).

    Attributes:
        root: Root node.
        join_attribute: Join attribute this tree is optimized for (``None``
            for pure Amoeba trees that only adapt to selections).
        join_levels: Number of top levels reserved for the join attribute.
        tree_id: Identifier unique within the owning table.
    """

    root: TreeNode
    join_attribute: str | None = None
    join_levels: int = 0
    tree_id: int = 0
    _compiled: CompiledTree | None = field(default=None, init=False, repr=False, compare=False)
    _bottom_nodes: list | None = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def invalidate_compiled(self) -> None:
        """Drop the compiled form after a structural change to the tree."""
        self._compiled = None
        self._bottom_nodes = None

    def compiled(self) -> CompiledTree:
        """Return the compiled form, rebuilding it if the structure changed."""
        if self._compiled is None:
            self._compiled = self._compile()
        return self._compiled

    def _compile(self) -> CompiledTree:
        nodes: list[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append(node.right)
                stack.append(node.left)
        index_of = {id(node): index for index, node in enumerate(nodes)}

        count = len(nodes)
        attributes: list[str] = []
        attribute_index: dict[str, int] = {}
        node_attr = np.full(count, -1, dtype=np.int32)
        cutpoints = np.zeros(count, dtype=np.float64)
        left = np.full(count, -1, dtype=np.int32)
        right = np.full(count, -1, dtype=np.int32)
        leaf_pos = np.full(count, -1, dtype=np.int32)
        parent = np.full(count, -1, dtype=np.int32)
        leaf_nodes: list[TreeNode] = []

        for index, node in enumerate(nodes):
            if node.is_leaf:
                leaf_pos[index] = len(leaf_nodes)
                leaf_nodes.append(node)
                continue
            assert node.attribute is not None and node.cutpoint is not None
            attr_index = attribute_index.get(node.attribute)
            if attr_index is None:
                attr_index = len(attributes)
                attribute_index[node.attribute] = attr_index
                attributes.append(node.attribute)
            node_attr[index] = attr_index
            cutpoints[index] = node.cutpoint
            left[index] = index_of[id(node.left)]
            right[index] = index_of[id(node.right)]
            parent[left[index]] = index
            parent[right[index]] = index

        return CompiledTree(
            attributes=attributes,
            attribute_index=attribute_index,
            node_attr=node_attr,
            cutpoints=cutpoints,
            left=left,
            right=right,
            leaf_pos=leaf_pos,
            leaf_nodes=leaf_nodes,
            node_index=index_of,
            parent=parent,
        )

    # ------------------------------------------------------------------ #
    # Leaves
    # ------------------------------------------------------------------ #
    def leaves(self) -> list[TreeNode]:
        """All leaf nodes, left to right."""
        return list(self.compiled().leaf_nodes)

    @property
    def num_leaves(self) -> int:
        """Number of leaves (data blocks) in the tree."""
        return len(self.compiled().leaf_nodes)

    def block_ids(self) -> list[int]:
        """Block ids of all leaves that have been bound to blocks."""
        compiled = self.compiled()
        if compiled.all_block_ids is None:
            compiled.all_block_ids = [
                leaf.block_id for leaf in compiled.leaf_nodes if leaf.block_id is not None
            ]
        return list(compiled.all_block_ids)

    @mutates_partition_state
    def assign_block_ids(self, block_ids: list[int]) -> None:
        """Bind leaf nodes to DFS block ids, left to right.

        Raises:
            PartitioningError: if the number of ids differs from the number
                of leaves.
        """
        compiled = self.compiled()
        leaves = compiled.leaf_nodes
        if len(block_ids) != len(leaves):
            raise PartitioningError(
                f"expected {len(leaves)} block ids, got {len(block_ids)}"
            )
        for leaf, block_id in zip(leaves, block_ids):
            leaf.block_id = block_id
        compiled.all_block_ids = None
        compiled.block_leaf_node = None

    # ------------------------------------------------------------------ #
    # Structure inspection / mutation
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Depth of the tree (a single leaf has depth 0)."""

        def node_depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(self.root)

    def attribute_counts(self) -> dict[str, int]:
        """How many internal nodes split on each attribute."""
        counts: dict[str, int] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            assert node.attribute is not None
            counts[node.attribute] = counts.get(node.attribute, 0) + 1
            assert node.left is not None and node.right is not None
            stack.append(node.left)
            stack.append(node.right)
        return counts

    def clone(self) -> "PartitioningTree":
        """Deep copy of the tree (shares no nodes with the original)."""
        return PartitioningTree(
            root=self.root.clone(),
            join_attribute=self.join_attribute,
            join_levels=self.join_levels,
            tree_id=self.tree_id,
        )

    @mutates_partition_state
    def resplit_node(self, node: TreeNode, attribute: str, cutpoint: float) -> None:
        """Change an internal node's split attribute/cutpoint (Amoeba transform).

        This is the supported structural-mutation entry point.  A re-split
        keeps the node's position, children, leaf order and path bounds, so
        the compiled form is patched in place (and the bottom-node cache
        stays valid) instead of being rebuilt from scratch every transform.
        """
        if node.is_leaf:
            raise PartitioningError("cannot re-split a leaf node")
        node.attribute = attribute
        node.cutpoint = cutpoint
        assert node.left is not None and node.right is not None
        if not (node.left.is_leaf and node.right.is_leaf):
            # Re-splitting above the bottom level changes descendants' path
            # bounds; the bottom-node cache must be rebuilt.
            self._bottom_nodes = None
        compiled = self._compiled
        if compiled is None:
            return
        index = compiled.node_index.get(id(node))
        if index is None:  # node unknown to the cache — fall back to a rebuild
            self.invalidate_compiled()
            return
        attr_index = compiled.attribute_index.get(attribute)
        if attr_index is None:
            attr_index = len(compiled.attributes)
            compiled.attributes.append(attribute)
            compiled.attribute_index[attribute] = attr_index
        compiled.node_attr[index] = attr_index
        compiled.cutpoints[index] = cutpoint

    def bottom_internal_nodes(self) -> list[tuple[TreeNode, dict[str, tuple[float, float]]]]:
        """Internal nodes whose two children are both leaves, with path bounds.

        The result is cached alongside the compiled form (Amoeba enumerates
        these every query); treat the bounds dicts as read-only.
        """
        if self._bottom_nodes is None:
            result: list[tuple[TreeNode, dict[str, tuple[float, float]]]] = []

            def descend(node: TreeNode, bounds: dict[str, tuple[float, float]]) -> None:
                if node.is_leaf:
                    return
                assert node.left is not None and node.right is not None
                if node.left.is_leaf and node.right.is_leaf:
                    result.append((node, dict(bounds)))
                    return
                assert node.attribute is not None and node.cutpoint is not None
                lo, hi = bounds.get(node.attribute, (-math.inf, math.inf))
                left_bounds = dict(bounds)
                left_bounds[node.attribute] = (lo, min(hi, node.cutpoint))
                right_bounds = dict(bounds)
                right_bounds[node.attribute] = (max(lo, node.cutpoint), hi)
                descend(node.left, left_bounds)
                descend(node.right, right_bounds)

            descend(self.root, {})
            self._bottom_nodes = result
        return self._bottom_nodes

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route_rows(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Route every row to its leaf and return the per-row leaf index.

        The leaf index is the position of the leaf in :meth:`leaves`;
        callers map it to block ids via :meth:`block_ids` or handle the
        grouping themselves (as the loader does before block ids exist).

        All rows advance one tree level per iteration over the compiled node
        arrays, so the work is a handful of vectorized passes instead of a
        per-node recursion.

        Args:
            columns: Column name -> value array; must contain every attribute
                that appears in the tree.

        Returns:
            An ``int64`` array of leaf indices, one per row.
        """
        compiled = self.compiled()
        if not columns:
            return np.zeros(0, dtype=np.int64)
        for attribute in compiled.attributes:
            if attribute not in columns:
                raise PartitioningError(
                    f"cannot route rows: column {attribute!r} missing from data"
                )
        num_rows = len(next(iter(columns.values())))
        node_attr, cutpoints = compiled.node_attr, compiled.cutpoints
        left, right = compiled.left, compiled.right
        if not compiled.attributes:  # single-leaf tree
            return np.zeros(num_rows, dtype=np.int64)

        # One float64 row per attribute: comparing against a float cutpoint
        # promotes integer columns to float64 anyway, so this is exact.
        values = np.empty((len(compiled.attributes), num_rows), dtype=np.float64)
        for attr_index, attribute in enumerate(compiled.attributes):
            values[attr_index] = columns[attribute]

        rows = np.arange(num_rows, dtype=np.int64)
        nodes = np.zeros(num_rows, dtype=np.int64)
        final_nodes = np.empty(num_rows, dtype=np.int64)
        while rows.size:
            attrs = node_attr[nodes]
            at_leaf = attrs < 0
            if at_leaf.any():
                final_nodes[rows[at_leaf]] = nodes[at_leaf]
                keep = ~at_leaf
                rows, nodes, attrs = rows[keep], nodes[keep], attrs[keep]
                if not rows.size:
                    break
            goes_left = values[attrs, rows] <= cutpoints[nodes]
            nodes = np.where(goes_left, left[nodes], right[nodes])

        return compiled.leaf_pos[final_nodes].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Lookup (block pruning)
    # ------------------------------------------------------------------ #
    def lookup(self, predicates: list[Predicate] | None = None) -> list[int]:
        """Return the block ids of leaves that may contain matching rows.

        This is the ``lookup(T, q)`` function from the paper's cost model.
        Leaves that are not bound to a block id are skipped.  The walk is
        iterative over the compiled arrays: one ``(lo, hi)`` interval per
        attribute is narrowed before descending and restored afterwards, and
        only the predicates on the node's own split attribute are re-checked
        (the rest were already satisfied on the path down).
        """
        compiled = self.compiled()
        leaf_nodes = compiled.leaf_nodes

        predicates_by_attr: dict[int, list[Predicate]] = {}
        for predicate in predicates or ():
            attr_index = compiled.attribute_index.get(predicate.column)
            if attr_index is not None:
                predicates_by_attr.setdefault(attr_index, []).append(predicate)
        if not predicates_by_attr:
            if compiled.all_block_ids is None:
                compiled.all_block_ids = [
                    leaf.block_id for leaf in leaf_nodes if leaf.block_id is not None
                ]
            return list(compiled.all_block_ids)

        node_attr, cutpoints = compiled.node_attr, compiled.cutpoints
        left, right, leaf_pos = compiled.left, compiled.right, compiled.leaf_pos
        lo = [-math.inf] * len(compiled.attributes)
        hi = [math.inf] * len(compiled.attributes)
        matched: list[int] = []

        # Stack entries: (node, attr, lo_value, hi_value).  node >= 0 visits
        # that node after installing bounds[attr] = (lo_value, hi_value)
        # (attr < 0: nothing to install); node < 0 restores bounds[attr].
        stack: list[tuple[int, int, float, float]] = [(0, -1, 0.0, 0.0)]
        while stack:
            node, attr, lo_value, hi_value = stack.pop()
            if node < 0:
                lo[attr], hi[attr] = lo_value, hi_value
                continue
            if attr >= 0:
                lo[attr], hi[attr] = lo_value, hi_value
            split_attr = node_attr[node]
            if split_attr < 0:
                leaf = leaf_nodes[leaf_pos[node]]
                if leaf.block_id is not None:
                    matched.append(leaf.block_id)
                continue
            cutpoint = cutpoints[node]
            current_lo, current_hi = lo[split_attr], hi[split_attr]
            left_hi = cutpoint if cutpoint < current_hi else current_hi
            right_lo = cutpoint if cutpoint > current_lo else current_lo
            attr_predicates = predicates_by_attr.get(split_attr)
            if attr_predicates is None:
                visit_left = visit_right = True
            else:
                visit_left = all(
                    p.may_match_range(current_lo, left_hi) for p in attr_predicates
                )
                visit_right = all(
                    p.may_match_range(right_lo, current_hi) for p in attr_predicates
                )
            stack.append((-1, split_attr, current_lo, current_hi))
            if visit_right:
                stack.append((right[node], split_attr, right_lo, current_hi))
            if visit_left:
                stack.append((left[node], split_attr, current_lo, left_hi))

        return matched

    def lookup_block(self, block_id: int, predicates: list[Predicate] | None = None) -> bool:
        """Whether :meth:`lookup` would include ``block_id`` — in O(depth).

        Walks the compiled parent chain from the block's leaf to the root,
        intersecting the per-attribute path interval, and tests the
        predicates against that final interval.  ``may_match_range`` is
        monotone under interval widening for every operator, so passing the
        final (narrowest) interval implies passing every intermediate one —
        this reproduces :meth:`lookup` membership exactly without walking
        the whole tree.  Unknown block ids return ``False``.
        """
        compiled = self.compiled()
        if compiled.block_leaf_node is None:
            leaf_pos = compiled.leaf_pos
            leaf_nodes = compiled.leaf_nodes
            compiled.block_leaf_node = {
                bound: int(node)
                for node in np.flatnonzero(leaf_pos >= 0)
                if (bound := leaf_nodes[leaf_pos[node]].block_id) is not None
            }
        node = compiled.block_leaf_node.get(block_id)
        if node is None:
            return False

        # attribute index -> [lo, hi]; min/max make the walk order-free.
        intervals: dict[int, list[float]] = {}
        parent, left = compiled.parent, compiled.left
        node_attr, cutpoints = compiled.node_attr, compiled.cutpoints
        child = node
        above = int(parent[child])
        while above >= 0:
            box = intervals.setdefault(int(node_attr[above]), [-math.inf, math.inf])
            cutpoint = float(cutpoints[above])
            if left[above] == child:
                if cutpoint < box[1]:
                    box[1] = cutpoint
            elif cutpoint > box[0]:
                box[0] = cutpoint
            child = above
            above = int(parent[above])

        for predicate in predicates or ():
            attr_index = compiled.attribute_index.get(predicate.column)
            if attr_index is None:
                continue  # lookup() ignores predicates on unsplit columns
            box = intervals.get(attr_index)
            lo, hi = (box[0], box[1]) if box is not None else (-math.inf, math.inf)
            if not predicate.may_match_range(lo, hi):
                return False
        return True

    def leaf_bounds(self, attribute: str) -> dict[int, tuple[float, float]]:
        """Per-leaf value bounds of ``attribute`` implied by the tree structure.

        Returns a mapping ``block_id -> (lo, hi)`` for bound leaves.  Leaves
        under subtrees that never split on ``attribute`` get infinite bounds.
        """
        result: dict[int, tuple[float, float]] = {}

        def descend(node: TreeNode, lo: float, hi: float) -> None:
            if node.is_leaf:
                if node.block_id is not None:
                    result[node.block_id] = (lo, hi)
                return
            assert node.left is not None and node.right is not None
            if node.attribute == attribute:
                assert node.cutpoint is not None
                descend(node.left, lo, min(hi, node.cutpoint))
                descend(node.right, max(lo, node.cutpoint), hi)
            else:
                descend(node.left, lo, hi)
                descend(node.right, lo, hi)

        descend(self.root, -math.inf, math.inf)
        return result

    def describe(self) -> str:
        """Multi-line textual rendering of the tree (for debugging/docs)."""
        lines: list[str] = []

        def render(node: TreeNode, indent: int) -> None:
            prefix = "  " * indent
            if node.is_leaf:
                lines.append(f"{prefix}leaf block={node.block_id}")
                return
            lines.append(f"{prefix}{node.attribute} <= {node.cutpoint:g}")
            assert node.left is not None and node.right is not None
            render(node.left, indent + 1)
            render(node.right, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)
