"""Partitioning trees.

A partitioning tree (Amoeba [21], Section 3) is a balanced binary tree whose
internal nodes are ``(attribute, cutpoint)`` pairs and whose leaves are data
blocks.  Records with ``attribute <= cutpoint`` belong to the left subtree,
the rest to the right subtree.  The tree answers two questions:

* ``route_rows`` — which block does each record belong to (used when loading
  and when repartitioning), and
* ``lookup`` — which blocks can contain rows matching a set of predicates
  (used for block pruning and as the ``lookup(T, q)`` function of the cost
  model, equations (1) and (2)).

In AdaptDB a tree may additionally carry a *join attribute*: the top
``join_levels`` levels split on that attribute (two-phase partitioning,
Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import PartitioningError
from ..common.predicates import Predicate


@dataclass
class TreeNode:
    """A node of a partitioning tree.

    Internal nodes have ``attribute``/``cutpoint``/``left``/``right`` set and
    ``block_id`` unset; leaves are the opposite.
    """

    attribute: str | None = None
    cutpoint: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    block_id: int | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a leaf (i.e. a data block)."""
        return self.left is None and self.right is None

    def clone(self) -> "TreeNode":
        """Deep-copy the subtree rooted at this node."""
        if self.is_leaf:
            return TreeNode(block_id=self.block_id)
        assert self.left is not None and self.right is not None
        return TreeNode(
            attribute=self.attribute,
            cutpoint=self.cutpoint,
            left=self.left.clone(),
            right=self.right.clone(),
            block_id=None,
        )


@dataclass
class PartitioningTree:
    """A complete partitioning tree for one table (or one join attribute of it).

    Attributes:
        root: Root node.
        join_attribute: Join attribute this tree is optimized for (``None``
            for pure Amoeba trees that only adapt to selections).
        join_levels: Number of top levels reserved for the join attribute.
        tree_id: Identifier unique within the owning table.
    """

    root: TreeNode
    join_attribute: str | None = None
    join_levels: int = 0
    tree_id: int = 0

    # ------------------------------------------------------------------ #
    # Leaves
    # ------------------------------------------------------------------ #
    def leaves(self) -> list[TreeNode]:
        """All leaf nodes, left to right."""
        result: list[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.right)
                stack.append(node.left)
        return result

    @property
    def num_leaves(self) -> int:
        """Number of leaves (data blocks) in the tree."""
        return len(self.leaves())

    def block_ids(self) -> list[int]:
        """Block ids of all leaves that have been bound to blocks."""
        return [leaf.block_id for leaf in self.leaves() if leaf.block_id is not None]

    def assign_block_ids(self, block_ids: list[int]) -> None:
        """Bind leaf nodes to DFS block ids, left to right.

        Raises:
            PartitioningError: if the number of ids differs from the number
                of leaves.
        """
        leaves = self.leaves()
        if len(block_ids) != len(leaves):
            raise PartitioningError(
                f"expected {len(leaves)} block ids, got {len(block_ids)}"
            )
        for leaf, block_id in zip(leaves, block_ids):
            leaf.block_id = block_id

    # ------------------------------------------------------------------ #
    # Structure inspection
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Depth of the tree (a single leaf has depth 0)."""

        def node_depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(self.root)

    def attribute_counts(self) -> dict[str, int]:
        """How many internal nodes split on each attribute."""
        counts: dict[str, int] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            assert node.attribute is not None
            counts[node.attribute] = counts.get(node.attribute, 0) + 1
            assert node.left is not None and node.right is not None
            stack.append(node.left)
            stack.append(node.right)
        return counts

    def clone(self) -> "PartitioningTree":
        """Deep copy of the tree (shares no nodes with the original)."""
        return PartitioningTree(
            root=self.root.clone(),
            join_attribute=self.join_attribute,
            join_levels=self.join_levels,
            tree_id=self.tree_id,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route_rows(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Route every row to its leaf and return the per-row leaf index.

        The leaf index is the position of the leaf in :meth:`leaves`;
        callers map it to block ids via :meth:`block_ids` or handle the
        grouping themselves (as the loader does before block ids exist).

        Args:
            columns: Column name -> value array; must contain every attribute
                that appears in the tree.

        Returns:
            An ``int64`` array of leaf indices, one per row.
        """
        leaves = self.leaves()
        leaf_index = {id(leaf): index for index, leaf in enumerate(leaves)}
        if not columns:
            return np.zeros(0, dtype=np.int64)
        num_rows = len(next(iter(columns.values())))
        result = np.empty(num_rows, dtype=np.int64)

        def descend(node: TreeNode, row_indices: np.ndarray) -> None:
            if len(row_indices) == 0 and node.is_leaf:
                return
            if node.is_leaf:
                result[row_indices] = leaf_index[id(node)]
                return
            assert node.attribute is not None and node.cutpoint is not None
            if node.attribute not in columns:
                raise PartitioningError(
                    f"cannot route rows: column {node.attribute!r} missing from data"
                )
            values = columns[node.attribute][row_indices]
            goes_left = values <= node.cutpoint
            assert node.left is not None and node.right is not None
            descend(node.left, row_indices[goes_left])
            descend(node.right, row_indices[~goes_left])

        descend(self.root, np.arange(num_rows, dtype=np.int64))
        return result

    # ------------------------------------------------------------------ #
    # Lookup (block pruning)
    # ------------------------------------------------------------------ #
    def lookup(self, predicates: list[Predicate] | None = None) -> list[int]:
        """Return the block ids of leaves that may contain matching rows.

        This is the ``lookup(T, q)`` function from the paper's cost model.
        Leaves that are not bound to a block id are skipped.
        """
        predicates = predicates or []
        matched: list[int] = []

        def descend(node: TreeNode, bounds: dict[str, tuple[float, float]]) -> None:
            if node.is_leaf:
                if node.block_id is not None:
                    matched.append(node.block_id)
                return
            assert node.attribute is not None and node.cutpoint is not None
            assert node.left is not None and node.right is not None
            attribute, cutpoint = node.attribute, node.cutpoint

            lo, hi = bounds.get(attribute, (-math.inf, math.inf))
            left_bounds = dict(bounds)
            left_bounds[attribute] = (lo, min(hi, cutpoint))
            right_bounds = dict(bounds)
            right_bounds[attribute] = (max(lo, cutpoint), hi)

            if _bounds_may_match(left_bounds, predicates):
                descend(node.left, left_bounds)
            if _bounds_may_match(right_bounds, predicates):
                descend(node.right, right_bounds)

        descend(self.root, {})
        return matched

    def leaf_bounds(self, attribute: str) -> dict[int, tuple[float, float]]:
        """Per-leaf value bounds of ``attribute`` implied by the tree structure.

        Returns a mapping ``block_id -> (lo, hi)`` for bound leaves.  Leaves
        under subtrees that never split on ``attribute`` get infinite bounds.
        """
        result: dict[int, tuple[float, float]] = {}

        def descend(node: TreeNode, lo: float, hi: float) -> None:
            if node.is_leaf:
                if node.block_id is not None:
                    result[node.block_id] = (lo, hi)
                return
            assert node.left is not None and node.right is not None
            if node.attribute == attribute:
                assert node.cutpoint is not None
                descend(node.left, lo, min(hi, node.cutpoint))
                descend(node.right, max(lo, node.cutpoint), hi)
            else:
                descend(node.left, lo, hi)
                descend(node.right, lo, hi)

        descend(self.root, -math.inf, math.inf)
        return result

    def describe(self) -> str:
        """Multi-line textual rendering of the tree (for debugging/docs)."""
        lines: list[str] = []

        def render(node: TreeNode, indent: int) -> None:
            prefix = "  " * indent
            if node.is_leaf:
                lines.append(f"{prefix}leaf block={node.block_id}")
                return
            lines.append(f"{prefix}{node.attribute} <= {node.cutpoint:g}")
            assert node.left is not None and node.right is not None
            render(node.left, indent + 1)
            render(node.right, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)


def _bounds_may_match(bounds: dict[str, tuple[float, float]], predicates: list[Predicate]) -> bool:
    """Whether any value assignment within ``bounds`` can satisfy all predicates."""
    for predicate in predicates:
        bound = bounds.get(predicate.column)
        if bound is None:
            continue
        if not predicate.may_match_range(*bound):
            return False
    return True
