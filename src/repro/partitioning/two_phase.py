"""Two-phase partitioning (Section 5.1).

A two-phase tree reserves its top levels for the join attribute and its lower
levels for selection attributes:

* Phase one splits on *medians of the join attribute*, producing disjoint
  join-attribute ranges per subtree.  Median splits (rather than hash or
  equi-width ranges) keep blocks balanced under skew and still support range
  predicates on the join attribute.
* Phase two applies Amoeba's heterogeneous allocation over the selection
  attributes inside each join partition.

The fraction of levels reserved for the join attribute is the knob studied in
Figure 16; the paper defaults to one half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.errors import PartitioningError
from .builders import BalancedAttributeAllocator, build_median_tree
from .tree import PartitioningTree

DEFAULT_JOIN_LEVEL_FRACTION = 0.5


def default_join_levels(num_leaves: int, fraction: float = DEFAULT_JOIN_LEVEL_FRACTION) -> int:
    """Number of top levels reserved for the join attribute.

    The paper reserves ``fraction`` (default one half) of the tree depth.
    """
    if num_leaves <= 1:
        return 0
    depth = max(1, math.ceil(math.log2(num_leaves)))
    return max(0, round(depth * fraction))


@dataclass
class TwoPhasePartitioner:
    """Builds a two-phase partitioning tree for a given join attribute.

    Attributes:
        join_attribute: The attribute injected into the top of the tree.
        selection_attributes: Attributes used below the join levels (usually
            the predicate columns seen in the query window).
        rows_per_block: Target block size in rows.
        join_level_fraction: Fraction of tree depth reserved for the join
            attribute when ``join_levels`` is not given explicitly.
    """

    join_attribute: str
    selection_attributes: list[str]
    rows_per_block: int = 4096
    join_level_fraction: float = DEFAULT_JOIN_LEVEL_FRACTION

    def build(
        self,
        sample: dict[str, np.ndarray],
        total_rows: int,
        num_leaves: int | None = None,
        join_levels: int | None = None,
        tree_id: int = 0,
    ) -> PartitioningTree:
        """Build the two-phase tree.

        Args:
            sample: Sampled column values for cutpoint selection.
            total_rows: Number of rows the tree will eventually hold.
            num_leaves: Override for the number of leaves.
            join_levels: Override for the number of join levels (Figure 16
                sweeps this from 0 to the full depth).
            tree_id: Identifier assigned by the owning table.

        Returns:
            A :class:`PartitioningTree` whose ``join_attribute`` and
            ``join_levels`` reflect the requested configuration.
        """
        if self.join_attribute not in sample:
            raise PartitioningError(
                f"sample is missing the join attribute {self.join_attribute!r}"
            )
        if num_leaves is None:
            if self.rows_per_block <= 0:
                raise PartitioningError("rows_per_block must be positive")
            num_leaves = max(1, math.ceil(max(total_rows, 1) / self.rows_per_block))
        if join_levels is None:
            join_levels = default_join_levels(num_leaves, self.join_level_fraction)
        depth = max(1, math.ceil(math.log2(num_leaves))) if num_leaves > 1 else 0
        join_levels = int(min(max(join_levels, 0), depth))

        selection_attributes = [
            attribute for attribute in self.selection_attributes if attribute in sample
        ]
        # Fallback order matters only when the requested attribute cannot
        # split a subset: prefer selection attributes so join splits never
        # leak below the join levels.
        candidates = selection_attributes + [self.join_attribute]
        allocator = BalancedAttributeAllocator(selection_attributes or [self.join_attribute])

        def choose(level: int, path: list[str], indices: np.ndarray) -> str | None:
            if level < join_levels:
                return self.join_attribute
            return allocator(level, path, indices)

        root = build_median_tree(sample, num_leaves, choose, candidates)
        return PartitioningTree(
            root=root,
            join_attribute=self.join_attribute,
            join_levels=join_levels,
            tree_id=tree_id,
        )
