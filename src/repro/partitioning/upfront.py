"""Amoeba's upfront partitioner (Section 3.1).

Without any workload knowledge, the upfront partitioner recursively divides a
dataset on as many attributes as possible so that any future query can skip a
portion of the blocks.  The resulting balanced binary tree uses heterogeneous
branching: different attributes may appear at the same level so that more
attributes fit into a tree of limited depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import PartitioningError
from .builders import BalancedAttributeAllocator, build_median_tree
from .tree import PartitioningTree


def leaves_for_block_budget(num_rows: int, rows_per_block: int) -> int:
    """Number of leaves needed so each block holds at most ``rows_per_block`` rows."""
    if rows_per_block <= 0:
        raise PartitioningError("rows_per_block must be positive")
    if num_rows <= 0:
        return 1
    return max(1, math.ceil(num_rows / rows_per_block))


@dataclass
class UpfrontPartitioner:
    """Builds an Amoeba-style upfront partitioning tree from a sample.

    Attributes:
        attributes: Attributes eligible for partitioning (typically every
            numeric column of the table).
        rows_per_block: Target block size, expressed in rows (the paper's
            64 MB block translated to row counts at simulation scale).
    """

    attributes: list[str]
    rows_per_block: int = 4096
    _last_allocator: BalancedAttributeAllocator | None = field(default=None, repr=False)

    def build(
        self,
        sample: dict[str, np.ndarray],
        total_rows: int,
        num_leaves: int | None = None,
    ) -> PartitioningTree:
        """Build an upfront partitioning tree.

        Args:
            sample: Sampled column values used to choose cutpoints.
            total_rows: Number of rows in the full table (determines how many
                blocks are needed).
            num_leaves: Override for the number of leaves; defaults to the
                number of blocks implied by ``rows_per_block``.

        Returns:
            A :class:`PartitioningTree` with unbound leaves (block ids are
            assigned when the table is loaded).
        """
        if not self.attributes:
            raise PartitioningError("UpfrontPartitioner needs at least one attribute")
        leaves = num_leaves if num_leaves is not None else leaves_for_block_budget(
            total_rows, self.rows_per_block
        )
        allocator = BalancedAttributeAllocator(self.attributes)
        self._last_allocator = allocator
        root = build_median_tree(sample, leaves, allocator, self.attributes)
        return PartitioningTree(root=root, join_attribute=None, join_levels=0)

    @property
    def attribute_usage(self) -> dict[str, int]:
        """How many splits each attribute received in the most recent build."""
        if self._last_allocator is None:
            return {attribute: 0 for attribute in self.attributes}
        return dict(self._last_allocator.usage)
