"""Shared machinery for constructing partitioning trees from a data sample.

Both the Amoeba upfront partitioner and AdaptDB's two-phase partitioner are
recursive median splitters: a node splits its sample subset on some attribute
at the subset's median so that both children receive roughly half of the
rows.  The two partitioners differ only in *which* attribute each node splits
on, so that policy is injected as a callable.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..common.errors import PartitioningError
from .tree import TreeNode

# An attribute chooser receives (depth, attributes used on the path from the
# root, the candidate sample rows of the node) and returns the attribute to
# split on, or None to signal "any usable attribute".
AttributeChooser = Callable[[int, list[str], np.ndarray], str | None]


class SupportsSampleColumns(Protocol):
    """Anything exposing a mapping of column name to numpy array."""

    def __getitem__(self, name: str) -> np.ndarray: ...  # pragma: no cover


def median_cutpoint(values: np.ndarray) -> float | None:
    """Return a cutpoint that splits ``values`` into two non-empty halves.

    The cutpoint is the lower-median value; rows with ``value <= cutpoint``
    go left.  Returns ``None`` when the values cannot be split (fewer than
    two distinct values), which signals the caller to try another attribute.
    """
    if len(values) < 2:
        return None
    ordered = np.sort(values)
    cut = float(ordered[(len(ordered) - 1) // 2])
    if cut < ordered[-1]:
        return cut
    # The lower median equals the maximum (heavily skewed subset): fall back
    # to the largest value strictly below the maximum so the split is still
    # proper whenever the subset has at least two distinct values.
    below_max = ordered[ordered < ordered[-1]]
    if len(below_max) == 0:
        return None
    return float(below_max[-1])


def split_leaf_budget(num_leaves: int) -> tuple[int, int]:
    """Split a leaf budget between the two children of a node."""
    left = (num_leaves + 1) // 2
    right = num_leaves - left
    return left, right


def build_median_tree(
    sample: dict[str, np.ndarray],
    num_leaves: int,
    choose_attribute: AttributeChooser,
    candidate_attributes: list[str],
) -> TreeNode:
    """Recursively build a tree with ``num_leaves`` leaves by median splitting.

    Args:
        sample: Column name -> sampled values used to pick cutpoints.
        num_leaves: Desired number of leaves (>= 1).
        choose_attribute: Policy deciding which attribute a node splits on.
            When the chosen attribute cannot split the node's sample subset
            (all values equal), the builder falls back to any attribute in
            ``candidate_attributes`` that can, and finally to a degenerate
            split on the chosen attribute.
        candidate_attributes: Attributes allowed as fallbacks.

    Returns:
        The root :class:`TreeNode` of the constructed tree.

    Raises:
        PartitioningError: if ``num_leaves`` is not positive or the sample is
            missing a requested attribute.
    """
    if num_leaves < 1:
        raise PartitioningError("num_leaves must be >= 1")
    for attribute in candidate_attributes:
        if attribute not in sample:
            raise PartitioningError(f"sample is missing attribute {attribute!r}")

    sample_size = len(next(iter(sample.values()))) if sample else 0
    all_indices = np.arange(sample_size, dtype=np.int64)

    def build(indices: np.ndarray, leaves: int, depth: int, path: list[str]) -> TreeNode:
        if leaves == 1:
            return TreeNode()

        chosen = choose_attribute(depth, path, indices)
        ordered_candidates: list[str] = []
        if chosen is not None:
            ordered_candidates.append(chosen)
        ordered_candidates.extend(a for a in candidate_attributes if a not in ordered_candidates)

        attribute, cutpoint = _pick_splittable(sample, indices, ordered_candidates)
        if attribute is None:
            # Nothing in the sample can split this subset (e.g. it is empty or
            # fully duplicated).  Fall back to a degenerate split: the left
            # child receives everything, the right child exists only to keep
            # the leaf count; the median of the *full* sample is used so that
            # routing future data still spreads rows.
            attribute = ordered_candidates[0]
            full_values = sample[attribute]
            cutpoint = float(np.median(full_values)) if len(full_values) else 0.0

        left_budget, right_budget = split_leaf_budget(leaves)
        values = sample[attribute][indices]
        goes_left = values <= cutpoint
        left_child = build(indices[goes_left], left_budget, depth + 1, path + [attribute])
        right_child = build(indices[~goes_left], right_budget, depth + 1, path + [attribute])
        return TreeNode(attribute=attribute, cutpoint=cutpoint, left=left_child, right=right_child)

    return build(all_indices, num_leaves, 0, [])


def _pick_splittable(
    sample: dict[str, np.ndarray],
    indices: np.ndarray,
    ordered_candidates: list[str],
) -> tuple[str | None, float | None]:
    """Return the first attribute (in preference order) that can split ``indices``."""
    for attribute in ordered_candidates:
        cut = median_cutpoint(sample[attribute][indices])
        if cut is not None:
            return attribute, cut
    return None, None


class BalancedAttributeAllocator:
    """Amoeba's heterogeneous-branching allocation policy (Section 3.1).

    The allocator tries to keep the *average number of ways each attribute is
    partitioned on* roughly equal: a node prefers the attribute that is least
    used globally and that has not already been used on the node's own path
    (so an attribute's splits compose rather than repeat immediately).
    """

    def __init__(self, attributes: list[str]) -> None:
        if not attributes:
            raise PartitioningError("at least one partitioning attribute is required")
        self.attributes = list(attributes)
        self.usage = {attribute: 0 for attribute in attributes}

    def __call__(self, depth: int, path: list[str], indices: np.ndarray) -> str | None:
        unused_on_path = [a for a in self.attributes if a not in path]
        pool = unused_on_path or self.attributes
        chosen = min(pool, key=lambda a: (self.usage[a], self.attributes.index(a)))
        self.usage[chosen] += 1
        return chosen
