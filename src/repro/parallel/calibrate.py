"""Sim-vs-real calibration: does the simulator predict measured makespans?

The PR-4 discrete-event simulator predicts a schedule's completion time in
modelled cost units; the parallel backend measures the same schedule's
wall-clock time on real cores.  This harness runs both over a workload and
reports:

* a fitted ``to_seconds`` scale — the least-squares ``seconds per cost
  unit`` mapping simulator predictions onto measurements (what
  ``CostModel.seconds_per_block`` *should* be on this machine),
* the per-query relative error after applying that scale,
* a per-stage (task-kind) breakdown: each kind's share of predicted cost
  vs. its share of measured wall time, which localises model error to
  scans, shuffle maps, reduces or hyper groups,
* a fingerprint cross-check: every query is replayed through the
  in-process task backend and must produce a bit-identical
  ``QueryResult.fingerprint()``.

Repartition tasks are stripped from schedules before simulation so the
prediction covers exactly the query work the parallel backend executes
(adaptation rewrites blocks in the parent and is not dispatched).

Wall-clock reads stay inside the parallel backend's marked helper; this
module only consumes the measured ``wall_seconds`` it reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..common.predicates import between
from ..common.query import Query, join_query, scan_query
from ..exec.tasks import TaskKind, TaskSchedule
from ..sim.backend import SimBackend
from .backend import ParallelBackend

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids an import
    # cycle: repro.api.session registers ParallelBackend from this package)
    from ..api.session import Session

#: Task kinds that appear in query schedules (repartitions are stripped).
QUERY_KINDS = ("scan", "shuffle_map", "shuffle_reduce", "hyper_group")


# --------------------------------------------------------------------- #
# Calibration workloads (deterministic: no RNG, fixed predicate grids)
# --------------------------------------------------------------------- #
def fig08_scan_queries(num_queries: int = 4) -> list[Query]:
    """Fig08-style selective scans over ``lineitem`` (quantity windows)."""
    queries = []
    for index in range(num_queries):
        low = 1 + (index * 11) % 35
        queries.append(
            scan_query(
                "lineitem",
                [between("l_quantity", low, low + 12)],
                template=f"fig8-scan-{index}",
            )
        )
    return queries


def fig13_join_queries(num_queries: int = 3) -> list[Query]:
    """Fig13-style ``lineitem ⋈ orders`` joins with shifting selections."""
    queries = []
    for index in range(num_queries):
        low = 5 + (index * 9) % 30
        queries.append(
            join_query(
                "lineitem",
                "orders",
                "l_orderkey",
                "o_orderkey",
                predicates={"lineitem": [between("l_quantity", low, low + 20)]},
                template=f"fig13-join-{index}",
            )
        )
    return queries


# --------------------------------------------------------------------- #
# Report records
# --------------------------------------------------------------------- #
@dataclass
class QueryCalibration:
    """One query's predicted vs. measured makespan."""

    template: str
    predicted_units: float
    predicted_seconds: float
    measured_seconds: float
    fingerprint_matches_tasks: bool

    def as_dict(self) -> dict:
        return {
            "template": self.template,
            "predicted_units": round(self.predicted_units, 6),
            "predicted_seconds": round(self.predicted_seconds, 6),
            "measured_seconds": round(self.measured_seconds, 6),
            "fingerprint_matches_tasks": self.fingerprint_matches_tasks,
        }


@dataclass
class CalibrationReport:
    """Workload-level calibration outcome."""

    workload: str
    num_workers: int
    repeats: int
    queries: list[QueryCalibration] = field(default_factory=list)
    #: kind -> {"predicted_units", "measured_seconds",
    #:          "predicted_share", "measured_share", "share_error"}
    per_stage: dict[str, dict[str, float]] = field(default_factory=dict)
    fitted_seconds_per_unit: float = 0.0
    mean_relative_error: float = 0.0

    @property
    def all_fingerprints_match(self) -> bool:
        return all(q.fingerprint_matches_tasks for q in self.queries)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "num_workers": self.num_workers,
            "repeats": self.repeats,
            "fitted_seconds_per_unit": round(self.fitted_seconds_per_unit, 9),
            "mean_relative_error": round(self.mean_relative_error, 6),
            "all_fingerprints_match": self.all_fingerprints_match,
            "per_stage": {
                kind: {key: round(value, 6) for key, value in stats.items()}
                for kind, stats in self.per_stage.items()
            },
            "queries": [q.as_dict() for q in self.queries],
        }


def stored_seconds_per_unit(path: Path | None = None) -> float | None:
    """The machine-calibrated seconds-per-cost-unit recorded by the benches.

    Reads the fitted scales of the ``post`` calibration workloads from
    ``BENCH_adaptation.json`` (written by ``benchmarks/perf/bench_parallel.py``)
    and returns their mean, or ``None`` when no usable record exists —
    sessions with ``AdaptDBConfig.calibrated_cost_model`` fall back to the
    nominal ``seconds_per_block`` then.
    """
    if path is None:
        path = Path(__file__).resolve().parents[3] / "BENCH_adaptation.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    calibration = payload.get("post", {}).get("parallel", {}).get("calibration", {})
    if not isinstance(calibration, dict):
        return None
    fitted = [
        workload.get("fitted_seconds_per_unit")
        for workload in calibration.values()
        if isinstance(workload, dict)
    ]
    usable = [value for value in fitted if isinstance(value, (int, float)) and value > 0]
    if not usable:
        return None
    return sum(usable) / len(usable)


def apply_calibration(session: "Session", report: CalibrationReport) -> float:
    """Feed a report's fitted scale into the session's cost model.

    The programmatic counterpart of ``AdaptDBConfig.calibrated_cost_model``
    (which reads the *stored* calibration at session construction): after
    running :func:`calibrate` on this very machine, apply the fit directly so
    subsequent modelled runtimes are machine-calibrated.  A degenerate fit
    (zero or negative scale, e.g. from an empty workload) is ignored.

    Returns:
        The cost model's ``seconds_per_block`` after the update.
    """
    if report.fitted_seconds_per_unit > 0:
        session.cluster.cost_model = replace(
            session.cluster.cost_model,
            seconds_per_block=report.fitted_seconds_per_unit,
        )
    return session.cluster.cost_model.seconds_per_block


def strip_repartitions(schedule: TaskSchedule) -> TaskSchedule:
    """A copy of ``schedule`` without repartition tasks (query work only)."""
    return TaskSchedule(
        num_machines=schedule.num_machines,
        assignments={
            machine_id: [
                task for task in placed if task.kind is not TaskKind.REPARTITION
            ]
            for machine_id, placed in schedule.assignments.items()
        },
    )


# --------------------------------------------------------------------- #
# The harness
# --------------------------------------------------------------------- #
def calibrate(
    session: "Session",
    queries: list[Query],
    repeats: int = 3,
    warmup: int = 1,
    workload: str = "workload",
) -> CalibrationReport:
    """Predict (simulator) and measure (parallel backend) every query.

    The session's parallel backend is selected for the measured runs; the
    task backend replays each physical plan once for the fingerprint
    cross-check, and the simulated backend's single-query simulator
    produces the predictions.  Measurements take the fastest of
    ``repeats`` runs after ``warmup`` throwaway executions (which also pin
    the shared-memory segments, so pin cost is excluded).
    """
    parallel = session.backends["parallel"]
    assert isinstance(parallel, ParallelBackend)
    sim = session.backends["simulated"]
    assert isinstance(sim, SimBackend)
    seconds_per_unit_model = session.cluster.cost_model.seconds_per_block

    report = CalibrationReport(
        workload=workload, num_workers=parallel.num_workers, repeats=repeats
    )
    kind_pred: dict[str, float] = {kind: 0.0 for kind in QUERY_KINDS}
    kind_meas: dict[str, float] = {kind: 0.0 for kind in QUERY_KINDS}

    for query in queries:
        physical = session.lower(session.plan(query, adapt=False))
        stripped = strip_repartitions(physical.schedule)
        predicted_seconds = sim.simulate_schedule(stripped).finished_at
        predicted_units = (
            predicted_seconds / seconds_per_unit_model
            if seconds_per_unit_model
            else predicted_seconds
        )

        session.use_backend("tasks")
        tasks_fingerprint = session.execute(physical).fingerprint()

        session.use_backend("parallel")
        for _ in range(warmup):
            session.execute(physical)
        measured = float("inf")
        parallel_fingerprint: tuple = ()
        best_records = list(parallel.last_task_records)
        for _ in range(max(repeats, 1)):
            result = session.execute(physical)
            if result.wall_seconds < measured:
                measured = result.wall_seconds
                parallel_fingerprint = result.fingerprint()
                best_records = list(parallel.last_task_records)
        for record in best_records:
            if record.kind in kind_meas:
                kind_meas[record.kind] += record.wall_seconds
        for task in stripped.tasks:
            if task.kind.value in kind_pred:
                kind_pred[task.kind.value] += task.cost_units

        report.queries.append(
            QueryCalibration(
                template=query.template or str(query.query_id),
                predicted_units=predicted_units,
                predicted_seconds=predicted_seconds,
                measured_seconds=measured,
                fingerprint_matches_tasks=(parallel_fingerprint == tasks_fingerprint),
            )
        )

    # Least-squares fit of measured = scale * predicted_units.
    numerator = sum(q.predicted_units * q.measured_seconds for q in report.queries)
    denominator = sum(q.predicted_units**2 for q in report.queries)
    scale = numerator / denominator if denominator else 0.0
    report.fitted_seconds_per_unit = scale
    errors = [
        abs(scale * q.predicted_units - q.measured_seconds) / q.measured_seconds
        for q in report.queries
        if q.measured_seconds > 0
    ]
    report.mean_relative_error = sum(errors) / len(errors) if errors else 0.0

    total_pred = sum(kind_pred.values()) or 1.0
    total_meas = sum(kind_meas.values()) or 1.0
    for kind in QUERY_KINDS:
        predicted_share = kind_pred[kind] / total_pred
        measured_share = kind_meas[kind] / total_meas
        report.per_stage[kind] = {
            "predicted_units": kind_pred[kind],
            "measured_seconds": kind_meas[kind],
            "predicted_share": predicted_share,
            "measured_share": measured_share,
            "share_error": measured_share - predicted_share,
        }
    return report
