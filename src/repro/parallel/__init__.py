"""True multi-core execution: worker pool, shared-memory transport, calibration.

The fourth execution backend (``execution_backend="parallel"``): compiled
task schedules run on a persistent process pool with block columns shipped
through shared-memory segments, producing results and fingerprints
bit-identical to the in-process task engine plus measured
``wall_seconds``.  ``repro.parallel.calibrate`` compares the ``repro.sim``
simulator's makespan predictions against those measurements.
"""

from .backend import ParallelBackend, TaskRecord
from .calibrate import (
    CalibrationReport,
    QueryCalibration,
    calibrate,
    fig08_scan_queries,
    fig13_join_queries,
    strip_repartitions,
)
from .pool import TaskOutcome, WorkerPool

__all__ = [
    "CalibrationReport",
    "ParallelBackend",
    "QueryCalibration",
    "TaskOutcome",
    "TaskRecord",
    "WorkerPool",
    "calibrate",
    "fig08_scan_queries",
    "fig13_join_queries",
    "strip_repartitions",
]
