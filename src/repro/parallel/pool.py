"""Persistent worker pool for the multi-core execution backend.

One worker process per simulated machine (folded modulo ``num_workers``
when the pool is smaller than the cluster).  Workers receive small
picklable *payloads* — task ids, shared-memory pins
(:class:`~repro.storage.shared_memory.TablePin`), block ids, predicates —
never live ``Block``/``StoredTable`` objects: block columns travel through
the pinned shared-memory segments, and only shuffle keys and row counts
cross the queues.  Each worker runs exactly the task kernels the
in-process engine runs (``repro.exec.kernels_tasks``), so the parent can
merge outcomes through the same accounting and stay bit-identical.

Timing discipline: workers stamp each task with a wall-clock duration via
the single marked helper below.  The measured times feed *reporting only*
(``QueryResult.wall_seconds`` and the calibration harness) — never a
decision, never a fingerprint — which is why the wall-clock reads are
``# repro: allow``-ed for the determinism checker.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
import traceback
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..common.clock import monotonic_seconds
from ..common.errors import ExecutionError
from ..common.predicates import Predicate
from ..exec.kernels_tasks import (
    run_hyper_group_task,
    run_scan_task,
    run_shuffle_map_task,
    run_shuffle_reduce_task,
)
from ..storage.shared_memory import SharedSegmentCache, TablePin


def _wall() -> float:
    """The pool's wall-clock source (reporting-only measurements).

    Measured task durations are reported on ``QueryResult.wall_seconds``
    and in the calibration harness; they never feed a planning decision or
    a fingerprint, so they go through the sanctioned
    :func:`repro.common.clock.monotonic_seconds` helper.
    """
    return monotonic_seconds()


# --------------------------------------------------------------------- #
# Task payloads (picklable; ids + pins + flat data only)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScanPayload:
    """One scan task: count rows of ``block_ids`` matching ``predicates``."""

    task_id: int
    pin: TablePin
    block_ids: tuple[int, ...]
    predicates: tuple[Predicate, ...]


@dataclass(frozen=True)
class ShuffleMapPayload:
    """One shuffle-map task: filter and hash-partition join keys."""

    task_id: int
    pin: TablePin
    block_ids: tuple[int, ...]
    key_column: str
    predicates: tuple[Predicate, ...]
    num_partitions: int


@dataclass(frozen=True)
class ShuffleReducePayload:
    """One shuffle-reduce task: join cardinality of one partition's keys."""

    task_id: int
    build_keys: np.ndarray
    probe_keys: np.ndarray


@dataclass(frozen=True)
class HyperGroupPayload:
    """One hyper-join group: build one histogram, probe overlapping blocks."""

    task_id: int
    build_pin: TablePin
    probe_pin: TablePin
    build_block_ids: tuple[int, ...]
    probe_block_ids: tuple[int, ...]
    build_column: str
    probe_column: str
    build_predicates: tuple[Predicate, ...]
    probe_predicates: tuple[Predicate, ...]


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker reports back for one executed task."""

    task_id: int
    rows: int
    blocks_read: int
    wall_seconds: float
    #: Shuffle-map only: one key array per target partition.
    parts: tuple[np.ndarray, ...] | None = None


Payload = ScanPayload | ShuffleMapPayload | ShuffleReducePayload | HyperGroupPayload


# --------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------- #
def _execute_payload(payload: Payload, cache: SharedSegmentCache) -> TaskOutcome:
    started = _wall()
    if isinstance(payload, ScanPayload):
        blocks = cache.get_blocks(payload.pin, list(payload.block_ids))
        rows = run_scan_task(blocks, list(payload.predicates))
        return TaskOutcome(payload.task_id, rows, len(payload.block_ids), _wall() - started)
    if isinstance(payload, ShuffleMapPayload):
        blocks = cache.get_blocks(payload.pin, list(payload.block_ids))
        parts = run_shuffle_map_task(
            blocks,
            payload.key_column,
            list(payload.predicates),
            payload.num_partitions,
        )
        return TaskOutcome(
            payload.task_id,
            0,
            len(payload.block_ids),
            _wall() - started,
            parts=tuple(parts),
        )
    if isinstance(payload, ShuffleReducePayload):
        rows = run_shuffle_reduce_task(payload.build_keys, payload.probe_keys)
        return TaskOutcome(payload.task_id, rows, 0, _wall() - started)
    build_blocks = cache.get_blocks(payload.build_pin, list(payload.build_block_ids))
    probe_blocks = cache.get_blocks(payload.probe_pin, list(payload.probe_block_ids))
    rows = run_hyper_group_task(
        build_blocks,
        probe_blocks,
        payload.build_column,
        payload.probe_column,
        list(payload.build_predicates),
        list(payload.probe_predicates),
    )
    blocks_read = len(payload.build_block_ids) + len(payload.probe_block_ids)
    return TaskOutcome(payload.task_id, rows, blocks_read, _wall() - started)


def _worker_main(worker_index: int, tasks: Any, results: Any) -> None:
    """Worker loop: execute payloads until the ``None`` sentinel arrives."""
    cache = SharedSegmentCache()
    try:
        while True:
            payload = tasks.get()
            if payload is None:
                return
            try:
                outcome = _execute_payload(payload, cache)
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                results.put(
                    ("error", worker_index, payload.task_id,
                     f"{exc!r}\n{traceback.format_exc()}")
                )
            else:
                results.put(("ok", worker_index, outcome))
    finally:
        cache.close()


# --------------------------------------------------------------------- #
# Parent-side pool
# --------------------------------------------------------------------- #
class WorkerPool:
    """A persistent pool of task-executing worker processes.

    One task queue per worker (the backend maps machine ids onto workers,
    so placement survives the process boundary) and one shared result
    queue.  Workers are daemons: even an abandoned pool cannot outlive the
    parent process.
    """

    def __init__(self, num_workers: int, start_method: str | None = None) -> None:
        if num_workers < 1:
            raise ExecutionError("WorkerPool needs at least one worker")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.num_workers = num_workers
        self.start_method = start_method
        ctx = multiprocessing.get_context(start_method)
        self._results: Any = ctx.Queue()
        self._task_queues: list[Any] = [ctx.Queue() for _ in range(num_workers)]
        self._workers = []
        for index in range(num_workers):
            process = ctx.Process(
                target=_worker_main,
                args=(index, self._task_queues[index], self._results),
                daemon=True,
                name=f"repro-parallel-{index}",
            )
            process.start()
            self._workers.append(process)
        self._closed = False

    # -------------------------------------------------------------- #
    # Dispatch / collect
    # -------------------------------------------------------------- #
    def submit(self, worker_index: int, payload: Payload) -> None:
        """Enqueue ``payload`` on one worker's task queue."""
        if self._closed:
            raise ExecutionError("WorkerPool is closed")
        self._task_queues[worker_index % self.num_workers].put(payload)

    def collect(self, count: int, timeout: float = 60.0) -> list[TaskOutcome]:
        """Gather ``count`` outcomes, raising if a worker dies or errors.

        ``timeout`` bounds the wait per outcome *between* liveness checks —
        a crashed worker (e.g. killed by a signal, so it cannot report) is
        detected within about a second rather than after the full timeout.
        """
        outcomes: list[TaskOutcome] = []
        deadline = _wall() + timeout
        while len(outcomes) < count:
            try:
                item = self._results.get(timeout=1.0)
            except queue_module.Empty:
                dead = [w.name for w in self._workers if not w.is_alive()]
                if dead:
                    raise ExecutionError(
                        f"worker process(es) died during execution: {dead}"
                    ) from None
                if _wall() > deadline:
                    raise ExecutionError(
                        f"timed out collecting task outcomes ({len(outcomes)}/{count})"
                    ) from None
                continue
            if item[0] == "error":
                _, worker_index, task_id, detail = item
                raise ExecutionError(
                    f"task {task_id} failed on worker {worker_index}: {detail}"
                )
            outcomes.append(item[2])
        return outcomes

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and all(w.is_alive() for w in self._workers)

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut the pool down: sentinel every worker, then join/terminate.

        During interpreter finalization (a pool dropped without ``close()``
        reaches here via ``__del__`` at exit) queue operations are skipped
        entirely: a sentinel ``put`` on a queue whose feeder thread never
        started would call ``Thread.start()``, which deadlocks once the
        interpreter stops admitting new threads.  The workers are daemons,
        so terminating them directly is safe and sufficient.
        """
        if self._closed:
            return
        self._closed = True
        finalizing = sys.is_finalizing()
        if not finalizing:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - torn down
                    pass
        for worker in self._workers:
            if finalizing:
                worker.terminate()
            worker.join(timeout=join_timeout)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)
        if not finalizing:
            for task_queue in [*self._task_queues, self._results]:
                task_queue.close()
                task_queue.join_thread()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(join_timeout=0.5)
        except Exception:
            pass
