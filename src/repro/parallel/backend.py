"""The multi-core execution backend (``execution_backend="parallel"``).

:class:`ParallelBackend` replays already-compiled :class:`TaskSchedule`\\ s
on a persistent :class:`~repro.parallel.pool.WorkerPool` — one worker per
simulated machine (folded modulo ``num_workers``).  Block columns reach the
workers through shared-memory segments pinned by a
:class:`~repro.storage.shared_memory.SharedBlockStore`; pins are
epoch-checked, so any repartition between queries rebuilds the affected
table's segment before the next dispatch.

Determinism contract: the parent merges worker outcomes **in task-id
order within each stage** — exactly the order the in-process engine
executes placements — through the same
:meth:`~repro.exec.engine.Executor.begin_schedule` /
``apply_*`` / :meth:`~repro.exec.engine.Executor.finish_schedule`
accounting, so ``QueryResult.fingerprint()`` is bit-identical to
:class:`~repro.api.backends.TaskBackend`.  The only parallel-specific
fields are the wall-clock measurements (``wall_seconds`` /
``machine_wall_seconds``), which fingerprints exclude.

The two-stage dispatch mirrors the schedule's shuffle barrier: stage 0
(scans, shuffle maps, hyper groups) fans out first; the returned map
outcomes are merged into the join states, and only then are stage 1
reduce payloads — carrying the concatenated per-partition key arrays —
built and fanned out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import Cluster
from ..core.config import AdaptDBConfig
from ..core.optimizer import QueryPlan
from ..exec.engine import Executor, JoinState
from ..exec.kernels_tasks import (
    apply_hyper_group_outcome,
    apply_scan_outcome,
    apply_shuffle_map_outcome,
    apply_shuffle_reduce_outcome,
)
from ..exec.result import QueryResult
from ..exec.scheduler import CompiledPlan, Scheduler, compile_plan
from ..exec.tasks import Task, TaskKind, TaskSchedule
from ..storage.catalog import Catalog
from ..storage.shared_memory import SharedBlockStore, TablePin
from .pool import (
    HyperGroupPayload,
    Payload,
    ScanPayload,
    ShuffleMapPayload,
    ShuffleReducePayload,
    TaskOutcome,
    WorkerPool,
    _wall,
)


@dataclass(frozen=True)
class TaskRecord:
    """Per-task measurement retained for the calibration harness."""

    task_id: int
    kind: str
    machine_id: int
    cost_units: float
    wall_seconds: float


@dataclass
class ParallelBackend:
    """True multi-core execution behind the backend protocol."""

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig
    name: str = "parallel"
    #: Replays the lowered task schedule, like the task backend.
    consumes_schedule = True
    executor: Executor = field(init=False)
    store: SharedBlockStore = field(init=False)
    #: Per-task wall measurements of the most recent execution (reporting
    #: and calibration only — never consulted by planning).
    last_task_records: list[TaskRecord] = field(init=False, default_factory=list)
    _pool: WorkerPool | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.executor = Executor(
            catalog=self.catalog, cluster=self.cluster, config=self.config
        )
        self.store = SharedBlockStore()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Pool size: ``config.num_workers`` or one worker per machine."""
        return self.config.num_workers or self.cluster.num_machines

    def ensure_pool(self) -> WorkerPool:
        """Start (or restart after a crash/close) the worker pool lazily."""
        if self._pool is not None and not self._pool.alive:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = WorkerPool(self.num_workers, self.config.worker_start_method)
        return self._pool

    @property
    def pool(self) -> WorkerPool | None:
        """The current pool, if one has been started."""
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and unlink every pinned segment."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.store.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, physical) -> QueryResult:
        """Run a physical plan's schedule on the worker pool."""
        if physical.schedule_elided:
            # The plan was lowered for a schedule-free backend (e.g. the
            # session's backend was switched afterwards): compile fresh.
            compiled = compile_plan(
                physical.logical, self.catalog, self.cluster, self.config
            )
            schedule = Scheduler(self.cluster.num_machines).schedule(compiled.tasks)
        else:
            compiled, schedule = physical.compiled, physical.schedule
        return self.execute_schedule(physical.logical, compiled, schedule)

    def execute_schedule(
        self, plan: QueryPlan, compiled: CompiledPlan, schedule: TaskSchedule
    ) -> QueryResult:
        """Dispatch a compiled schedule to the pool and merge the outcomes."""
        pool = self.ensure_pool()
        result, states = self.executor.begin_schedule(plan, compiled)
        placements = schedule.placements()
        machine_of = {task.task_id: machine_id for machine_id, task in placements}
        task_of = {task.task_id: task for _, task in placements}
        records: list[TaskRecord] = []
        machine_wall = [0.0] * self.cluster.num_machines
        started = _wall()

        # Stage 0: scans, shuffle maps, hyper groups (repartitions are
        # cost-only no-ops the accounting already charged).
        dispatched = 0
        for machine_id, task in placements:
            if task.stage != 0 or task.kind is TaskKind.REPARTITION:
                continue
            payload = self._stage0_payload(plan, states, task)
            # Mirror the in-process engine's DFS accounting so locality
            # statistics match TaskBackend's (block data itself travels via
            # shared memory, not through this call).
            self._account_reads(task, machine_id, states)
            pool.submit(machine_id, payload)
            dispatched += 1
        outcomes = pool.collect(dispatched)
        for outcome in sorted(outcomes, key=lambda o: o.task_id):
            task = task_of[outcome.task_id]
            self._apply_stage0(plan, states, result, task, outcome)
            machine_id = machine_of[outcome.task_id]
            machine_wall[machine_id] += outcome.wall_seconds
            records.append(self._record(task, machine_id, outcome))

        # Stage 1: shuffle reduces, fed from the merged map partitions.
        dispatched = 0
        for machine_id, task in placements:
            if task.stage == 0 or task.kind is not TaskKind.SHUFFLE_REDUCE:
                continue
            state = states[task.join_index]
            pool.submit(
                machine_id,
                ShuffleReducePayload(
                    task_id=task.task_id,
                    build_keys=state.partition_keys("build", task.partition_index),
                    probe_keys=state.partition_keys("probe", task.partition_index),
                ),
            )
            dispatched += 1
        outcomes = pool.collect(dispatched)
        for outcome in sorted(outcomes, key=lambda o: o.task_id):
            task = task_of[outcome.task_id]
            apply_shuffle_reduce_outcome(states[task.join_index], outcome.rows)
            machine_id = machine_of[outcome.task_id]
            machine_wall[machine_id] += outcome.wall_seconds
            records.append(self._record(task, machine_id, outcome))

        result = self.executor.finish_schedule(plan, schedule, states, result)
        result.wall_seconds = _wall() - started
        result.machine_wall_seconds = machine_wall
        self.last_task_records = sorted(records, key=lambda r: r.task_id)
        return result

    # ------------------------------------------------------------------ #
    # Payload construction / outcome merging
    # ------------------------------------------------------------------ #
    def _pin(self, table_name: str) -> TablePin:
        return self.store.pin_table(self.catalog.get(table_name))

    def _stage0_payload(
        self, plan: QueryPlan, states: list[JoinState], task: Task
    ) -> Payload:
        if task.kind is TaskKind.SCAN:
            assert task.table is not None
            return ScanPayload(
                task_id=task.task_id,
                pin=self._pin(task.table),
                block_ids=tuple(task.block_ids),
                predicates=tuple(plan.query.predicates_on(task.table)),
            )
        state = states[task.join_index]
        decision = state.decision
        if task.kind is TaskKind.SHUFFLE_MAP:
            assert task.table is not None
            return ShuffleMapPayload(
                task_id=task.task_id,
                pin=self._pin(task.table),
                block_ids=tuple(task.block_ids),
                key_column=decision.clause.column_for(task.table),
                predicates=tuple(plan.query.predicates_on(task.table)),
                num_partitions=state.num_partitions,
            )
        return HyperGroupPayload(
            task_id=task.task_id,
            build_pin=self._pin(decision.build_table),
            probe_pin=self._pin(decision.probe_table),
            build_block_ids=tuple(task.block_ids),
            probe_block_ids=tuple(task.probe_block_ids),
            build_column=decision.clause.column_for(decision.build_table),
            probe_column=decision.clause.column_for(decision.probe_table),
            build_predicates=tuple(plan.query.predicates_on(decision.build_table)),
            probe_predicates=tuple(plan.query.predicates_on(decision.probe_table)),
        )

    def _apply_stage0(
        self,
        plan: QueryPlan,
        states: list[JoinState],
        result: QueryResult,
        task: Task,
        outcome: TaskOutcome,
    ) -> None:
        if task.kind is TaskKind.SCAN:
            apply_scan_outcome(result, task, outcome.rows)
        elif task.kind is TaskKind.SHUFFLE_MAP:
            assert outcome.parts is not None
            apply_shuffle_map_outcome(states[task.join_index], task, outcome.parts)
        else:
            apply_hyper_group_outcome(states[task.join_index], task, outcome.rows)

    def _account_reads(
        self, task: Task, machine_id: int, states: list[JoinState]
    ) -> None:
        """Charge the task's block reads to the DFS locality counters."""
        if task.kind is TaskKind.HYPER_GROUP:
            table_name = states[task.join_index].decision.build_table
        else:
            assert task.table is not None
            table_name = task.table
        dfs = self.catalog.get(table_name).dfs
        if task.block_ids:
            dfs.get_blocks(task.block_ids, machine_id)
        if task.probe_block_ids:
            dfs.get_blocks(task.probe_block_ids, machine_id)

    @staticmethod
    def _record(task: Task, machine_id: int, outcome: TaskOutcome) -> TaskRecord:
        return TaskRecord(
            task_id=task.task_id,
            kind=task.kind.value,
            machine_id=machine_id,
            cost_units=task.cost_units,
            wall_seconds=outcome.wall_seconds,
        )
