"""Figure 12 — per-template TPC-H comparison.

For each of the seven join templates (q3, q5, q8, q10, q12, q14, q19) the
paper reports the average runtime of AdaptDB with hyper-join, AdaptDB with
shuffle join, Amoeba, and PREF, after the smooth repartitioning algorithm has
converged to a single tree on the template's join attribute.

The reproduction follows the same protocol: each system is warmed up with a
number of queries from the template (during which AdaptDB adapts its trees),
and the reported value is the mean modelled runtime over a set of measured
runs with fresh parameter values.
"""

from __future__ import annotations

import numpy as np

from ..baselines.pref import PREFBaseline
from ..baselines.runners import AdaptDBRunner, AdaptDBShuffleOnlyRunner, AmoebaBaseline
from ..common.rng import derive_rng, make_rng
from ..core.config import AdaptDBConfig
from ..workloads.tpch import TPCHGenerator
from ..workloads.tpch_queries import tables_for_templates, tpch_query
from .harness import ExperimentResult, backend_for_runtime_model, runtime_seconds

#: The join templates shown in Figure 12 (q6 has no join and is excluded).
FIGURE12_TEMPLATES = ["q3", "q5", "q8", "q10", "q12", "q14", "q19"]

#: Systems compared in the figure, in legend order.
FIGURE12_SYSTEMS = [
    "AdaptDB w/ Hyper-Join",
    "AdaptDB w/ Shuffle Join",
    "Amoeba",
    "Predicate-based Reference Partitioning",
]


def _mean_runtime(results, runtime_model: str = "serial") -> float:
    if not results:
        return 0.0
    return float(np.mean([runtime_seconds(result, runtime_model) for result in results]))


def run(
    scale: float = 0.2,
    rows_per_block: int = 512,
    warmup_queries: int = 12,
    measured_queries: int = 5,
    templates: list[str] | None = None,
    seed: int = 1,
    runtime_model: str = "makespan",
) -> ExperimentResult:
    """Reproduce Figure 12.

    Args:
        scale: TPC-H generator scale.
        rows_per_block: Simulated block size in rows.
        warmup_queries: Queries run per template before measuring (lets the
            adaptive systems converge, as in the paper).
        measured_queries: Queries averaged for the reported runtime.
        templates: Subset of templates to run (defaults to all seven).
        seed: Seed controlling data generation and query parameters.
        runtime_model: ``"makespan"`` (the task schedule's completion time
            on the modelled cluster — the default, matching the paper's
            parallel deployment), ``"serial"`` (sum of per-task costs), or
            ``"simulated"`` (the discrete-event simulator's completion
            time, barriers and queueing included).
    """
    templates = templates or list(FIGURE12_TEMPLATES)
    root_rng = make_rng(seed)
    table_names = tables_for_templates(templates)
    tables = list(TPCHGenerator(scale=scale, seed=seed).generate(table_names).values())
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
        execution_backend=backend_for_runtime_model(runtime_model),
    )

    per_system: dict[str, list[float]] = {system: [] for system in FIGURE12_SYSTEMS}

    # PREF is a *static* layout chosen with knowledge of the whole workload:
    # one instance serves every template, and its replication factors come
    # from all join attributes appearing across the templates.
    hint_rng = derive_rng(root_rng, "pref-hint")
    pref_hint = [tpch_query(template, hint_rng) for template in templates]
    pref = PREFBaseline(tables, workload_hint=pref_hint, config=config)

    for template in templates:
        template_rng = derive_rng(root_rng, f"template:{template}")
        warmup = [tpch_query(template, template_rng) for _ in range(warmup_queries)]
        measured = [tpch_query(template, template_rng) for _ in range(measured_queries)]

        hyper = AdaptDBRunner(tables, config)
        hyper.run_workload(warmup)
        per_system["AdaptDB w/ Hyper-Join"].append(
            _mean_runtime(hyper.run_workload(measured), runtime_model)
        )

        shuffle_only = AdaptDBShuffleOnlyRunner(tables, config)
        shuffle_only.run_workload(warmup)
        per_system["AdaptDB w/ Shuffle Join"].append(
            _mean_runtime(shuffle_only.run_workload(measured), runtime_model)
        )

        amoeba = AmoebaBaseline(tables, config)
        amoeba.run_workload(warmup)
        per_system["Amoeba"].append(
            _mean_runtime(amoeba.run_workload(measured), runtime_model)
        )

        per_system["Predicate-based Reference Partitioning"].append(
            _mean_runtime(pref.run_workload(measured), runtime_model)
        )

    result = ExperimentResult(
        experiment_id="fig12",
        title="Execution time for queries on TPC-H",
        x_label="template",
        y_label="modelled runtime (seconds)",
    )
    labels = [template.upper() for template in templates]
    for system in FIGURE12_SYSTEMS:
        result.add_series(system, labels, per_system[system])

    hyper_series = result.series_by_label("AdaptDB w/ Hyper-Join")
    shuffle_series = result.series_by_label("AdaptDB w/ Shuffle Join")
    gains = [
        shuffle / hyper if hyper else float("inf")
        for hyper, shuffle in zip(hyper_series.y, shuffle_series.y)
    ]
    result.notes["mean_speedup_vs_shuffle"] = round(float(np.mean(gains)), 2)
    result.notes["max_speedup_vs_shuffle"] = round(float(np.max(gains)), 2)
    result.notes["runtime_model"] = runtime_model
    result.notes["paper_mean_speedup"] = "1.60x"
    result.notes["paper_max_speedup"] = "2.16x"
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
