"""Figure 14 — effect of the hyper-join memory buffer size.

The paper joins ``lineitem`` and ``orders`` without predicates, builds hash
tables over ``lineitem``, and varies the memory buffer (64 MB to 16 GB),
reporting (a) runtime and (b) the number of ``orders`` blocks read.  A bigger
buffer lets each hash table cover more build blocks, so each probe block is
shared by more of them and re-read less often — until the sharing saturates.

In the reproduction the buffer is expressed directly in build-side blocks
(the paper's buffer divided by the 64 MB block size), and the sweep runs
against the *real* bounded-memory storage tier: the session persists via
``persistence="mmap"``, every block is spilled at a checkpoint, and each
sweep point restarts cold with the block buffer's byte budget scaled to the
same number of blocks the hyper-join groups over.  Alongside the modelled
series the experiment therefore reports *measured* buffer traffic — faults
(blocks actually materialized from the spill files), hits and evictions —
which shrink/grow with the buffer exactly as the paper's curve does.
"""

from __future__ import annotations

import math
import shutil

from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..join.hyperjoin import hyper_join
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult

#: Buffer sizes in build-side blocks (mirrors the paper's 64 MB .. 16 GB sweep).
DEFAULT_BUFFER_SIZES = [1, 2, 4, 8, 16, 32]


def _two_phase_tree(table: ColumnTable, key: str, rows_per_block: int, join_level_fraction: float):
    num_leaves = max(1, math.ceil(table.num_rows / rows_per_block))
    partitioner = TwoPhasePartitioner(
        join_attribute=key,
        selection_attributes=[name for name in table.schema.column_names if name != key],
        rows_per_block=rows_per_block,
        join_level_fraction=join_level_fraction,
    )
    return partitioner.build(table.sample(), total_rows=table.num_rows, num_leaves=num_leaves)


def run(
    scale: float = 0.3,
    rows_per_block: int = 256,
    buffer_sizes: list[int] | None = None,
    join_level_fraction: float = 0.5,
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 14: runtime and probe-block reads vs. buffer size.

    Each sweep point evicts everything resident (a cold cache), re-budgets
    the block buffer to ``(buffer_blocks + 1)`` mean-sized blocks and runs
    the same lineitem-orders hyper-join, so the measured fault counts are
    the bounded-memory analogue of the paper's "orders blocks read" axis.
    """
    buffer_sizes = buffer_sizes or list(DEFAULT_BUFFER_SIZES)
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])
    config = AdaptDBConfig(
        rows_per_block=rows_per_block,
        enable_smooth=False,
        enable_amoeba=False,
        seed=seed,
        persistence="mmap",
    )
    db = Session(config)
    lineitem = db.load_table(
        tables["lineitem"],
        tree=_two_phase_tree(tables["lineitem"], "l_orderkey", rows_per_block, join_level_fraction),
    )
    orders = db.load_table(
        tables["orders"],
        tree=_two_phase_tree(tables["orders"], "o_orderkey", rows_per_block, join_level_fraction),
    )
    # Spill every block once so each sweep point can start cold (unloaded)
    # and fault blocks back in through the buffer as the join touches them.
    db.checkpoint()
    assert db.persist is not None
    buffer = db.persist.buffer
    mean_block_bytes = max(1, db.dfs.total_bytes() // max(1, db.dfs.num_blocks))

    runtimes: list[float] = []
    probe_blocks: list[float] = []
    faults: list[float] = []
    hits: list[float] = []
    evictions: list[float] = []
    for buffer_blocks in buffer_sizes:
        # +1: one probe block is streamed against the resident build blocks.
        buffer.set_budget((buffer_blocks + 1) * mean_block_bytes)
        buffer.drop_resident()
        buffer.reset_counters()
        stats = hyper_join(
            db.dfs,
            lineitem.non_empty_block_ids(),
            orders.non_empty_block_ids(),
            "l_orderkey",
            "o_orderkey",
            buffer_blocks=buffer_blocks,
            cost_model=db.cluster.cost_model,
        )
        runtimes.append(db.cluster.cost_model.to_seconds(stats.cost_units))
        probe_blocks.append(stats.probe_blocks_read)
        faults.append(buffer.faults)
        hits.append(buffer.hits)
        evictions.append(buffer.evictions)

    result = ExperimentResult(
        experiment_id="fig14",
        title="Effect of varying the hyper-join memory buffer",
        x_label="buffer size (# build blocks)",
        y_label="modelled runtime (seconds) / probe blocks read",
    )
    result.add_series("running_time", buffer_sizes, runtimes)
    result.add_series("orders_blocks_read", buffer_sizes, probe_blocks)
    result.add_series("buffer_faults", buffer_sizes, faults)
    result.add_series("buffer_hits", buffer_sizes, hits)
    result.add_series("buffer_evictions", buffer_sizes, evictions)
    result.notes["paper_observation"] = "improves with buffer size, flattens once sharing saturates"
    result.notes["reduction"] = (
        round(probe_blocks[0] / probe_blocks[-1], 2) if probe_blocks[-1] else float("inf")
    )
    result.notes["measured_fault_reduction"] = (
        round(faults[0] / faults[-1], 2) if faults[-1] else float("inf")
    )
    result.notes["blocks_spilled"] = db.persist.store.spills
    storage_root = db.storage_root
    db.close()
    if storage_root is not None:
        shutil.rmtree(storage_root, ignore_errors=True)
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
