"""Result containers and pretty-printing shared by every experiment driver.

Each experiment module reproduces one figure of the paper's evaluation and
returns an :class:`ExperimentResult`: a set of labelled series (one per line
or bar group in the original figure) plus free-form notes.  The benchmark
harness prints these as aligned text tables so paper-vs-measured comparisons
can be recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Runtime models a figure driver can report: the paper's idealised serial
#: sum spread perfectly over the cluster, the task schedule's makespan (what
#: a real cluster waits for, stragglers included), or the discrete-event
#: simulator's completion time (makespan plus barrier and queueing stalls).
RUNTIME_MODELS = ("serial", "makespan", "simulated")


def runtime_seconds(result, runtime_model: str = "serial") -> float:
    """Pick one :class:`~repro.exec.result.QueryResult` runtime by model name.

    Args:
        result: The query result to read.
        runtime_model: ``"serial"`` returns ``runtime_seconds`` (the paper's
            model, the default everywhere so existing figure outputs are
            unchanged); ``"makespan"`` returns ``makespan_seconds``;
            ``"simulated"`` returns ``sim_seconds`` (populated only when the
            query executed through the ``"simulated"`` backend).

    Raises:
        ValueError: on an unknown model name.
    """
    if runtime_model not in RUNTIME_MODELS:
        raise ValueError(
            f"unknown runtime model {runtime_model!r}; choose from {RUNTIME_MODELS}"
        )
    if runtime_model == "makespan":
        return result.makespan_seconds
    if runtime_model == "simulated":
        return result.sim_seconds
    return result.runtime_seconds


def backend_for_runtime_model(runtime_model: str) -> str:
    """The execution backend a figure driver needs for ``runtime_model``.

    ``"simulated"`` requires the simulated backend (it is the only one that
    populates ``sim_seconds``); the serial and makespan models both read
    fields the default task backend produces.
    """
    if runtime_model not in RUNTIME_MODELS:
        raise ValueError(
            f"unknown runtime model {runtime_model!r}; choose from {RUNTIME_MODELS}"
        )
    return "simulated" if runtime_model == "simulated" else "tasks"


def runtime_series(results, runtime_model: str = "serial") -> list[float]:
    """Per-query runtimes of ``results`` under the chosen model."""
    return [runtime_seconds(result, runtime_model) for result in results]


@dataclass
class Series:
    """One labelled data series (a line or bar group in the original figure)."""

    label: str
    x: list
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")

    @property
    def total(self) -> float:
        """Sum of the series values."""
        return float(sum(self.y))

    @property
    def maximum(self) -> float:
        """Largest value in the series."""
        return float(max(self.y)) if self.y else 0.0


@dataclass
class ExperimentResult:
    """The outcome of reproducing one figure."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: dict[str, float | str] = field(default_factory=dict)

    def add_series(self, label: str, x: list, y: list[float]) -> Series:
        """Append a new series and return it."""
        series = Series(label=label, x=list(x), y=[float(value) for value in y])
        self.series.append(series)
        return series

    def series_by_label(self, label: str) -> Series:
        """Return the series with the given label.

        Raises:
            KeyError: if no series carries that label.
        """
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.experiment_id}")

    def to_table(self, float_format: str = "{:.1f}") -> str:
        """Render the result as an aligned text table (x values as rows)."""
        if not self.series:
            return f"{self.experiment_id}: (no data)"
        header = [self.x_label] + [series.label for series in self.series]
        x_values = self.series[0].x
        rows = []
        for index, x_value in enumerate(x_values):
            row = [str(x_value)]
            for series in self.series:
                value = series.y[index] if index < len(series.y) else float("nan")
                row.append(float_format.format(value))
            rows.append(row)

        widths = [max(len(str(cell)) for cell in column) for column in zip(header, *rows)]
        lines = [
            f"{self.experiment_id}: {self.title}",
            "  " + " | ".join(cell.ljust(width) for cell, width in zip(header, widths)),
            "  " + "-+-".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append("  " + " | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if self.notes:
            lines.append("  notes: " + ", ".join(f"{key}={value}" for key, value in self.notes.items()))
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """Per-series totals, useful for quick assertions in tests and benches."""
        return {series.label: series.total for series in self.series}


def parallelism_notes(results: list) -> dict[str, float]:
    """Makespan/straggler summary of a list of :class:`QueryResult` objects.

    Figure drivers attach this to their ``notes`` so every figure records how
    the task scheduler actually spread the work, not just the serial cost sum.
    """
    with_schedule = [r for r in results if r.makespan_cost_units > 0.0]
    if not with_schedule:
        return {}
    mean_straggler = sum(r.straggler_factor for r in with_schedule) / len(with_schedule)
    mean_speedup = sum(r.parallel_speedup for r in with_schedule) / len(with_schedule)
    return {
        "mean_straggler_factor": round(mean_straggler, 3),
        "mean_parallel_speedup": round(mean_speedup, 2),
        "total_makespan_cost": round(sum(r.makespan_cost_units for r in with_schedule), 1),
    }
