"""Figure 18 — the CMT real-workload experiment.

The paper runs a 103-query production trace over the (synthetic) CMT dataset
and compares per-query latency of four systems:

* *Full Scan* — no pruning, shuffle joins,
* *Repartitioning* — one complete reorganization triggered early in the trace
  (a ~2 945 s spike at query 5),
* *"Best Guess" Fixed Partitioning* — a hand-tuned static layout built from
  the attributes of the full trace,
* *AdaptDB* — smooth repartitioning, which converges to roughly the
  hand-tuned layout within the first ~10 queries.
"""

from __future__ import annotations

from ..baselines.fixed import BestGuessFixedBaseline
from ..baselines.full_repartitioning import FullRepartitioningBaseline
from ..baselines.runners import AdaptDBRunner, FullScanBaseline
from ..core.config import AdaptDBConfig
from ..workloads.cmt import CMTGenerator
from .harness import ExperimentResult, backend_for_runtime_model, runtime_series

#: Systems compared in Figure 18, in legend order.
FIGURE18_SYSTEMS = [
    "Full Scan",
    "Repartitioning",
    '"Best Guess" Fixed Partitioning',
    "AdaptDB",
]


def run(
    scale: float = 0.2,
    rows_per_block: int = 512,
    num_queries: int = 103,
    seed: int = 1,
    runtime_model: str = "makespan",
) -> ExperimentResult:
    """Reproduce Figure 18: per-query runtime of the four systems on the CMT trace.

    ``runtime_model`` selects the reported per-query runtime (``"makespan"``
    — the task schedule's completion time, the default, matching the
    paper's parallel deployment — ``"serial"``, or ``"simulated"``, which
    routes execution through the discrete-event simulator backend).
    """
    generator = CMTGenerator(scale=scale, seed=seed)
    tables = list(generator.generate().values())
    queries = generator.query_trace(num_queries)
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
        execution_backend=backend_for_runtime_model(runtime_model),
    )

    runners = [
        FullScanBaseline(tables, config),
        FullRepartitioningBaseline(tables, config),
        BestGuessFixedBaseline(tables, queries, config),
        AdaptDBRunner(tables, config),
    ]

    result = ExperimentResult(
        experiment_id="fig18",
        title="Execution time on the CMT dataset (103-query trace)",
        x_label="query #",
        y_label="modelled runtime (seconds)",
    )
    totals: dict[str, float] = {}
    for runner in runners:
        results = runner.run_workload(queries)
        runtimes = runtime_series(results, runtime_model)
        result.add_series(runner.name, list(range(1, len(runtimes) + 1)), runtimes)
        totals[runner.name] = sum(runtimes)

    adaptdb_total = totals["AdaptDB"]
    result.notes["full_scan_total"] = round(totals["Full Scan"], 1)
    result.notes["adaptdb_total"] = round(adaptdb_total, 1)
    result.notes["fixed_total"] = round(totals['"Best Guess" Fixed Partitioning'], 1)
    result.notes["repartitioning_total"] = round(totals["Repartitioning"], 1)
    result.notes["improvement_vs_full_scan"] = (
        round(totals["Full Scan"] / adaptdb_total, 2) if adaptdb_total else float("inf")
    )
    result.notes["repartitioning_max_spike"] = round(
        result.series_by_label("Repartitioning").maximum, 1
    )
    result.notes["adaptdb_max_spike"] = round(result.series_by_label("AdaptDB").maximum, 1)
    result.notes["runtime_model"] = runtime_model
    result.notes["paper_observation"] = (
        "AdaptDB roughly halves total time vs full scan and converges to the hand-tuned layout"
    )
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
