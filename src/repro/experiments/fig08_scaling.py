"""Figure 8 — shuffle-join runtime vs. dataset size.

The paper joins ``lineitem`` and ``orders`` at four dataset sizes (175 GB to
580 GB) and observes that shuffle-join runtime grows linearly with the data
volume, validating the block-count-based cost model.  The reproduction runs
the same join at four proportional scales and reports the modelled runtime;
the linearity of the series is quantified with the coefficient of
determination of a least-squares line fit.
"""

from __future__ import annotations

import numpy as np

from ..common.query import join_query
from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult, parallelism_notes

#: Relative dataset sizes mirroring the paper's 175G / 320G / 453G / 580G points.
RELATIVE_SIZES = [0.30, 0.55, 0.78, 1.00]


def run(scale: float = 0.4, rows_per_block: int = 512, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 8: shuffle-join runtime at four dataset sizes."""
    query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey", template="fig8")
    runtimes: list[float] = []
    makespans: list[float] = []
    results = []
    labels: list[str] = []

    for relative in RELATIVE_SIZES:
        tables = TPCHGenerator(scale=scale * relative, seed=seed).generate(
            ["lineitem", "orders"]
        )
        config = AdaptDBConfig(
            rows_per_block=rows_per_block,
            enable_smooth=False,
            enable_amoeba=False,
            force_join_method="shuffle",
            seed=seed,
        )
        db = Session(config)
        for table in tables.values():
            db.load_table(table)
        result = db.run(query, adapt=False)
        results.append(result)
        runtimes.append(result.runtime_seconds)
        makespans.append(result.makespan_seconds)
        labels.append(f"{relative:.2f}x")

    sizes = np.asarray(RELATIVE_SIZES)
    times = np.asarray(runtimes)
    slope, intercept = np.polyfit(sizes, times, 1)
    predicted = slope * sizes + intercept
    residual = float(((times - predicted) ** 2).sum())
    total = float(((times - times.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total else 1.0

    experiment = ExperimentResult(
        experiment_id="fig8",
        title="Shuffle-join runtime vs dataset size (lineitem ⋈ orders)",
        x_label="relative dataset size",
        y_label="modelled runtime (seconds)",
    )
    experiment.add_series("running_time", labels, runtimes)
    experiment.add_series("makespan_time", labels, makespans)
    experiment.notes["linear_fit_r_squared"] = round(r_squared, 4)
    experiment.notes["paper_observation"] = "runtime increases linearly with dataset size"
    experiment.notes.update(parallelism_notes(results))
    return experiment


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
