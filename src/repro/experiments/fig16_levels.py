"""Figure 16 — effect of the number of join-attribute levels in the trees.

The paper sweeps the number of tree levels reserved for the join attribute in
both the ``lineitem`` and ``orders`` trees and counts the ``orders`` blocks
read while probing hyper-join hash tables built over ``lineitem``:

* Figure 16(a) uses a q10 variant without ``customer`` — both tables carry
  selective predicates, and the minimum lies around *half* of the levels on
  the join attribute (the paper's default),
* Figure 16(b) uses the same join without any predicates — there the more
  levels the join attribute gets, the fewer blocks are read.
"""

from __future__ import annotations

import math

from ..common.query import Query, join_query
from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..join.hyperjoin import plan_hyper_join
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable
from ..workloads.tpch import TPCHGenerator
from ..workloads.tpch_queries import q10_without_customer
from .harness import ExperimentResult


def _tree_with_join_levels(
    table: ColumnTable,
    key: str,
    rows_per_block: int,
    join_levels: int,
    selection_attributes: list[str] | None = None,
):
    """A two-phase tree with an explicit number of join levels.

    The selection levels use the query's predicate attributes (as AdaptDB's
    adapted trees would after observing the workload); when the query has no
    predicates on the table, every other column is eligible.
    """
    num_leaves = max(1, math.ceil(table.num_rows / rows_per_block))
    if not selection_attributes:
        selection_attributes = [name for name in table.schema.column_names if name != key]
    partitioner = TwoPhasePartitioner(
        join_attribute=key,
        selection_attributes=selection_attributes,
        rows_per_block=rows_per_block,
    )
    return partitioner.build(
        table.sample(), total_rows=table.num_rows, num_leaves=num_leaves, join_levels=join_levels
    )


def _probe_blocks_for_layout(
    tables: dict[str, ColumnTable],
    query: Query,
    lineitem_levels: int,
    orders_levels: int,
    rows_per_block: int,
    buffer_blocks: int,
    seed: int,
) -> int:
    """Orders blocks read when probing lineitem-built hash tables under one layout."""
    config = AdaptDBConfig(
        rows_per_block=rows_per_block,
        buffer_blocks=buffer_blocks,
        enable_smooth=False,
        enable_amoeba=False,
        seed=seed,
    )
    db = Session(config)
    lineitem = db.load_table(
        tables["lineitem"],
        tree=_tree_with_join_levels(
            tables["lineitem"], "l_orderkey", rows_per_block, lineitem_levels,
            [predicate.column for predicate in query.predicates_on("lineitem")],
        ),
    )
    orders = db.load_table(
        tables["orders"],
        tree=_tree_with_join_levels(
            tables["orders"], "o_orderkey", rows_per_block, orders_levels,
            [predicate.column for predicate in query.predicates_on("orders")],
        ),
    )
    build_blocks = lineitem.lookup(query.predicates_on("lineitem"))
    probe_blocks = orders.lookup(query.predicates_on("orders"))
    plan = plan_hyper_join(
        db.dfs,
        build_blocks,
        probe_blocks,
        "l_orderkey",
        "o_orderkey",
        buffer_blocks=buffer_blocks,
    )
    return plan.estimated_probe_reads


def run(
    scale: float = 0.2,
    rows_per_block: int = 256,
    buffer_blocks: int = 4,
    with_predicates: bool = True,
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 16(a) (``with_predicates=True``) or 16(b) (``False``).

    Returns a result with one series per ``orders`` join-level setting; the
    series' x axis is the number of join levels in the ``lineitem`` tree.
    """
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])
    if with_predicates:
        query = q10_without_customer()
    else:
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey", template="fig16b")

    lineitem_leaves = max(1, math.ceil(tables["lineitem"].num_rows / rows_per_block))
    orders_leaves = max(1, math.ceil(tables["orders"].num_rows / rows_per_block))
    max_lineitem_levels = max(1, math.ceil(math.log2(lineitem_leaves)))
    max_orders_levels = max(1, math.ceil(math.log2(orders_leaves)))

    experiment_id = "fig16a" if with_predicates else "fig16b"
    title = (
        "Blocks read from orders vs join levels (q10 w/o customer)"
        if with_predicates
        else "Blocks read from orders vs join levels (no predicates)"
    )
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="# join levels in lineitem tree",
        y_label="orders blocks read",
    )

    lineitem_levels_range = list(range(0, max_lineitem_levels + 1))
    best: tuple[float, int, int] | None = None
    for orders_levels in range(0, max_orders_levels + 1):
        row: list[float] = []
        for lineitem_levels in lineitem_levels_range:
            reads = _probe_blocks_for_layout(
                tables, query, lineitem_levels, orders_levels,
                rows_per_block, buffer_blocks, seed,
            )
            row.append(float(reads))
            if best is None or reads < best[0]:
                best = (float(reads), lineitem_levels, orders_levels)
        result.add_series(f"orders_levels={orders_levels}", lineitem_levels_range, row)

    assert best is not None
    result.notes["min_blocks"] = best[0]
    result.notes["min_at_lineitem_levels"] = best[1]
    result.notes["min_at_orders_levels"] = best[2]
    result.notes["max_lineitem_levels"] = max_lineitem_levels
    result.notes["max_orders_levels"] = max_orders_levels
    result.notes["paper_observation"] = (
        "minimum around half the levels with predicates; monotone decrease without"
        if with_predicates
        else "more join levels, fewer blocks read when there are no predicates"
    )
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run(with_predicates=True).to_table())
    print()
    print(run(with_predicates=False).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
