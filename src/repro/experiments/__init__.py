"""Experiment drivers: one module per figure of the paper's evaluation.

| Module | Paper figure |
|---|---|
| ``fig01_copartition`` | Fig. 1 — shuffle vs co-partitioned join |
| ``fig07_locality``    | Fig. 7 — varying data locality |
| ``fig08_scaling``     | Fig. 8 — runtime vs dataset size |
| ``fig12_tpch``        | Fig. 12 — per-template TPC-H comparison |
| ``fig13_adaptation``  | Fig. 13(a)/(b) — switching and shifting workloads |
| ``fig14_buffer``      | Fig. 14 — hyper-join memory buffer sweep |
| ``fig15_window``      | Fig. 15 — query-window size sweep |
| ``fig16_levels``      | Fig. 16(a)/(b) — join levels in the partitioning trees |
| ``fig17_ilp``         | Fig. 17 — ILP vs approximate grouping |
| ``fig18_cmt``         | Fig. 18 — CMT real-workload trace |
"""

from . import (
    fig01_copartition,
    fig07_locality,
    fig08_scaling,
    fig12_tpch,
    fig13_adaptation,
    fig14_buffer,
    fig15_window,
    fig16_levels,
    fig17_ilp,
    fig18_cmt,
)
from .harness import ExperimentResult, Series

__all__ = [
    "ExperimentResult",
    "Series",
    "fig01_copartition",
    "fig07_locality",
    "fig08_scaling",
    "fig12_tpch",
    "fig13_adaptation",
    "fig14_buffer",
    "fig15_window",
    "fig16_levels",
    "fig17_ilp",
    "fig18_cmt",
]
