"""Run every experiment driver and emit a single consolidated report.

This is the "regenerate the whole evaluation section" entry point::

    python -m repro.experiments.run_all            # quick (benchmark-scale) run
    python -m repro.experiments.run_all --full     # larger, slower run

The report prints each figure's table followed by its notes, in paper order,
and ends with a one-line verdict per figure so the output can be diffed
against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

from .harness import ExperimentResult
from . import (
    fig01_copartition,
    fig07_locality,
    fig08_scaling,
    fig12_tpch,
    fig13_adaptation,
    fig14_buffer,
    fig15_window,
    fig16_levels,
    fig17_ilp,
    fig18_cmt,
)

ExperimentRunner = Callable[[], ExperimentResult]


def quick_suite() -> dict[str, ExperimentRunner]:
    """Benchmark-scale parameters: the full suite finishes in a few minutes."""
    return {
        "fig1": lambda: fig01_copartition.run(scale=0.25, rows_per_block=512),
        "fig7": lambda: fig07_locality.run(scale=0.25),
        "fig8": lambda: fig08_scaling.run(scale=0.3),
        "fig12": lambda: fig12_tpch.run(scale=0.12, warmup_queries=10, measured_queries=3),
        "fig13a": lambda: fig13_adaptation.run_switching(scale=0.1, queries_per_template=8),
        "fig13b": lambda: fig13_adaptation.run_shifting(scale=0.1, transition_length=8),
        "fig14": lambda: fig14_buffer.run(scale=0.25, rows_per_block=256),
        "fig15": lambda: fig15_window.run(scale=0.1),
        "fig16a": lambda: fig16_levels.run(scale=0.2, rows_per_block=128, with_predicates=True),
        "fig16b": lambda: fig16_levels.run(scale=0.2, rows_per_block=128, with_predicates=False),
        "fig17": lambda: fig17_ilp.run(
            scale=0.15, lineitem_blocks=64, orders_blocks=16,
            buffer_sizes=[8, 16, 32, 64], ilp_time_limit_seconds=15,
        ),
        "fig18": lambda: fig18_cmt.run(scale=0.1, num_queries=103),
    }


def full_suite() -> dict[str, ExperimentRunner]:
    """Paper-shaped parameters (full workload lengths); takes tens of minutes."""
    return {
        "fig1": lambda: fig01_copartition.run(scale=1.0, rows_per_block=1024),
        "fig7": lambda: fig07_locality.run(scale=1.0),
        "fig8": lambda: fig08_scaling.run(scale=1.0),
        "fig12": lambda: fig12_tpch.run(scale=0.4, warmup_queries=15, measured_queries=10),
        "fig13a": lambda: fig13_adaptation.run_switching(scale=0.3, queries_per_template=20),
        "fig13b": lambda: fig13_adaptation.run_shifting(scale=0.3, transition_length=20),
        "fig14": lambda: fig14_buffer.run(scale=1.0, rows_per_block=256),
        "fig15": lambda: fig15_window.run(scale=0.3),
        "fig16a": lambda: fig16_levels.run(scale=0.5, rows_per_block=128, with_predicates=True),
        "fig16b": lambda: fig16_levels.run(scale=0.5, rows_per_block=128, with_predicates=False),
        "fig17": lambda: fig17_ilp.run(
            scale=0.3, lineitem_blocks=128, orders_blocks=32,
            buffer_sizes=[16, 32, 64, 128], ilp_time_limit_seconds=120,
        ),
        "fig18": lambda: fig18_cmt.run(scale=0.5, num_queries=103),
    }


def run_suite(suite: dict[str, ExperimentRunner]) -> dict[str, ExperimentResult]:
    """Run every experiment in ``suite`` and return results keyed by figure id."""
    results: dict[str, ExperimentResult] = {}
    for figure_id, runner in suite.items():
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        result.notes["driver_wall_seconds"] = round(elapsed, 1)
        results[figure_id] = result
    return results


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Render all results as one text report with a verdict section at the end."""
    sections = []
    for figure_id, result in results.items():
        sections.append(result.to_table())
    sections.append("Verdicts:")
    for figure_id, result in results.items():
        observation = result.notes.get("paper_observation", result.title)
        sections.append(f"  {figure_id:<7} {observation}")
    return "\n\n".join(sections[:-len(results) - 1]) + "\n\n" + "\n".join(sections[-len(results) - 1:])


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI helper
    parser = argparse.ArgumentParser(description="Regenerate every figure of the AdaptDB evaluation")
    parser.add_argument("--full", action="store_true", help="use paper-shaped workload sizes")
    parser.add_argument("--only", nargs="*", help="figure ids to run (default: all)")
    arguments = parser.parse_args(argv)

    suite = full_suite() if arguments.full else quick_suite()
    if arguments.only:
        suite = {figure_id: suite[figure_id] for figure_id in arguments.only}
    print(render_report(run_suite(suite)))


if __name__ == "__main__":  # pragma: no cover
    main()
