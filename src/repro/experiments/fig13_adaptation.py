"""Figure 13 — per-query runtime on the switching and shifting TPC-H workloads.

The paper runs 160-query (switching) and 140-query (shifting) workloads over
the eight templates and compares three systems:

* *Full Scan* — no partitioning pruning, shuffle joins,
* *Repartitioning* — complete repartitioning triggered when half of the
  query window uses a new join attribute (tall spikes, then fast queries),
* *AdaptDB* — smooth repartitioning (moderate overhead spread over many
  queries, converging to the same fast steady state).
"""

from __future__ import annotations

import numpy as np

from ..baselines.full_repartitioning import FullRepartitioningBaseline
from ..baselines.runners import AdaptDBRunner, FullScanBaseline
from ..common.query import Query
from ..common.rng import make_rng
from ..core.config import AdaptDBConfig
from ..workloads.generators import shifting_workload, switching_workload
from ..workloads.tpch import TPCHGenerator
from ..workloads.tpch_queries import EVALUATED_TEMPLATES, tables_for_templates
from .harness import ExperimentResult, backend_for_runtime_model, runtime_series

#: Systems compared in Figure 13, in legend order.
FIGURE13_SYSTEMS = ["Full Scan", "Repartitioning", "AdaptDB"]


def _run_systems(
    tables, queries: list[Query], config: AdaptDBConfig, runtime_model: str = "serial"
) -> dict[str, list[float]]:
    """Run the three comparison systems on the same query sequence."""
    runners = [
        FullScanBaseline(tables, config),
        FullRepartitioningBaseline(tables, config),
        AdaptDBRunner(tables, config),
    ]
    runtimes: dict[str, list[float]] = {}
    for runner in runners:
        results = runner.run_workload(queries)
        runtimes[runner.name] = runtime_series(results, runtime_model)
    return runtimes


def _build_result(
    experiment_id: str, title: str, runtimes: dict[str, list[float]]
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="query #",
        y_label="modelled runtime (seconds)",
    )
    num_queries = len(next(iter(runtimes.values())))
    x = list(range(1, num_queries + 1))
    for system in FIGURE13_SYSTEMS:
        result.add_series(system, x, runtimes[system])

    full_scan_total = sum(runtimes["Full Scan"])
    adaptdb_total = sum(runtimes["AdaptDB"])
    result.notes["adaptdb_total"] = round(adaptdb_total, 1)
    result.notes["full_scan_total"] = round(full_scan_total, 1)
    result.notes["improvement_vs_full_scan"] = (
        round(full_scan_total / adaptdb_total, 2) if adaptdb_total else float("inf")
    )
    result.notes["repartitioning_max_spike"] = round(max(runtimes["Repartitioning"]), 1)
    result.notes["adaptdb_max_spike"] = round(max(runtimes["AdaptDB"]), 1)
    result.notes["paper_observation"] = "AdaptDB spreads repartitioning cost; ~2x+ over full scan"
    return result


def run_switching(
    scale: float = 0.15,
    rows_per_block: int = 512,
    queries_per_template: int = 8,
    templates: list[str] | None = None,
    seed: int = 1,
    runtime_model: str = "makespan",
) -> ExperimentResult:
    """Reproduce Figure 13(a), the switching workload.

    The defaults use fewer queries per template than the paper's 20 to keep
    the simulation quick; pass ``queries_per_template=20`` and the full
    template list for the paper-sized 160-query run.  ``runtime_model``
    selects the reported per-query runtime (``"makespan"`` — the task
    schedule's completion time, the default, matching the paper's parallel
    deployment — ``"serial"``, or ``"simulated"``, which routes execution
    through the discrete-event simulator backend).
    """
    templates = templates or list(EVALUATED_TEMPLATES)
    rng = make_rng(seed)
    tables = list(
        TPCHGenerator(scale=scale, seed=seed).generate(tables_for_templates(templates)).values()
    )
    queries = switching_workload(templates, queries_per_template, rng)
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
        execution_backend=backend_for_runtime_model(runtime_model),
    )
    runtimes = _run_systems(tables, queries, config, runtime_model)
    result = _build_result(
        "fig13a", "Execution time for the switching workload on TPC-H", runtimes
    )
    result.notes["runtime_model"] = runtime_model
    return result


def run_shifting(
    scale: float = 0.15,
    rows_per_block: int = 512,
    transition_length: int = 8,
    templates: list[str] | None = None,
    seed: int = 1,
    runtime_model: str = "makespan",
) -> ExperimentResult:
    """Reproduce Figure 13(b), the shifting workload.

    Pass ``transition_length=20`` and the full template list for the
    paper-sized 140-query run.
    """
    templates = templates or list(EVALUATED_TEMPLATES)
    rng = make_rng(seed)
    tables = list(
        TPCHGenerator(scale=scale, seed=seed).generate(tables_for_templates(templates)).values()
    )
    queries = shifting_workload(templates, transition_length, rng)
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
        execution_backend=backend_for_runtime_model(runtime_model),
    )
    runtimes = _run_systems(tables, queries, config, runtime_model)
    result = _build_result(
        "fig13b", "Execution time for the shifting workload on TPC-H", runtimes
    )
    result.notes["runtime_model"] = runtime_model
    return result


def main() -> None:  # pragma: no cover - CLI helper
    for result in (run_switching(), run_shifting()):
        print(result.to_table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
