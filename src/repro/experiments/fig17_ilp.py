"""Figure 17 — approximate grouping vs. the ILP optimum.

On TPC-H at scale factor 10 the paper sets ``lineitem`` to 128 blocks and
``orders`` to 32 blocks, builds hash tables on ``lineitem``, and compares the
number of ``orders`` blocks read under the ILP-optimal grouping and the
approximate (bottom-up) grouping, for buffer sizes of 16, 32, 64 and 128
blocks, together with each optimizer's own runtime.  The approximate
algorithm reads marginally more blocks but runs in about a millisecond,
whereas the ILP takes minutes to (for small buffers) longer than the paper's
96-hour cutoff.
"""

from __future__ import annotations

import math
import time

from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..join.grouping import bottom_up_grouping
from ..join.ilp import ilp_grouping
from ..join.overlap import compute_overlap_matrix
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult

#: Buffer sizes (in blocks) swept in Figure 17.
DEFAULT_BUFFER_SIZES = [16, 32, 64, 128]


def _fixed_block_tree(table: ColumnTable, key: str, num_blocks: int):
    partitioner = TwoPhasePartitioner(
        join_attribute=key,
        selection_attributes=[name for name in table.schema.column_names if name != key],
    )
    join_levels = max(1, math.ceil(math.log2(num_blocks)) // 2) if num_blocks > 1 else 0
    return partitioner.build(
        table.sample(), total_rows=table.num_rows, num_leaves=num_blocks, join_levels=join_levels
    )


def run(
    scale: float = 0.3,
    lineitem_blocks: int = 128,
    orders_blocks: int = 32,
    buffer_sizes: list[int] | None = None,
    ilp_time_limit_seconds: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 17: probe-block reads and optimizer runtime, ILP vs approximate.

    Args:
        scale: TPC-H generator scale (the paper uses SF 10; any scale works
            because only block *ranges* matter for the grouping problem).
        lineitem_blocks / orders_blocks: Block counts (paper: 128 and 32).
        buffer_sizes: Buffer sizes to sweep (paper: 16, 32, 64, 128).
        ilp_time_limit_seconds: Cap on each ILP solve; the incumbent at the
            limit is reported (the paper capped the 16-block case at 96 h).
        seed: Generator seed.
    """
    buffer_sizes = buffer_sizes or list(DEFAULT_BUFFER_SIZES)
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])

    db = Session(AdaptDBConfig(enable_smooth=False, enable_amoeba=False, seed=seed))
    lineitem = db.load_table(
        tables["lineitem"], tree=_fixed_block_tree(tables["lineitem"], "l_orderkey", lineitem_blocks)
    )
    orders = db.load_table(
        tables["orders"], tree=_fixed_block_tree(tables["orders"], "o_orderkey", orders_blocks)
    )

    build_ranges = [
        db.dfs.peek_block(block_id).range_of("l_orderkey")
        for block_id in lineitem.non_empty_block_ids()
    ]
    probe_ranges = [
        db.dfs.peek_block(block_id).range_of("o_orderkey")
        for block_id in orders.non_empty_block_ids()
    ]
    overlap = compute_overlap_matrix(build_ranges, probe_ranges)

    ilp_blocks: list[float] = []
    approx_blocks: list[float] = []
    ilp_runtimes: list[float] = []
    approx_runtimes: list[float] = []

    for buffer_blocks in buffer_sizes:
        started = time.perf_counter()
        approx = bottom_up_grouping(overlap, buffer_blocks)
        approx_runtimes.append((time.perf_counter() - started) * 1_000.0)
        approx_blocks.append(approx.total_probe_reads)

        solution = ilp_grouping(overlap, buffer_blocks, time_limit_seconds=ilp_time_limit_seconds)
        ilp_blocks.append(solution.grouping.total_probe_reads)
        ilp_runtimes.append(solution.solve_seconds * 1_000.0)

    result = ExperimentResult(
        experiment_id="fig17",
        title="ILP vs approximate grouping (blocks read from orders, optimizer runtime)",
        x_label="buffer size (# blocks)",
        y_label="orders blocks read / optimizer runtime (ms)",
    )
    result.add_series("ILP blocks", buffer_sizes, ilp_blocks)
    result.add_series("Approximate blocks", buffer_sizes, approx_blocks)
    result.add_series("ILP runtime (ms)", buffer_sizes, ilp_runtimes)
    result.add_series("Approximate runtime (ms)", buffer_sizes, approx_runtimes)

    gaps = [
        approx / ilp if ilp else 1.0 for approx, ilp in zip(approx_blocks, ilp_blocks)
    ]
    result.notes["max_approx_to_ilp_ratio"] = round(max(gaps), 3)
    result.notes["paper_observation"] = (
        "approximate is close to the ILP optimum but runs in ~a millisecond"
    )
    result.notes["lineitem_blocks"] = len(build_ranges)
    result.notes["orders_blocks"] = len(probe_ranges)
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
