"""Figure 15 — effect of the query-window size.

A 70-query workload shifts from q14 to q19 and back (both join ``lineitem``
with ``part`` but with different selection predicates).  A small window
(size 5) makes AdaptDB converge quickly but with larger repartitioning spikes
and a tendency to overfit; a large window (size 35) spreads the cost over
more queries.
"""

from __future__ import annotations

import numpy as np

from ..baselines.runners import AdaptDBRunner
from ..common.rng import make_rng
from ..core.config import AdaptDBConfig
from ..workloads.generators import window_sensitivity_workload
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult

#: Window sizes compared in Figure 15.
WINDOW_SIZES = [5, 35]


def run(
    scale: float = 0.15,
    rows_per_block: int = 512,
    window_sizes: list[int] | None = None,
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 15: per-query runtime under two window sizes."""
    window_sizes = window_sizes or list(WINDOW_SIZES)
    tables = list(
        TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "part"]).values()
    )

    result = ExperimentResult(
        experiment_id="fig15",
        title="Execution time for varying query-window length (q14 ↔ q19)",
        x_label="query #",
        y_label="modelled runtime (seconds)",
    )

    convergence: dict[int, int] = {}
    for window_size in window_sizes:
        rng = make_rng(seed)
        queries = window_sensitivity_workload(rng)
        config = AdaptDBConfig(
            rows_per_block=rows_per_block,
            buffer_blocks=8,
            window_size=window_size,
            seed=seed,
        )
        runner = AdaptDBRunner(tables, config)
        results = runner.run_workload(queries)
        runtimes = [item.runtime_seconds for item in results]
        result.add_series(f"Window size ({window_size})", list(range(1, len(runtimes) + 1)), runtimes)
        convergence[window_size] = _last_adaptation_index(results)

    for window_size, index in convergence.items():
        result.notes[f"last_adaptation_w{window_size}"] = index
    result.notes["paper_observation"] = (
        "smaller window converges faster but with larger spikes"
    )
    return result


def _last_adaptation_index(results) -> int:
    """Index (1-based) of the last query that still repartitioned blocks."""
    last = 0
    for index, item in enumerate(results, start=1):
        if item.blocks_repartitioned > 0:
            last = index
    return last


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
