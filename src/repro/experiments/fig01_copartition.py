"""Figure 1 — shuffle join vs. co-partitioned join.

The paper motivates AdaptDB with a micro-benchmark: joining ``lineitem`` and
``orders`` is almost twice as fast when the tables are co-partitioned on the
join key than when a shuffle join is required.  The reproduction runs the
same join (no selection predicates) against two layouts of the same data:

* *Shuffle Join* — both tables carry their workload-oblivious upfront
  partitioning and the join is forced to shuffle,
* *Co-partitioned Join* — both tables are partitioned on the order key
  (two-phase trees with every level on the join attribute) and the join runs
  as a hyper-join, which in the co-partitioned case touches each probe block
  about once.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..common.query import join_query
from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult


def _co_partitioned_tree(table: ColumnTable, key: str, rows_per_block: int):
    """A tree whose every level splits on the join key (perfect co-partitioning)."""
    num_leaves = max(1, math.ceil(table.num_rows / rows_per_block))
    depth = max(1, math.ceil(math.log2(num_leaves))) if num_leaves > 1 else 0
    partitioner = TwoPhasePartitioner(join_attribute=key, selection_attributes=[])
    return partitioner.build(
        table.sample(), total_rows=table.num_rows, num_leaves=num_leaves, join_levels=depth
    )


def run(scale: float = 0.3, rows_per_block: int = 512, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 1.

    Args:
        scale: TPC-H scale factor for the synthetic generator.
        rows_per_block: Simulated block size in rows.
        seed: Generator seed.

    Returns:
        An :class:`ExperimentResult` with one value per join strategy.
    """
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])
    query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey", template="fig1")

    config = AdaptDBConfig(
        rows_per_block=rows_per_block,
        buffer_blocks=8,
        enable_smooth=False,
        enable_amoeba=False,
        seed=seed,
    )

    # Layout 1: workload-oblivious upfront partitioning, shuffle join forced.
    shuffle_db = Session(replace(config, force_join_method="shuffle"))
    for table in tables.values():
        shuffle_db.load_table(table)
    shuffle_result = shuffle_db.run(query, adapt=False)

    # Layout 2: both tables co-partitioned on the order key, hyper-join forced.
    hyper_db = Session(replace(config, force_join_method="hyper"))
    hyper_db.load_table(
        tables["lineitem"],
        tree=_co_partitioned_tree(tables["lineitem"], "l_orderkey", rows_per_block),
    )
    hyper_db.load_table(
        tables["orders"],
        tree=_co_partitioned_tree(tables["orders"], "o_orderkey", rows_per_block),
    )
    hyper_result = hyper_db.run(query, adapt=False)

    result = ExperimentResult(
        experiment_id="fig1",
        title="Shuffle vs co-partitioned join (lineitem ⋈ orders)",
        x_label="strategy",
        y_label="modelled runtime (seconds)",
    )
    result.add_series(
        "runtime",
        ["Shuffle Join", "Co-partitioned Join"],
        [shuffle_result.runtime_seconds, hyper_result.runtime_seconds],
    )
    speedup = (
        shuffle_result.runtime_seconds / hyper_result.runtime_seconds
        if hyper_result.runtime_seconds
        else float("inf")
    )
    result.notes["speedup"] = round(speedup, 2)
    result.notes["paper_speedup"] = "~2x"
    result.notes["shuffle_output_rows"] = shuffle_result.output_rows
    result.notes["hyper_output_rows"] = hyper_result.output_rows
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
