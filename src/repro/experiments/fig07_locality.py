"""Figure 7 — varying data locality.

The paper measures a map-only Hadoop job while artificially lowering the
fraction of HDFS blocks that are local to their reader and finds that even at
27 % locality the job is only ~18 % slower, justifying the cost model's
assumption that remote reads cost roughly the same as local reads (an 8 %
penalty, following [3]).

The reproduction compiles the same map-only scan into per-machine tasks with
the execution engine's scheduler, so the per-machine block counts (and hence
the job's makespan) come from actual locality-aware placement; the paper's
four locality levels are then applied to the most loaded machine's reads to
produce the response-time series.
"""

from __future__ import annotations

from ..cluster.costmodel import CostModel
from ..common.query import scan_query
from ..api.session import Session
from ..core.config import AdaptDBConfig
from ..exec.scheduler import Scheduler, compile_plan
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult

#: The locality levels reported in Figure 7.
LOCALITY_LEVELS = [1.00, 0.71, 0.46, 0.27]


def run(scale: float = 0.3, rows_per_block: int = 512, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 7: scan response time at decreasing data locality."""
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem"])
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, enable_smooth=False, enable_amoeba=False, seed=seed
    )
    db = Session(config)
    stored = db.load_table(tables["lineitem"])
    num_blocks = len(stored.non_empty_block_ids())
    cost_model: CostModel = db.cluster.cost_model

    # Compile and schedule the map-only scan; the makespan (blocks on the
    # most loaded machine) is what the job actually waits for.
    plan = db.plan(scan_query("lineitem"), adapt=False)
    compiled = compile_plan(plan, db.catalog, db.cluster, db.config)
    schedule = Scheduler(db.cluster.num_machines).schedule(compiled.tasks)

    runtimes = [
        cost_model.makespan_seconds(
            [cost_model.scan_cost(load, locality) for load in schedule.machine_loads]
        )
        for locality in LOCALITY_LEVELS
    ]

    result = ExperimentResult(
        experiment_id="fig7",
        title="Varying data locality (map-only scan)",
        x_label="locality",
        y_label="modelled response time (seconds)",
    )
    result.add_series(
        "response_time", [f"{int(level * 100)}%" for level in LOCALITY_LEVELS], runtimes
    )
    slowdown = runtimes[-1] / runtimes[0] - 1.0 if runtimes[0] else 0.0
    result.notes["slowdown_at_27pct"] = f"{slowdown * 100:.1f}%"
    result.notes["paper_slowdown_at_27pct"] = "~18%"
    result.notes["blocks_scanned"] = num_blocks
    result.notes["scan_tasks"] = len(compiled.tasks)
    result.notes["makespan_blocks"] = schedule.makespan
    result.notes["straggler_factor"] = round(schedule.straggler_factor, 3)
    result.notes["scheduler_locality"] = round(schedule.locality_fraction, 3)
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
