"""Figure 7 — varying data locality.

The paper measures a map-only Hadoop job while artificially lowering the
fraction of HDFS blocks that are local to their reader and finds that even at
27 % locality the job is only ~18 % slower, justifying the cost model's
assumption that remote reads cost roughly the same as local reads (an 8 %
penalty, following [3]).

The reproduction evaluates the same quantity directly from the cost model: a
full scan of the ``lineitem`` table at the paper's four locality levels.
"""

from __future__ import annotations

from ..cluster.costmodel import CostModel
from ..core.adaptdb import AdaptDB
from ..core.config import AdaptDBConfig
from ..workloads.tpch import TPCHGenerator
from .harness import ExperimentResult

#: The locality levels reported in Figure 7.
LOCALITY_LEVELS = [1.00, 0.71, 0.46, 0.27]


def run(scale: float = 0.3, rows_per_block: int = 512, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 7: scan response time at decreasing data locality."""
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem"])
    config = AdaptDBConfig(
        rows_per_block=rows_per_block, enable_smooth=False, enable_amoeba=False, seed=seed
    )
    db = AdaptDB(config)
    stored = db.load_table(tables["lineitem"])
    num_blocks = len(stored.non_empty_block_ids())
    cost_model: CostModel = db.cluster.cost_model

    runtimes = [
        cost_model.to_seconds(cost_model.scan_cost(num_blocks, locality))
        for locality in LOCALITY_LEVELS
    ]

    result = ExperimentResult(
        experiment_id="fig7",
        title="Varying data locality (map-only scan)",
        x_label="locality",
        y_label="modelled response time (seconds)",
    )
    result.add_series(
        "response_time", [f"{int(level * 100)}%" for level in LOCALITY_LEVELS], runtimes
    )
    slowdown = runtimes[-1] / runtimes[0] - 1.0 if runtimes[0] else 0.0
    result.notes["slowdown_at_27pct"] = f"{slowdown * 100:.1f}%"
    result.notes["paper_slowdown_at_27pct"] = "~18%"
    result.notes["blocks_scanned"] = num_blocks
    return result


def main() -> None:  # pragma: no cover - CLI helper
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
