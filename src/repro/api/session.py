"""The session: the staged query-lifecycle entry point of the library.

A :class:`Session` owns one simulated cluster, DFS and catalog and takes
every query through three explicit stages::

    session = Session(AdaptDBConfig(rows_per_block=1024))
    session.load_table(table)

    logical  = session.plan(query)      # Query   -> LogicalPlan
    physical = session.lower(logical)   # Logical -> PhysicalPlan
    result   = session.execute(physical)  # Physical -> QueryResult

    result = session.run(query)         # the three stages in one call

Execution goes through a pluggable :class:`~repro.api.backends.ExecutionBackend`
(``"tasks"`` — the parallel task engine, ``"serial"`` — the paper's idealised
model, or ``"simulated"`` — the task engine plus the ``repro.sim``
discrete-event cluster simulator), selected per session via
``AdaptDBConfig.execution_backend`` or the ``backend`` argument.

Planning is cached: every :class:`~repro.storage.table.StoredTable` mutation
bumps a per-table epoch, and the session keeps a bounded plan cache keyed on
``(query signature, per-table epochs)``.  Repeated-template workloads reuse
relevant-block sets, overlap matrices, hyper-join groupings and the compiled
task schedule with bit-identical results; any mutation invalidates exactly
the affected tables' entries.  Adaptation always runs per query (it is part
of the query's semantics and cost) — only the planning after it is reused,
which is safe because adaptation work always bumps an epoch and therefore
forces a fresh plan.

Read statistics are scoped per execution: ``execute()`` resets the DFS and
per-machine read counters before running, and ``plan()``/``lower()`` never
touch them, so interleaved plan/run calls cannot skew locality accounting.

Sessions configured with ``persistence="mmap"`` additionally own a durable
storage tier (:mod:`repro.storage.persist`): blocks spill to memory-mapped
files under ``config.storage_root``, reads route through a byte-budgeted
LRU buffer, and :meth:`Session.checkpoint` / :meth:`Session.open` provide
epoch-aware crash recovery — a reopened session resumes with its partition
trees, epochs, delta chains, samples, RNG states and adaptation window
intact, reproducing bit-identical query fingerprints.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..adaptive.repartitioner import AdaptiveRepartitioner, RepartitionReport
from ..cluster.cluster import Cluster
from ..cluster.costmodel import CostModel
from ..common.errors import PlanningError, StorageError
from ..common.query import Query
from ..common.rng import derive_rng, make_rng
from ..common.sanitize import assert_unaliased, sanitize_enabled
from ..core.config import AdaptDBConfig
from ..core.optimizer import Optimizer
from ..exec.engine import Executor
from ..exec.result import QueryResult
from ..exec.scheduler import Scheduler, compile_plan
from ..join.hyperjoin import HyperPlanCache
from ..parallel.backend import ParallelBackend
from ..partitioning.tree import PartitioningTree
from ..partitioning.upfront import UpfrontPartitioner
from ..sim.backend import SimBackend
from ..storage.catalog import Catalog
from ..storage.dfs import DistributedFileSystem
from ..storage.persist import PersistenceManager
from ..storage.table import ColumnTable, StoredTable
from .backends import ExecutionBackend, SerialBackend, TaskBackend
from .cache import CachedPlan, PlanCache, query_signature
from .plans import LogicalPlan, PhysicalPlan


@dataclass
class Session:
    """One AdaptDB instance exposed through the staged query lifecycle.

    Attributes:
        config: Instance configuration.
        backend: Execution backend: a name (``"tasks"`` / ``"serial"``), an
            :class:`ExecutionBackend` instance, or ``None`` to follow
            ``config.execution_backend``.
    """

    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    backend: str | ExecutionBackend | None = None
    #: Internal: a pre-opened manager holding a checkpoint to restore from;
    #: set only by :meth:`Session.open`.
    _restore_manager: PersistenceManager | None = field(default=None, repr=False)
    persist: PersistenceManager | None = field(init=False, default=None)
    rng: np.random.Generator = field(init=False)
    cluster: Cluster = field(init=False)
    dfs: DistributedFileSystem = field(init=False)
    catalog: Catalog = field(init=False)
    repartitioner: AdaptiveRepartitioner = field(init=False)
    optimizer: Optimizer = field(init=False)
    plan_cache: PlanCache = field(init=False)
    backends: dict[str, ExecutionBackend] = field(init=False)

    def __post_init__(self) -> None:
        # The construction (and rng-derivation) order below is load-bearing:
        # it reproduces the pre-session AdaptDB wiring bit-for-bit, so seeded
        # runs keep their decision fingerprints across the API redesign.
        self.rng = make_rng(self.config.seed)
        seconds_per_block = self.config.seconds_per_block
        if self.config.calibrated_cost_model:
            from ..parallel.calibrate import stored_seconds_per_unit

            fitted = stored_seconds_per_unit()
            if fitted is not None:
                seconds_per_block = fitted
        cost_model = CostModel(
            shuffle_factor=self.config.shuffle_cost_factor,
            seconds_per_block=seconds_per_block,
            parallelism=self.config.num_machines,
        )
        self.cluster = Cluster(
            num_machines=self.config.num_machines,
            cost_model=cost_model,
        )
        self.dfs = DistributedFileSystem(
            cluster=self.cluster,
            replication=self.config.replication,
            rng=derive_rng(self.rng, "dfs"),
        )
        self.catalog = Catalog()
        self.repartitioner = AdaptiveRepartitioner(
            window_size=self.config.window_size,
            rows_per_block=self.config.rows_per_block,
            join_level_fraction=self.config.join_level_fraction,
            min_frequency=self.config.min_frequency,
            join_levels_override=self.config.join_levels_override,
            enable_smooth=self.config.enable_smooth,
            enable_amoeba=self.config.enable_amoeba,
            rng=derive_rng(self.rng, "repartitioner"),
        )
        self.optimizer = Optimizer(
            catalog=self.catalog,
            cluster=self.cluster,
            config=self.config,
            repartitioner=self.repartitioner,
            hyper_cache=HyperPlanCache(),
        )
        self.plan_cache = PlanCache(capacity=self.config.plan_cache_size)
        self.backends = {
            backend.name: backend
            for backend in (
                TaskBackend(catalog=self.catalog, cluster=self.cluster, config=self.config),
                SerialBackend(catalog=self.catalog, cluster=self.cluster, config=self.config),
                SimBackend(catalog=self.catalog, cluster=self.cluster, config=self.config),
                # The worker pool starts lazily on the first parallel
                # execute(), so registering the backend costs nothing for
                # sessions that never select it.
                ParallelBackend(catalog=self.catalog, cluster=self.cluster, config=self.config),
            )
        }
        self.use_backend(self.backend if self.backend is not None
                         else self.config.execution_backend)
        if self.config.persistence == "mmap":
            if self._restore_manager is not None:
                # Session.open: adopt the pre-opened root and rebuild the
                # checkpointed partition state into the fresh wiring above
                # (restore() attaches the buffer/store hooks itself, last).
                self.persist = self._restore_manager
                self.persist.restore(self)
            else:
                self.persist = PersistenceManager.create(
                    self._resolve_storage_root(),
                    self.config.num_machines,
                    self.config.buffer_bytes,
                )
                self.persist.attach(self.dfs)

    def _resolve_storage_root(self) -> Path:
        """Pick the storage root of a fresh mmap session.

        An explicit ``config.storage_root`` is used verbatim (that is what
        makes it reopenable at a known location).  Otherwise a unique
        directory is created — under ``$REPRO_STORAGE_ROOT`` when set (the
        CI persistence job points this at a tmpdir shared by the whole
        suite), else under the system temp dir.  A generated root is *not*
        written back to the config: configs are shareable between sessions
        (two sessions built from one config must not collide on a root),
        and :meth:`storage_root` exposes the resolved path.
        """
        if self.config.storage_root is not None:
            return Path(self.config.storage_root)
        parent = os.environ.get("REPRO_STORAGE_ROOT") or None
        if parent is not None:
            Path(parent).mkdir(parents=True, exist_ok=True)
        return Path(tempfile.mkdtemp(prefix="repro-storage-", dir=parent))

    # ------------------------------------------------------------------ #
    # Durability: checkpoint / reopen
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        storage_root: str | Path,
        backend: str | ExecutionBackend | None = None,
    ) -> "Session":
        """Reopen a checkpointed storage root as a new session.

        The session is rebuilt from the last committed checkpoint: tables
        come back at their exact partition-state epochs with their trees,
        delta chains, samples, statistics and placement; RNG states and the
        adaptation window resume where :meth:`checkpoint` captured them.
        Blocks start *cold* — their columns fault in through the block
        buffer on first read.  Spill files a crashed writer stranded after
        the last commit are garbage-collected here, and a pending SQLite WAL
        is replayed by opening the catalog.

        Args:
            storage_root: Root directory a previous session checkpointed.
            backend: Optional execution-backend override; ``None`` follows
                the checkpointed config.
        """
        manager = PersistenceManager.open(Path(storage_root))
        try:
            payload = manager.stored_config_payload()
            payload["storage_root"] = str(Path(storage_root))
            config = AdaptDBConfig(**payload)
            return cls(config=config, backend=backend, _restore_manager=manager)
        except BaseException:
            manager.close()
            raise

    def checkpoint(self) -> dict[str, int]:
        """Commit the session's full partition state to the storage root.

        Dirty blocks are spilled first; then one catalog transaction
        records all metadata.  A crash before the commit leaves the previous
        checkpoint intact (the stranded spill files are collected on the
        next :meth:`open`).  Returns ``{"blocks_spilled": ...,
        "versions_removed": ...}``.

        Raises:
            StorageError: on a session without ``persistence="mmap"``.
        """
        if self.persist is None:
            raise StorageError(
                "checkpoint() requires a session with persistence='mmap'"
            )
        return self.persist.checkpoint(self)

    @property
    def storage_root(self) -> Path | None:
        """The durable tier's root directory (``None`` on memory sessions).

        This is the path :meth:`open` reopens — either the explicit
        ``config.storage_root`` or the unique directory a fresh mmap
        session generated.
        """
        return self.persist.root if self.persist is not None else None

    # ------------------------------------------------------------------ #
    # Backend selection
    # ------------------------------------------------------------------ #
    def use_backend(self, backend: str | ExecutionBackend) -> ExecutionBackend:
        """Select the execution backend (by name or instance) and return it."""
        if isinstance(backend, str):
            try:
                backend = self.backends[backend]
            except KeyError:
                raise PlanningError(
                    f"unknown execution backend {backend!r}; "
                    f"choose from {sorted(self.backends)}"
                ) from None
        else:
            self.backends[backend.name] = backend
        self.backend = backend
        return backend

    def _active_backend(self) -> ExecutionBackend:
        """The selected backend, guaranteed resolved to an instance."""
        backend = self.backend
        if not isinstance(backend, ExecutionBackend):
            raise PlanningError("no execution backend selected")
        return backend

    @property
    def executor(self) -> Executor:
        """The task engine's executor (compat with the pre-session API)."""
        executor = getattr(self.backends["tasks"], "executor", None)
        if not isinstance(executor, Executor):
            raise PlanningError("the 'tasks' backend exposes no executor")
        return executor

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load_table(
        self,
        table: ColumnTable,
        partition_attributes: list[str] | None = None,
        tree: "PartitioningTree | None" = None,
    ) -> StoredTable:
        """Partition ``table`` and register it with the session.

        By default the Amoeba upfront partitioner builds the initial tree
        (no workload knowledge); callers that *do* know the workload (the
        PREF and hand-tuned baselines, or a user who "requests" a join tree,
        Section 5.1) may pass a pre-built ``tree`` instead.

        Args:
            table: The raw in-memory table.
            partition_attributes: Attributes the upfront partitioner may use;
                defaults to every column.  Ignored when ``tree`` is given.
            tree: Optional pre-built partitioning tree with unbound leaves.

        Returns:
            The registered :class:`StoredTable`.
        """
        if table.name in self.catalog:
            raise StorageError(f"table {table.name!r} already loaded")
        if tree is None:
            attributes = partition_attributes or table.schema.column_names
            partitioner = UpfrontPartitioner(
                attributes=attributes, rows_per_block=self.config.rows_per_block
            )
            sample = table.sample(
                self.config.sample_size, derive_rng(self.rng, f"sample:{table.name}")
            )
            tree = partitioner.build(sample, total_rows=table.num_rows)
        stored = StoredTable.load(
            table,
            self.dfs,
            tree,
            rows_per_block=self.config.rows_per_block,
            sample_size=self.config.sample_size,
            rng=derive_rng(self.rng, f"stored-sample:{table.name}"),
        )
        stored.delta_chain_limit = self.config.delta_chain_limit
        self.catalog.register(stored)
        return stored

    # ------------------------------------------------------------------ #
    # Stage 1: Query -> LogicalPlan
    # ------------------------------------------------------------------ #
    def table_epochs(self, query: Query) -> tuple[tuple[str, int], ...]:
        """Current ``(table, epoch)`` pairs for every table the query reads."""
        return tuple(
            (name, self.catalog.get(name).epoch)
            for name in sorted(set(query.tables))
            if name in self.catalog
        )

    def plan(self, query: Query, adapt: bool = True) -> LogicalPlan:
        """Adapt the layout (optionally) and produce an immutable logical plan.

        Adaptation always runs live — it mutates the partition state and its
        cost belongs to this query (the executor charges it as repartition
        work).  The *planning* after it is served from the epoch-keyed cache
        when this query's signature was planned before at exactly the
        current partition state; ``planning_seconds`` covers only this
        planning (and later lowering), not adaptation.
        """
        adaptation = RepartitionReport()
        if adapt and self.repartitioner is not None:
            adaptation = self.repartitioner.on_query(self.catalog, query)

        started = time.perf_counter()
        signature = query_signature(query)
        epochs = self.table_epochs(query)
        key = (signature, epochs)

        entry = self.plan_cache.get(key) if self.plan_cache.capacity else None
        from_cache = entry is not None
        if entry is None and self.plan_cache.capacity and self.config.incremental_planning:
            entry = self._revalidate(query, signature, epochs)
            if entry is not None:
                # The surviving entry (logical decisions *and* any compiled
                # schedule) is rebound under the new epoch key.
                self.plan_cache.put(key, entry)
                self.plan_cache.revalidations += 1
                from_cache = True
        if entry is None:
            base = self.optimizer.plan_query(query, adapt=False)
            # The entry keeps its own container copies so a caller mutating a
            # served plan's lists cannot poison the cache (the JoinDecision
            # objects themselves are shared and documented read-only).
            entry = CachedPlan(
                scan_tables=list(base.scan_tables),
                scan_blocks={table: list(ids) for table, ids in base.scan_blocks.items()},
                join_decisions=list(base.join_decisions),
                relevant_blocks={
                    name: list(self.optimizer.relevant_blocks(name, query))
                    for name, _ in epochs
                },
            )
            self.plan_cache.put(key, entry)
        logical = LogicalPlan(
            query=query,
            scan_tables=list(entry.scan_tables),
            scan_blocks={table: list(ids) for table, ids in entry.scan_blocks.items()},
            join_decisions=list(entry.join_decisions),
            adaptation=adaptation,
            signature=signature,
            table_epochs=epochs,
            from_cache=from_cache,
            cache_entry=entry,
        )
        if sanitize_enabled():
            # The served plan's containers must be copies: a caller mutating
            # them (plans are documented mutable-by-caller) must never reach
            # the cached entry.
            assert_unaliased(
                logical.scan_tables, entry.scan_tables, "LogicalPlan.scan_tables"
            )
            assert_unaliased(
                logical.scan_blocks, entry.scan_blocks, "LogicalPlan.scan_blocks"
            )
            assert_unaliased(
                logical.join_decisions,
                entry.join_decisions,
                "LogicalPlan.join_decisions",
            )
        logical.planning_seconds = time.perf_counter() - started
        return logical

    def _revalidate(
        self,
        query: Query,
        signature: tuple[object, ...],
        epochs: tuple[tuple[str, int], ...],
    ) -> CachedPlan | None:
        """Rescue the newest same-signature entry across an epoch gap.

        The cached plan (and its compiled schedule) replays bit-identically
        iff nothing it reads changed.  Per table, that holds when the delta
        chain covers the gap with a non-full descriptor, the tree set
        survived (join classification is structural), no referenced block
        was touched or dropped (block contents, ranges and row counts feed
        the overlap matrices, shuffle sizing and DFS placement), and no
        *touched* block entered the lookup (a re-split elsewhere in a tree
        can pull new blocks *into* a pruned set without touching the old
        ones).  Untouched blocks provably keep their membership — their row
        counts and leaf path bounds are unchanged within a preserved tree
        set — so only the delta's touched blocks need the O(depth)
        ``lookup_contains`` probe, never a full O(blocks) lookup.  Any doubt
        returns ``None``: the caller replans cold, which is always correct.
        """
        old_key = self.plan_cache.latest_key(signature)
        if old_key is None:
            return None
        old = self.plan_cache.peek(old_key)
        if old is None:
            return None
        old_epochs = dict(old_key[1])  # type: ignore[arg-type]
        for name, new_epoch in epochs:
            old_epoch = old_epochs.get(name)
            if old_epoch is None:
                return None
            delta = self.catalog.get(name).delta_between(old_epoch, new_epoch)
            if delta is None or delta.full or not delta.preserves_tree_set():
                return None
            referenced = old.relevant_blocks.get(name)
            if referenced is None:
                return None
            if not delta.touched_blocks.isdisjoint(referenced):
                return None
            table = self.catalog.get(name)
            predicates = query.predicates_on(name)
            if any(
                table.lookup_contains(block_id, predicates)
                for block_id in delta.blocks_changed
            ):
                return None
        return old

    # ------------------------------------------------------------------ #
    # Stage 2: LogicalPlan -> PhysicalPlan
    # ------------------------------------------------------------------ #
    def lower(self, logical: LogicalPlan) -> PhysicalPlan:
        """Compile and schedule a logical plan.

        The compiled skeleton (tasks + schedule) is cached alongside the
        logical entry, but only for queries without adaptation work:
        repartition tasks belong to the query whose adaptation produced them
        and are compiled fresh whenever a report is non-empty.  Backends that
        execute the logical plan directly (``consumes_schedule = False``,
        e.g. the serial model) skip compilation and scheduling entirely.
        """
        started = time.perf_counter()
        if not getattr(self.backend, "consumes_schedule", True):
            physical = PhysicalPlan.logical_only(logical, self.cluster.num_machines)
            logical.planning_seconds += time.perf_counter() - started
            return physical
        entry = logical.cache_entry
        clean = logical.adaptation.blocks_repartitioned == 0
        if (entry is not None and entry.compiled is not None
                and entry.schedule is not None and clean):
            physical = PhysicalPlan(
                logical=logical,
                compiled=entry.compiled,
                schedule=entry.schedule,
                from_cache=True,
            )
        else:
            compiled = compile_plan(logical, self.catalog, self.cluster, self.config)
            schedule = Scheduler(self.cluster.num_machines).schedule(compiled.tasks)
            physical = PhysicalPlan(logical=logical, compiled=compiled, schedule=schedule)
            if entry is not None and clean:
                entry.compiled = compiled
                entry.schedule = schedule
        logical.planning_seconds += time.perf_counter() - started
        return physical

    # ------------------------------------------------------------------ #
    # Stage 3: PhysicalPlan -> QueryResult
    # ------------------------------------------------------------------ #
    def execute(self, physical: PhysicalPlan) -> QueryResult:
        """Run a physical plan through the selected backend.

        Read statistics (DFS locality counters) are reset at the start of
        every execution, so they always describe exactly one query.
        """
        self.dfs.reset_read_stats()
        result = self._active_backend().execute(physical)
        result.planning_seconds = physical.logical.planning_seconds
        result.plan_cache_hit = physical.logical.from_cache
        stats = self.dfs.read_stats
        result.buffer_hits = stats.buffer_hits
        result.buffer_faults = stats.buffer_faults
        result.buffer_evictions = stats.buffer_evictions
        return result

    # ------------------------------------------------------------------ #
    # Convenience: the full lifecycle
    # ------------------------------------------------------------------ #
    def run(self, query: Query, adapt: bool = True) -> QueryResult:
        """Plan, lower and execute ``query`` in one call."""
        return self.execute(self.lower(self.plan(query, adapt=adapt)))

    def run_workload(self, queries: list[Query], adapt: bool = True) -> list[QueryResult]:
        """Run a sequence of queries, adapting after each one."""
        return [self.run(query, adapt=adapt) for query in queries]

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release cross-process resources (worker pool, pinned segments)
        and the persistence tier's catalog connection, if any.

        Closing is idempotent and a closed session remains usable through
        the in-process backends (the parallel backend restarts its pool
        lazily if selected again); only checkpoint/reopen requires the
        catalog connection.
        """
        for backend in self.backends.values():
            closer = getattr(backend, "close", None)
            if callable(closer):
                closer()
        if self.persist is not None:
            self.persist.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def table(self, name: str) -> StoredTable:
        """Return a registered table by name."""
        return self.catalog.get(name)

    def describe(self) -> str:
        """Multi-line summary of every table's partitioning state."""
        return "\n".join(table.describe() for table in self.catalog.tables())

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the plan cache and the hyper-plan cache."""
        hyper = self.optimizer.hyper_cache
        stats = {
            "plan_lookups": self.plan_cache.lookups,
            "plan_hits": self.plan_cache.hits,
            "plan_misses": self.plan_cache.misses,
            "plan_hit_rate": round(self.plan_cache.hit_rate, 4),
            "plan_revalidations": self.plan_cache.revalidations,
            "plan_entries": len(self.plan_cache),
        }
        if hyper is not None:
            lookups = hyper.hits + hyper.misses
            stats.update(
                hyper_hits=hyper.hits,
                hyper_misses=hyper.misses,
                hyper_upgrades=hyper.upgrades,
                hyper_hit_rate=round(hyper.hits / lookups, 4) if lookups else 0.0,
            )
        return stats
