"""The staged query-lifecycle API.

This package is the library's public planning/execution surface::

    Session  -- owns cluster, DFS, catalog; entry point for load/plan/run
    LogicalPlan / PhysicalPlan -- the two explicit plan stages, both with
        stable ``explain()`` text
    ExecutionBackend -- protocol; SerialBackend, TaskBackend and SimBackend
        (re-exported from ``repro.sim``) implement it
    PlanCache / query_signature -- the epoch-keyed plan cache

Everything else (``repro.core.AdaptDB``) is a compatibility shim over a
:class:`Session`.  Construct optimizers/executors only through this package.
"""

from ..sim.backend import SimBackend
from .backends import ExecutionBackend, SerialBackend, TaskBackend
from .cache import CachedPlan, PlanCache, query_signature
from .plans import LogicalPlan, PhysicalPlan
from .session import Session

__all__ = [
    "CachedPlan",
    "ExecutionBackend",
    "LogicalPlan",
    "PhysicalPlan",
    "PlanCache",
    "SerialBackend",
    "Session",
    "SimBackend",
    "TaskBackend",
    "query_signature",
]
