"""Plan objects of the staged query lifecycle.

A :class:`~repro.api.session.Session` takes a :class:`~repro.common.query.Query`
through two explicit stages:

* :class:`LogicalPlan` — the optimizer's output: relevant block sets per
  scanned table and one cost-based :class:`~repro.core.optimizer.JoinDecision`
  per join clause, stamped with the query's structural signature and the
  partition-state epochs it was planned against;
* :class:`PhysicalPlan` — the logical plan lowered onto the cluster: the
  compiled task list and its deterministic locality-aware schedule.

Both stages expose ``explain()`` returning stable text: two plans for the
same query at the same partition state render identically whether they were
planned cold or served from the plan cache (query ids and wall-clock values
are deliberately excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.optimizer import QueryPlan
from ..core.planner import JoinMethod
from ..exec.scheduler import CompiledPlan
from ..exec.tasks import TaskKind, TaskSchedule
from .cache import CachedPlan


def _fmt(value: float) -> str:
    """Stable, compact float formatting for explain output."""
    return f"{value:.6g}"


@dataclass
class LogicalPlan(QueryPlan):
    """An immutable planned query: join decisions plus relevant-block sets.

    Extends the executable :class:`~repro.core.optimizer.QueryPlan` (so the
    compiler and both execution backends consume it directly) with the
    provenance the session's plan cache needs.

    Attributes:
        signature: Structural signature of the query
            (:func:`repro.api.cache.query_signature`).
        table_epochs: ``(table, epoch)`` pairs, snapshotted after adaptation.
        from_cache: Whether the decisions were served from the plan cache.
        planning_seconds: Wall-clock spent producing this plan (and, once
            lowered, its physical plan).
    """

    signature: tuple[object, ...] = ()
    table_epochs: tuple[tuple[str, int], ...] = ()
    from_cache: bool = False
    planning_seconds: float = 0.0
    cache_entry: CachedPlan | None = field(default=None, repr=False, compare=False)

    def explain(self) -> str:
        """Stable multi-line description of the planning decisions.

        Identical for cold and cached plans of the same query at the same
        partition state: query ids, wall-clock times and cache provenance
        are excluded.
        """
        query = self.query
        lines = ["LogicalPlan: tables=" + ",".join(query.tables)
                 + (f" template={query.template}" if query.template else "")]
        lines.append(
            "  state: " + " ".join(f"{name}@{epoch}" for name, epoch in self.table_epochs)
        )
        for table in query.tables:
            predicates = query.predicates_on(table)
            if predicates:
                lines.append(
                    f"  predicates {table}: " + "; ".join(str(p) for p in predicates)
                )
        for table in self.scan_tables:
            lines.append(f"  scan {table}: {len(self.scan_blocks.get(table, []))} blocks")
        for decision in self.join_decisions:
            clause = decision.clause
            lines.append(
                f"  join {clause}: method={decision.method.value} "
                f"case={decision.classification.case.value}"
            )
            lines.append(
                f"    build={decision.build_table} ({len(decision.build_blocks)} blocks) "
                f"probe={decision.probe_table} ({len(decision.probe_blocks)} blocks)"
            )
            lines.append(
                f"    cost: shuffle={_fmt(decision.estimated_shuffle_cost)} "
                f"hyper={_fmt(decision.estimated_hyper_cost)}"
            )
            if decision.method is JoinMethod.HYPER and decision.hyper_plan is not None:
                hyper = decision.hyper_plan
                lines.append(
                    f"    hyper: groups={hyper.grouping.num_groups} "
                    f"probe_reads={hyper.estimated_probe_reads} "
                    f"C_HyJ={_fmt(hyper.probe_multiplicity)}"
                )
        adaptation = self.adaptation
        lines.append(
            f"  adaptation: blocks={adaptation.blocks_repartitioned} "
            f"rows={adaptation.rows_repartitioned} "
            f"trees_created={adaptation.trees_created} "
            f"amoeba_transforms={adaptation.amoeba_transforms}"
        )
        return "\n".join(lines)


@dataclass
class PhysicalPlan:
    """A logical plan lowered to a scheduled task list.

    Attributes:
        logical: The plan this was lowered from.
        compiled: The compiled task list (plus per-join hyper schedules).
        schedule: Deterministic placement of the tasks onto machines.
        from_cache: Whether the compiled skeleton was served from the cache.
        schedule_elided: True when lowering was skipped because the selected
            backend executes the logical plan directly (the serial model has
            no task schedule); ``compiled``/``schedule`` are empty stand-ins.
    """

    logical: LogicalPlan
    compiled: CompiledPlan
    schedule: TaskSchedule
    from_cache: bool = False
    schedule_elided: bool = False

    @classmethod
    def logical_only(cls, logical: LogicalPlan, num_machines: int) -> "PhysicalPlan":
        """A physical plan without a task schedule, for schedule-free backends."""
        return cls(
            logical=logical,
            compiled=CompiledPlan(tasks=[], hyper_plans=[]),
            schedule=TaskSchedule(num_machines=num_machines, assignments={}),
            schedule_elided=True,
        )

    def explain(self) -> str:
        """Stable description of the compiled schedule (cold == cached)."""
        if self.schedule_elided:
            return ("PhysicalPlan: lowering elided "
                    "(backend executes the logical plan directly)")
        counts = {kind: 0 for kind in TaskKind}
        for task in self.compiled.tasks:
            counts[task.kind] += 1
        schedule = self.schedule
        lines = [
            f"PhysicalPlan: {len(self.compiled.tasks)} tasks "
            f"on {schedule.num_machines} machines",
            "  tasks: " + " ".join(
                f"{kind.value}={count}" for kind, count in counts.items() if count
            ),
            f"  serial_cost={_fmt(schedule.total_cost)} "
            f"makespan={_fmt(schedule.makespan)} "
            f"straggler={_fmt(schedule.straggler_factor)} "
            f"locality={_fmt(schedule.locality_fraction)}",
        ]
        return "\n".join(lines)

    def explain_full(self) -> str:
        """The logical and physical explains concatenated."""
        return self.logical.explain() + "\n" + self.explain()
