"""Pluggable execution backends for the staged query lifecycle.

A backend consumes a :class:`~repro.api.plans.PhysicalPlan` and produces a
:class:`~repro.exec.result.QueryResult`.  Two implementations ship:

* :class:`TaskBackend` — the task-based parallel engine (``repro.exec``):
  replays the physical plan's compiled schedule, accounting both the serial
  cost sum and the per-machine makespan;
* :class:`SerialBackend` — the paper's idealised model: one serial pass over
  scans and joins, charging equations (1) and (2) directly.  No task
  schedule, so makespan fields stay zero and ``runtime_seconds`` is the
  serial sum spread perfectly over the cluster.

Both backends produce identical answers (``output_rows``,
``scan_output_rows``) and identical serial cost (``cost_units`` /
``runtime_seconds``) for the same physical plan — they differ only in the
parallel-execution accounting the task engine adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..cluster.cluster import Cluster
from ..common.query import Query
from ..core.config import AdaptDBConfig
from ..core.optimizer import JoinDecision
from ..core.planner import JoinMethod
from ..exec.engine import Executor
from ..exec.result import QueryResult
from ..join.hyperjoin import execute_hyper_join, plan_hyper_join
from ..join.kernels import batch_matching_count
from ..join.shuffle import JoinStats, shuffle_join
from ..storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .plans import PhysicalPlan


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a physical plan into a query result."""

    name: str
    #: Whether the backend replays the lowered task schedule; the session
    #: elides lowering for backends that set this False.
    consumes_schedule: bool

    def execute(self, physical: "PhysicalPlan") -> QueryResult:
        """Run ``physical`` and return the accounted result."""
        ...  # pragma: no cover - protocol definition


@dataclass
class TaskBackend:
    """The task-based parallel engine behind the backend protocol."""

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig
    name: str = "tasks"
    #: This backend replays the lowered task schedule (the session skips
    #: lowering for backends that set this False).
    consumes_schedule = True
    executor: Executor = field(init=False)

    def __post_init__(self) -> None:
        self.executor = Executor(
            catalog=self.catalog, cluster=self.cluster, config=self.config
        )

    def execute(self, physical: "PhysicalPlan") -> QueryResult:
        """Replay the physical plan's compiled schedule through the engine."""
        if physical.schedule_elided:
            # The plan was lowered for a schedule-free backend (e.g. the
            # session's backend was switched afterwards): compile fresh.
            return self.executor.execute(physical.logical)
        return self.executor.execute_schedule(
            physical.logical, physical.compiled, physical.schedule
        )


@dataclass
class SerialBackend:
    """The paper's idealised serial-sum execution model.

    Executes the *logical* decisions directly (the task schedule is ignored):
    every scan and join runs as one serial loop of batched block reads, and
    costs follow equations (1) and (2) exactly.  Useful as the reference
    model the task engine is validated against, and for runs where makespan
    accounting is irrelevant.
    """

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig
    name: str = "serial"
    #: Executes the logical plan directly — the session elides lowering.
    consumes_schedule = False

    def execute(self, physical: "PhysicalPlan") -> QueryResult:
        plan = physical.logical
        cost_model = self.cluster.cost_model
        result = QueryResult(query=plan.query)

        # Adaptation work charged to the query (Type 2 blocks).
        result.blocks_repartitioned = plan.adaptation.blocks_repartitioned
        result.trees_created = plan.adaptation.trees_created
        result.cost_units += cost_model.repartition_cost(plan.adaptation.blocks_repartitioned)

        for table_name in plan.scan_tables:
            block_ids = plan.scan_blocks.get(table_name, [])
            dfs = self.catalog.get(table_name).dfs
            blocks = dfs.get_blocks(block_ids)
            predicates = plan.query.predicates_on(table_name)
            result.scan_output_rows += batch_matching_count(blocks, predicates)
            result.blocks_read += len(block_ids)
            result.cost_units += cost_model.scan_cost(len(block_ids))

        for decision in plan.join_decisions:
            stats = self._run_join(plan.query, decision)
            result.join_stats.append(stats)
            result.join_methods.append(stats.method)
            result.blocks_read += stats.total_blocks_read
            result.shuffled_blocks += stats.shuffled_blocks
            result.cost_units += stats.cost_units

        if result.join_stats:
            result.output_rows = result.join_stats[-1].output_rows
        else:
            result.output_rows = result.scan_output_rows
        result.runtime_seconds = cost_model.to_seconds(result.cost_units)
        return result

    def _run_join(self, query: Query, decision: JoinDecision) -> JoinStats:
        dfs = self.catalog.get(decision.build_table).dfs
        build_column = decision.clause.column_for(decision.build_table)
        probe_column = decision.clause.column_for(decision.probe_table)
        build_predicates = query.predicates_on(decision.build_table)
        probe_predicates = query.predicates_on(decision.probe_table)
        if decision.method is JoinMethod.SHUFFLE:
            return shuffle_join(
                dfs,
                decision.build_blocks,
                decision.probe_blocks,
                build_column,
                probe_column,
                build_predicates,
                probe_predicates,
                self.cluster.cost_model,
                num_partitions=self.cluster.num_machines,
            )
        hyper_plan = decision.hyper_plan
        if hyper_plan is None:  # defensive: decisions normally carry their plan
            hyper_plan = plan_hyper_join(
                dfs,
                decision.build_blocks,
                decision.probe_blocks,
                build_column,
                probe_column,
                self.config.buffer_blocks,
                self.config.grouping_algorithm,
            )
        return execute_hyper_join(
            dfs,
            hyper_plan,
            build_column,
            probe_column,
            build_predicates,
            probe_predicates,
            self.cluster.cost_model,
        )
