"""The session plan cache: epoch-keyed, bounded, exact-match.

A cache key is ``(query signature, per-table epochs)``:

* the *signature* (:func:`query_signature`) is a structural digest of the
  query — tables, join clauses and the full predicate set including values —
  deliberately excluding the ``query_id`` and ``template`` label, so two
  queries that read the same data the same way share an entry regardless of
  how they were generated;
* the *epochs* are ``(table, epoch)`` pairs snapshotted **after** adaptation
  ran for the query.  Epochs increase monotonically on every partition-state
  mutation (see :class:`repro.storage.table.StoredTable`), so a key can only
  hit an entry created at exactly the same partition state — a post-mutation
  query can never be served a stale plan, and mutations of unrelated tables
  leave entries untouched.

Entries hold the reusable planning products: the logical decisions (relevant
block sets, join decisions with their hyper schedules) and, once a query ran
without adaptation work, the compiled + scheduled physical skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..common.lru import BoundedLRU
from ..common.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..core.optimizer import JoinDecision
    from ..exec.scheduler import CompiledPlan
    from ..exec.tasks import TaskSchedule


def _freeze(value: object) -> object:
    """Make a predicate value hashable (IN predicates carry tuples already)."""
    if isinstance(value, (list, set)):
        return tuple(value)
    return value


def query_signature(query: Query) -> tuple[object, ...]:
    """Structural digest of a query, stable across query ids and labels.

    Predicates are sorted so that two queries carrying the same predicate
    multiset in different orders share a signature — block pruning and row
    filtering both intersect predicate results, so ordering never changes
    the plan or the answer.
    """
    joins = tuple(
        (clause.left_table, clause.left_column, clause.right_table, clause.right_column)
        for clause in query.joins
    )
    # list[Any] so sorted() accepts the heterogeneous-but-comparable tuples;
    # the runtime ordering (and therefore the key content) is unchanged.
    entries: list[Any] = [
        (table, predicate.column, predicate.op.value,
         _freeze(predicate.value), predicate.high)
        for table, table_predicates in query.predicates.items()
        for predicate in table_predicates
    ]
    predicates = tuple(sorted(entries))
    return (tuple(query.tables), joins, predicates)


@dataclass
class CachedPlan:
    """The reusable planning products of one ``(signature, epochs)`` key.

    ``compiled``/``schedule`` stay ``None`` until the plan was lowered for a
    query without adaptation work — repartition tasks belong to the query
    that triggered them and must never be replayed from a cache.

    ``relevant_blocks`` records, per table, the relevant-block set the plan
    was computed from — the evidence the revalidation pass compares against
    the current partition state (see ``Session._revalidate``).
    """

    scan_tables: list[str]
    scan_blocks: dict[str, list[int]]
    join_decisions: "list[JoinDecision]"
    compiled: "CompiledPlan | None" = None
    schedule: "TaskSchedule | None" = None
    relevant_blocks: dict[str, list[int]] = field(default_factory=dict)


@dataclass
class PlanCache(BoundedLRU[tuple[object, ...], CachedPlan]):
    """A bounded LRU from ``(signature, epochs)`` keys to :class:`CachedPlan`.

    Besides exact-match lookups, the cache keeps a per-signature index of
    the newest key so the session can find the entry a changed epoch
    orphaned and *revalidate* it against the tables' change descriptors
    instead of replanning (``revalidations`` counts the rescues).
    """

    revalidations: int = 0
    _latest: dict[object, tuple[object, ...]] = field(default_factory=dict, repr=False)

    def put(self, key: tuple[object, ...], value: CachedPlan) -> None:
        super().put(key, value)
        if self.capacity > 0:
            self._latest[key[0]] = key

    def latest_key(self, signature: object) -> tuple[object, ...] | None:
        """The newest cache key recorded for ``signature`` (may be evicted)."""
        key = self._latest.get(signature)
        if key is not None and self.peek(key) is None:
            del self._latest[signature]  # the entry aged out of the LRU
            return None
        return key
