"""Synthetic TPC-H data generator.

The paper evaluates on TPC-H at scale factor 1000 (1 TB).  The reproduction
generates the same *schema shape* at laptop scale: key relationships
(lineitem→orders, lineitem→part, lineitem→supplier, orders→customer), value
distributions that the eight evaluated query templates filter on, and the
≈4:1 lineitem:orders fan-out that drives join behaviour.  String-valued
TPC-H columns (ship modes, market segments, brands, ...) are stored as small
integer category codes; the partitioning and join machinery only needs an
ordered domain.

``scale=1.0`` produces 60 000 lineitem rows; the paper's SF-1000 corresponds
to a scale of 10^5, far beyond what the simulator needs to reproduce the
figures' *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import WorkloadError
from ..common.rng import derive_rng, make_rng
from ..common.schema import DataType, Schema
from ..storage.table import ColumnTable

#: Rows per table at ``scale=1.0``.
BASE_ROWS = {
    "lineitem": 60_000,
    "orders": 15_000,
    "customer": 1_500,
    "part": 2_000,
    "supplier": 100,
}

#: Number of days in the simulated order-date domain (1992-01-01 .. 1998-12-31).
DATE_DOMAIN_DAYS = 2_556

#: Category cardinalities for the coded string columns.
NUM_SHIP_MODES = 7
NUM_SHIP_INSTRUCTS = 4
NUM_MARKET_SEGMENTS = 5
NUM_NATIONS = 25
NUM_BRANDS = 25
NUM_PART_TYPES = 150
NUM_CONTAINERS = 40
NUM_ORDER_PRIORITIES = 5

ORDERS_SCHEMA = Schema.of(
    ("o_orderkey", DataType.INT),
    ("o_custkey", DataType.INT),
    ("o_orderdate", DataType.DATE),
    ("o_orderpriority", DataType.CATEGORY),
    ("o_shippriority", DataType.INT),
    ("o_totalprice", DataType.FLOAT),
)

LINEITEM_SCHEMA = Schema.of(
    ("l_orderkey", DataType.INT),
    ("l_partkey", DataType.INT),
    ("l_suppkey", DataType.INT),
    ("l_shipdate", DataType.DATE),
    ("l_commitdate", DataType.DATE),
    ("l_receiptdate", DataType.DATE),
    ("l_quantity", DataType.INT),
    ("l_extendedprice", DataType.FLOAT),
    ("l_discount", DataType.FLOAT),
    ("l_returnflag", DataType.CATEGORY),
    ("l_shipinstruct", DataType.CATEGORY),
    ("l_shipmode", DataType.CATEGORY),
)

CUSTOMER_SCHEMA = Schema.of(
    ("c_custkey", DataType.INT),
    ("c_mktsegment", DataType.CATEGORY),
    ("c_nationkey", DataType.CATEGORY),
    ("c_acctbal", DataType.FLOAT),
)

PART_SCHEMA = Schema.of(
    ("p_partkey", DataType.INT),
    ("p_brand", DataType.CATEGORY),
    ("p_type", DataType.CATEGORY),
    ("p_size", DataType.INT),
    ("p_container", DataType.CATEGORY),
    ("p_retailprice", DataType.FLOAT),
)

SUPPLIER_SCHEMA = Schema.of(
    ("s_suppkey", DataType.INT),
    ("s_nationkey", DataType.CATEGORY),
    ("s_acctbal", DataType.FLOAT),
)

TPCH_SCHEMAS = {
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
}


@dataclass
class TPCHGenerator:
    """Generates the TPC-H tables needed by the evaluated query templates.

    Attributes:
        scale: Size multiplier (``1.0`` = 60 000 lineitem rows).
        seed: Seed for deterministic generation.
    """

    scale: float = 1.0
    seed: int = 20170101
    rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError("TPC-H scale must be positive")
        self.rng = make_rng(self.seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def rows_for(self, table: str) -> int:
        """Number of rows generated for ``table`` at the configured scale."""
        try:
            return max(1, int(round(BASE_ROWS[table] * self.scale)))
        except KeyError:
            raise WorkloadError(f"unknown TPC-H table {table!r}") from None

    def generate(self, tables: list[str] | None = None) -> dict[str, ColumnTable]:
        """Generate the requested tables (all five by default)."""
        requested = tables or list(BASE_ROWS)
        unknown = set(requested) - set(BASE_ROWS)
        if unknown:
            raise WorkloadError(f"unknown TPC-H tables: {sorted(unknown)}")

        result: dict[str, ColumnTable] = {}
        # Orders must exist before lineitem so the foreign keys line up.
        if "orders" in requested or "lineitem" in requested:
            orders = self._generate_orders()
            if "orders" in requested:
                result["orders"] = orders
            if "lineitem" in requested:
                result["lineitem"] = self._generate_lineitem(orders)
        if "customer" in requested:
            result["customer"] = self._generate_customer()
        if "part" in requested:
            result["part"] = self._generate_part()
        if "supplier" in requested:
            result["supplier"] = self._generate_supplier()
        return {name: result[name] for name in requested if name in result}

    # ------------------------------------------------------------------ #
    # Per-table generators
    # ------------------------------------------------------------------ #
    def _generate_orders(self) -> ColumnTable:
        rng = derive_rng(self.rng, "orders")
        rows = self.rows_for("orders")
        customers = self.rows_for("customer")
        columns = {
            "o_orderkey": np.arange(1, rows + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, customers + 1, size=rows),
            "o_orderdate": rng.integers(0, DATE_DOMAIN_DAYS, size=rows),
            "o_orderpriority": rng.integers(0, NUM_ORDER_PRIORITIES, size=rows),
            "o_shippriority": np.zeros(rows, dtype=np.int64),
            "o_totalprice": np.round(rng.uniform(1_000.0, 500_000.0, size=rows), 2),
        }
        return ColumnTable("orders", ORDERS_SCHEMA, columns)

    def _generate_lineitem(self, orders: ColumnTable) -> ColumnTable:
        rng = derive_rng(self.rng, "lineitem")
        rows = self.rows_for("lineitem")
        parts = self.rows_for("part")
        suppliers = self.rows_for("supplier")

        order_keys = orders.columns["o_orderkey"]
        order_dates = orders.columns["o_orderdate"]
        # Each order has 1-7 lineitems (mean 4), matching TPC-H's fan-out.
        picked = rng.integers(0, len(order_keys), size=rows)
        l_orderkey = order_keys[picked]
        base_date = order_dates[picked]

        ship_lag = rng.integers(1, 122, size=rows)
        commit_lag = rng.integers(15, 91, size=rows)
        receipt_lag = rng.integers(1, 31, size=rows)
        columns = {
            "l_orderkey": l_orderkey.astype(np.int64),
            "l_partkey": rng.integers(1, parts + 1, size=rows),
            "l_suppkey": rng.integers(1, suppliers + 1, size=rows),
            "l_shipdate": base_date + ship_lag,
            "l_commitdate": base_date + commit_lag,
            "l_receiptdate": base_date + ship_lag + receipt_lag,
            "l_quantity": rng.integers(1, 51, size=rows),
            "l_extendedprice": np.round(rng.uniform(900.0, 105_000.0, size=rows), 2),
            "l_discount": np.round(rng.uniform(0.0, 0.10, size=rows), 2),
            "l_returnflag": rng.integers(0, 3, size=rows),
            "l_shipinstruct": rng.integers(0, NUM_SHIP_INSTRUCTS, size=rows),
            "l_shipmode": rng.integers(0, NUM_SHIP_MODES, size=rows),
        }
        return ColumnTable("lineitem", LINEITEM_SCHEMA, columns)

    def _generate_customer(self) -> ColumnTable:
        rng = derive_rng(self.rng, "customer")
        rows = self.rows_for("customer")
        columns = {
            "c_custkey": np.arange(1, rows + 1, dtype=np.int64),
            "c_mktsegment": rng.integers(0, NUM_MARKET_SEGMENTS, size=rows),
            "c_nationkey": rng.integers(0, NUM_NATIONS, size=rows),
            "c_acctbal": np.round(rng.uniform(-999.99, 9_999.99, size=rows), 2),
        }
        return ColumnTable("customer", CUSTOMER_SCHEMA, columns)

    def _generate_part(self) -> ColumnTable:
        rng = derive_rng(self.rng, "part")
        rows = self.rows_for("part")
        columns = {
            "p_partkey": np.arange(1, rows + 1, dtype=np.int64),
            "p_brand": rng.integers(0, NUM_BRANDS, size=rows),
            "p_type": rng.integers(0, NUM_PART_TYPES, size=rows),
            "p_size": rng.integers(1, 51, size=rows),
            "p_container": rng.integers(0, NUM_CONTAINERS, size=rows),
            "p_retailprice": np.round(rng.uniform(900.0, 2_000.0, size=rows), 2),
        }
        return ColumnTable("part", PART_SCHEMA, columns)

    def _generate_supplier(self) -> ColumnTable:
        rng = derive_rng(self.rng, "supplier")
        rows = self.rows_for("supplier")
        columns = {
            "s_suppkey": np.arange(1, rows + 1, dtype=np.int64),
            "s_nationkey": rng.integers(0, NUM_NATIONS, size=rows),
            "s_acctbal": np.round(rng.uniform(-999.99, 9_999.99, size=rows), 2),
        }
        return ColumnTable("supplier", SUPPLIER_SCHEMA, columns)
