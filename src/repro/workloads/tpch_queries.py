"""The eight TPC-H query templates evaluated in the paper (Section 7.1).

The paper uses q3, q5, q6, q8, q10, q12, q14 and q19: the templates that
touch ``lineitem`` and have selective filters.  Each template function
produces a :class:`repro.common.Query` with randomized parameter values, the
same join structure as the original SQL, and selection predicates on the
generated (integer-coded) columns.

Join clauses are listed in the paper's join order, so the *first* clause
involving a table defines the join attribute the adaptive repartitioner
tracks for it (e.g. ``lineitem`` adapts towards ``l_orderkey`` for q3/q5/q8/
q10/q12 and towards ``l_partkey`` for q14/q19).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import WorkloadError
from ..common.predicates import between, eq, ge, gt, isin, le, lt
from ..common.query import JoinClause, Query
from ..common.rng import make_rng
from .tpch import (
    DATE_DOMAIN_DAYS,
    NUM_BRANDS,
    NUM_MARKET_SEGMENTS,
    NUM_PART_TYPES,
    NUM_SHIP_MODES,
)

#: Templates used in the evaluation, in the order of Figure 13(a).
EVALUATED_TEMPLATES = ["q3", "q5", "q6", "q8", "q10", "q12", "q14", "q19"]

#: Templates that contain at least one join (q6 is scan-only).
JOIN_TEMPLATES = ["q3", "q5", "q8", "q10", "q12", "q14", "q19"]

_L_ORDERS = JoinClause("lineitem", "orders", "l_orderkey", "o_orderkey")
_O_CUSTOMER = JoinClause("orders", "customer", "o_custkey", "c_custkey")
_L_PART = JoinClause("lineitem", "part", "l_partkey", "p_partkey")
_L_SUPPLIER = JoinClause("lineitem", "supplier", "l_suppkey", "s_suppkey")


def _rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else make_rng()


def q3(rng: np.random.Generator | None = None) -> Query:
    """Shipping-priority query: customer ⋈ orders ⋈ lineitem, selective dates."""
    rng = _rng(rng)
    segment = int(rng.integers(0, NUM_MARKET_SEGMENTS))
    cutoff = int(rng.integers(800, 1_400))
    return Query(
        tables=["lineitem", "orders", "customer"],
        predicates={
            "customer": [eq("c_mktsegment", segment)],
            "orders": [lt("o_orderdate", cutoff)],
            "lineitem": [gt("l_shipdate", cutoff)],
        },
        joins=[_L_ORDERS, _O_CUSTOMER],
        template="q3",
    )


def q5(rng: np.random.Generator | None = None) -> Query:
    """Local-supplier volume: no predicate on lineitem, one-year order window."""
    rng = _rng(rng)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 365))
    return Query(
        tables=["lineitem", "orders", "customer", "supplier"],
        predicates={
            "orders": [between("o_orderdate", start, start + 365)],
        },
        joins=[_L_ORDERS, _O_CUSTOMER, _L_SUPPLIER],
        template="q5",
    )


def q6(rng: np.random.Generator | None = None) -> Query:
    """Forecasting-revenue-change: scan of lineitem with three selective filters."""
    rng = _rng(rng)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 365))
    discount = round(float(rng.uniform(0.02, 0.09)), 2)
    return Query(
        tables=["lineitem"],
        predicates={
            "lineitem": [
                between("l_shipdate", start, start + 365),
                between("l_discount", discount - 0.01, discount + 0.01),
                lt("l_quantity", 24),
            ],
        },
        joins=[],
        template="q6",
    )


def q8(rng: np.random.Generator | None = None) -> Query:
    """National market share: lineitem ⋈ part ⋈ orders ⋈ customer."""
    rng = _rng(rng)
    part_type = int(rng.integers(0, NUM_PART_TYPES))
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 730))
    return Query(
        tables=["lineitem", "part", "orders", "customer"],
        predicates={
            "part": [eq("p_type", part_type)],
            "orders": [between("o_orderdate", start, start + 730)],
        },
        joins=[_L_PART, _L_ORDERS, _O_CUSTOMER],
        template="q8",
    )


def q10(rng: np.random.Generator | None = None) -> Query:
    """Returned-item reporting: three-month order window, returned lineitems."""
    rng = _rng(rng)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 92))
    return Query(
        tables=["lineitem", "orders", "customer"],
        predicates={
            "orders": [between("o_orderdate", start, start + 92)],
            "lineitem": [eq("l_returnflag", 1)],
        },
        joins=[_L_ORDERS, _O_CUSTOMER],
        template="q10",
    )


def q10_without_customer(rng: np.random.Generator | None = None) -> Query:
    """The Figure 16(a) variant of q10: customer is dropped, both remaining tables filtered."""
    rng = _rng(rng)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 92))
    return Query(
        tables=["lineitem", "orders"],
        predicates={
            "orders": [between("o_orderdate", start, start + 92)],
            "lineitem": [eq("l_returnflag", 1)],
        },
        joins=[_L_ORDERS],
        template="q10_no_customer",
    )


def q12(rng: np.random.Generator | None = None) -> Query:
    """Shipping-modes query: lineitem ⋈ orders with selective lineitem filters."""
    rng = _rng(rng)
    modes = rng.choice(NUM_SHIP_MODES, size=2, replace=False)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 365))
    return Query(
        tables=["lineitem", "orders"],
        predicates={
            "lineitem": [
                isin("l_shipmode", (int(modes[0]), int(modes[1]))),
                between("l_receiptdate", start, start + 365),
            ],
        },
        joins=[_L_ORDERS],
        template="q12",
    )


def q14(rng: np.random.Generator | None = None) -> Query:
    """Promotion effect: lineitem ⋈ part over a one-month shipdate window."""
    rng = _rng(rng)
    start = int(rng.integers(0, DATE_DOMAIN_DAYS - 31))
    return Query(
        tables=["lineitem", "part"],
        predicates={
            "lineitem": [between("l_shipdate", start, start + 31)],
        },
        joins=[_L_PART],
        template="q14",
    )


def q19(rng: np.random.Generator | None = None) -> Query:
    """Discounted-revenue query: lineitem ⋈ part with many selective filters."""
    rng = _rng(rng)
    brand = int(rng.integers(0, NUM_BRANDS))
    quantity_low = int(rng.integers(1, 11))
    return Query(
        tables=["lineitem", "part"],
        predicates={
            "lineitem": [
                eq("l_shipinstruct", 0),
                between("l_quantity", quantity_low, quantity_low + 10),
                isin("l_shipmode", (0, 1)),
            ],
            "part": [
                eq("p_brand", brand),
                between("p_size", 1, 15),
            ],
        },
        joins=[_L_PART],
        template="q19",
    )


TEMPLATE_FUNCTIONS = {
    "q3": q3,
    "q5": q5,
    "q6": q6,
    "q8": q8,
    "q10": q10,
    "q10_no_customer": q10_without_customer,
    "q12": q12,
    "q14": q14,
    "q19": q19,
}


def tpch_query(template: str, rng: np.random.Generator | None = None) -> Query:
    """Instantiate a TPC-H query template with randomized parameters.

    Args:
        template: One of ``q3, q5, q6, q8, q10, q10_no_customer, q12, q14, q19``.
        rng: Random generator for parameter selection (defaults to the
            library seed).

    Raises:
        WorkloadError: for an unknown template name.
    """
    try:
        factory = TEMPLATE_FUNCTIONS[template]
    except KeyError:
        raise WorkloadError(
            f"unknown TPC-H template {template!r}; choose from {sorted(TEMPLATE_FUNCTIONS)}"
        ) from None
    return factory(rng)


def tables_for_templates(templates: list[str]) -> list[str]:
    """The set of TPC-H tables needed to run the given templates."""
    needed: set[str] = set()
    rng = make_rng(0)
    for template in templates:
        needed.update(tpch_query(template, rng).tables)
    order = ["lineitem", "orders", "customer", "part", "supplier"]
    return [table for table in order if table in needed]
