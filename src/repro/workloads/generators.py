"""Workload pattern generators used in the adaptive-repartitioning experiments.

Section 7.3 evaluates two changing-workload patterns over the eight TPC-H
templates:

* the *switching* workload runs 20 queries per template and switches
  template abruptly (160 queries in total), and
* the *shifting* workload transitions gradually between consecutive
  templates, increasing the probability of the next template by 1/20 per
  query (140 queries in total).

Section 7.4's window-size experiment uses a 70-query workload that shifts
q14 → q19 → q14.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import WorkloadError
from ..common.query import Query
from ..common.rng import make_rng
from .tpch_queries import EVALUATED_TEMPLATES, tpch_query


def repeated_template_workload(
    template: str,
    num_queries: int,
    rng: np.random.Generator | None = None,
) -> list[Query]:
    """``num_queries`` instances of one template with randomized parameters."""
    rng = rng if rng is not None else make_rng()
    return [tpch_query(template, rng) for _ in range(num_queries)]


def switching_workload(
    templates: list[str] | None = None,
    queries_per_template: int = 20,
    rng: np.random.Generator | None = None,
) -> list[Query]:
    """The paper's switching workload: run each template back-to-back.

    Defaults reproduce the 160-query workload of Figure 13(a).
    """
    rng = rng if rng is not None else make_rng()
    templates = templates or list(EVALUATED_TEMPLATES)
    if queries_per_template < 1:
        raise WorkloadError("queries_per_template must be at least 1")
    queries: list[Query] = []
    for template in templates:
        queries.extend(tpch_query(template, rng) for _ in range(queries_per_template))
    return queries


def shifting_workload(
    templates: list[str] | None = None,
    transition_length: int = 20,
    rng: np.random.Generator | None = None,
) -> list[Query]:
    """The paper's shifting workload: gradual transition between templates.

    During a transition of length ``L`` from template ``a`` to template
    ``b``, the probability of drawing ``b`` increases by ``1/L`` after each
    query.  Defaults reproduce the 140-query workload of Figure 13(b).
    """
    rng = rng if rng is not None else make_rng()
    templates = templates or list(EVALUATED_TEMPLATES)
    if len(templates) < 2:
        raise WorkloadError("a shifting workload needs at least two templates")
    if transition_length < 1:
        raise WorkloadError("transition_length must be at least 1")

    queries: list[Query] = []
    for current, upcoming in zip(templates, templates[1:]):
        for step in range(transition_length):
            probability_next = (step + 1) / transition_length
            template = upcoming if rng.uniform() < probability_next else current
            queries.append(tpch_query(template, rng))
    return queries


def window_sensitivity_workload(rng: np.random.Generator | None = None) -> list[Query]:
    """The 70-query q14 ↔ q19 workload of the window-size experiment (Figure 15).

    10 × q14, 20-query shift to q19, 10 × q19, 20-query shift back, 10 × q14.
    """
    rng = rng if rng is not None else make_rng()
    queries: list[Query] = []
    queries.extend(tpch_query("q14", rng) for _ in range(10))
    for step in range(20):
        template = "q19" if rng.uniform() < (step + 1) / 20 else "q14"
        queries.append(tpch_query(template, rng))
    queries.extend(tpch_query("q19", rng) for _ in range(10))
    for step in range(20):
        template = "q14" if rng.uniform() < (step + 1) / 20 else "q19"
        queries.append(tpch_query(template, rng))
    queries.extend(tpch_query("q14", rng) for _ in range(10))
    return queries


def template_boundaries(templates: list[str], queries_per_template: int) -> list[int]:
    """Query indices at which the switching workload changes template."""
    return [index * queries_per_template for index in range(1, len(templates))]
