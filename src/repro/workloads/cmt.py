"""Synthetic CMT (Cambridge Mobile Telematics) dataset and query trace (Section 7.6).

The paper's real workload is proprietary: a 205 GB telematics dataset (a
large trips fact table plus dimension tables with processed results) and a
103-query production trace of exploratory analysis.  The paper itself ran on
a *synthetic version of the data generated from the company's statistics*;
this module does the same from the qualitative description in the paper:

* ``trips`` — one row per recorded trip (user, time range, sensor summaries),
* ``trip_history`` — every historical processing result for each trip,
* ``trip_latest`` — the most recent processing result for each trip,
* a 103-query trace in which most queries look up trips (by user and time
  range) joined with their processing history, a smaller number touch the
  latest results, and a batch of queries around positions 30-50 fetches a
  large fraction of the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import WorkloadError
from ..common.predicates import between, eq, ge
from ..common.query import JoinClause, Query
from ..common.rng import derive_rng, make_rng
from ..common.schema import DataType, Schema
from ..storage.table import ColumnTable

#: Rows per table at ``scale=1.0``.
CMT_BASE_ROWS = {
    "trips": 40_000,
    "trip_history": 120_000,
    "trip_latest": 40_000,
}

#: Seconds in the simulated collection period (about 90 days).
TIME_DOMAIN = 90 * 24 * 3600

NUM_USERS = 2_000
NUM_PHONE_MODELS = 30
NUM_PROCESS_VERSIONS = 5

TRIPS_SCHEMA = Schema.of(
    ("trip_id", DataType.INT),
    ("user_id", DataType.INT),
    ("start_time", DataType.INT),
    ("end_time", DataType.INT),
    ("distance_km", DataType.FLOAT),
    ("avg_velocity", DataType.FLOAT),
    ("max_velocity", DataType.FLOAT),
    ("max_accel", DataType.FLOAT),
    ("max_brake", DataType.FLOAT),
    ("battery_drain", DataType.FLOAT),
    ("phone_model", DataType.CATEGORY),
    ("night_fraction", DataType.FLOAT),
    ("highway_fraction", DataType.FLOAT),
    ("phone_motion_events", DataType.INT),
    ("hard_brake_events", DataType.INT),
    ("speeding_events", DataType.INT),
)

TRIP_HISTORY_SCHEMA = Schema.of(
    ("trip_id", DataType.INT),
    ("processed_at", DataType.INT),
    ("version", DataType.CATEGORY),
    ("score", DataType.FLOAT),
    ("distraction_score", DataType.FLOAT),
    ("speeding_score", DataType.FLOAT),
    ("braking_score", DataType.FLOAT),
)

TRIP_LATEST_SCHEMA = Schema.of(
    ("trip_id", DataType.INT),
    ("processed_at", DataType.INT),
    ("score", DataType.FLOAT),
    ("distraction_score", DataType.FLOAT),
    ("speeding_score", DataType.FLOAT),
)

CMT_SCHEMAS = {
    "trips": TRIPS_SCHEMA,
    "trip_history": TRIP_HISTORY_SCHEMA,
    "trip_latest": TRIP_LATEST_SCHEMA,
}

_TRIPS_HISTORY = JoinClause("trips", "trip_history", "trip_id", "trip_id")
_TRIPS_LATEST = JoinClause("trips", "trip_latest", "trip_id", "trip_id")


@dataclass
class CMTGenerator:
    """Generates the synthetic CMT tables and the 103-query exploratory trace.

    Attributes:
        scale: Size multiplier (``1.0`` = 40 000 trips).
        seed: Seed for deterministic generation.
    """

    scale: float = 1.0
    seed: int = 20150419
    rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError("CMT scale must be positive")
        self.rng = make_rng(self.seed)

    def rows_for(self, table: str) -> int:
        """Rows generated for ``table`` at the configured scale."""
        try:
            return max(1, int(round(CMT_BASE_ROWS[table] * self.scale)))
        except KeyError:
            raise WorkloadError(f"unknown CMT table {table!r}") from None

    # ------------------------------------------------------------------ #
    # Data
    # ------------------------------------------------------------------ #
    def generate(self) -> dict[str, ColumnTable]:
        """Generate the three CMT tables."""
        trips = self._generate_trips()
        history = self._generate_history(trips)
        latest = self._generate_latest(trips)
        return {"trips": trips, "trip_history": history, "trip_latest": latest}

    def _generate_trips(self) -> ColumnTable:
        rng = derive_rng(self.rng, "trips")
        rows = self.rows_for("trips")
        start = rng.integers(0, TIME_DOMAIN, size=rows)
        duration = rng.integers(300, 7_200, size=rows)
        distance = np.round(rng.gamma(2.0, 8.0, size=rows), 2)
        avg_velocity = np.round(rng.uniform(15.0, 90.0, size=rows), 1)
        columns = {
            "trip_id": np.arange(1, rows + 1, dtype=np.int64),
            "user_id": rng.integers(1, NUM_USERS + 1, size=rows),
            "start_time": start,
            "end_time": start + duration,
            "distance_km": distance,
            "avg_velocity": avg_velocity,
            "max_velocity": np.round(avg_velocity * rng.uniform(1.1, 1.8, size=rows), 1),
            "max_accel": np.round(rng.uniform(0.5, 5.0, size=rows), 2),
            "max_brake": np.round(rng.uniform(0.5, 6.0, size=rows), 2),
            "battery_drain": np.round(rng.uniform(0.0, 25.0, size=rows), 1),
            "phone_model": rng.integers(0, NUM_PHONE_MODELS, size=rows),
            "night_fraction": np.round(rng.beta(1.0, 4.0, size=rows), 3),
            "highway_fraction": np.round(rng.beta(2.0, 2.0, size=rows), 3),
            "phone_motion_events": rng.poisson(1.5, size=rows),
            "hard_brake_events": rng.poisson(0.8, size=rows),
            "speeding_events": rng.poisson(1.2, size=rows),
        }
        return ColumnTable("trips", TRIPS_SCHEMA, columns)

    def _generate_history(self, trips: ColumnTable) -> ColumnTable:
        rng = derive_rng(self.rng, "history")
        rows = self.rows_for("trip_history")
        trip_ids = trips.columns["trip_id"]
        picked = rng.integers(0, len(trip_ids), size=rows)
        columns = {
            "trip_id": trip_ids[picked].astype(np.int64),
            "processed_at": trips.columns["end_time"][picked] + rng.integers(60, 86_400, size=rows),
            "version": rng.integers(0, NUM_PROCESS_VERSIONS, size=rows),
            "score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
            "distraction_score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
            "speeding_score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
            "braking_score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
        }
        return ColumnTable("trip_history", TRIP_HISTORY_SCHEMA, columns)

    def _generate_latest(self, trips: ColumnTable) -> ColumnTable:
        rng = derive_rng(self.rng, "latest")
        rows = self.rows_for("trip_latest")
        trip_ids = trips.columns["trip_id"][:rows]
        columns = {
            "trip_id": trip_ids.astype(np.int64),
            "processed_at": trips.columns["end_time"][:rows] + rng.integers(60, 86_400, size=rows),
            "score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
            "distraction_score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
            "speeding_score": np.round(rng.uniform(0.0, 100.0, size=rows), 1),
        }
        return ColumnTable("trip_latest", TRIP_LATEST_SCHEMA, columns)

    # ------------------------------------------------------------------ #
    # Query trace
    # ------------------------------------------------------------------ #
    def query_trace(self, num_queries: int = 103) -> list[Query]:
        """The synthetic exploratory-analysis trace (103 queries by default).

        Query mix, following the paper's description:

        * ~60 % — look up one user's trips in a time range, joined with the
          trip's processing history,
        * ~15 % — metadata-only scans of ``trips``,
        * ~15 % — trips joined with the latest processed result,
        * queries 30-50 — a batch fetching a large fraction of the data
          (wide time range, no user filter).
        """
        rng = derive_rng(self.rng, "trace")
        queries: list[Query] = []
        for index in range(num_queries):
            if 30 <= index < 50:
                queries.append(self._large_fraction_query(rng))
                continue
            roll = rng.uniform()
            if roll < 0.60:
                queries.append(self._user_history_query(rng))
            elif roll < 0.75:
                queries.append(self._trip_scan_query(rng))
            else:
                queries.append(self._latest_result_query(rng))
        return queries

    def _user_history_query(self, rng: np.random.Generator) -> Query:
        user = int(rng.integers(1, NUM_USERS + 1))
        start = int(rng.integers(0, TIME_DOMAIN - 7 * 86_400))
        return Query(
            tables=["trips", "trip_history"],
            predicates={
                "trips": [eq("user_id", user), between("start_time", start, start + 7 * 86_400)],
            },
            joins=[_TRIPS_HISTORY],
            template="cmt_user_history",
        )

    def _trip_scan_query(self, rng: np.random.Generator) -> Query:
        start = int(rng.integers(0, TIME_DOMAIN - 86_400))
        return Query(
            tables=["trips"],
            predicates={
                "trips": [
                    between("start_time", start, start + 86_400),
                    ge("speeding_events", 2),
                ],
            },
            joins=[],
            template="cmt_trip_scan",
        )

    def _latest_result_query(self, rng: np.random.Generator) -> Query:
        user = int(rng.integers(1, NUM_USERS + 1))
        return Query(
            tables=["trips", "trip_latest"],
            predicates={
                "trips": [eq("user_id", user)],
                "trip_latest": [ge("score", 50.0)],
            },
            joins=[_TRIPS_LATEST],
            template="cmt_latest",
        )

    def _large_fraction_query(self, rng: np.random.Generator) -> Query:
        start = int(rng.integers(0, TIME_DOMAIN // 3))
        return Query(
            tables=["trips", "trip_history"],
            predicates={
                "trips": [between("start_time", start, start + TIME_DOMAIN // 2)],
            },
            joins=[_TRIPS_HISTORY],
            template="cmt_batch",
        )
