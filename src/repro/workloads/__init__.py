"""Workloads: TPC-H and CMT data generators, query templates, workload patterns."""

from .cmt import CMT_BASE_ROWS, CMT_SCHEMAS, CMTGenerator
from .generators import (
    repeated_template_workload,
    shifting_workload,
    switching_workload,
    template_boundaries,
    window_sensitivity_workload,
)
from .tpch import BASE_ROWS, TPCH_SCHEMAS, TPCHGenerator
from .tpch_queries import (
    EVALUATED_TEMPLATES,
    JOIN_TEMPLATES,
    TEMPLATE_FUNCTIONS,
    tables_for_templates,
    tpch_query,
)

__all__ = [
    "BASE_ROWS",
    "CMT_BASE_ROWS",
    "CMT_SCHEMAS",
    "CMTGenerator",
    "EVALUATED_TEMPLATES",
    "JOIN_TEMPLATES",
    "TEMPLATE_FUNCTIONS",
    "TPCHGenerator",
    "TPCH_SCHEMAS",
    "repeated_template_workload",
    "shifting_workload",
    "switching_workload",
    "tables_for_templates",
    "template_boundaries",
    "tpch_query",
    "window_sensitivity_workload",
]
