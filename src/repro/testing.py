"""Helpers shared by the test and benchmark suites.

These used to live in the suites' ``conftest.py`` files and were imported as
``from conftest import ...``, which only works while pytest inserts the
collected directory into ``sys.path``.  Under ``--import-mode=importlib``
(required so ``tests/`` and ``benchmarks/`` can be collected together without
their conftest modules shadowing each other) conftest modules are not
importable, so anything tests need by name lives here, inside the installed
package.
"""

from __future__ import annotations

import numpy as np

from .common.predicates import rows_matching
from .storage.table import ColumnTable


def reference_join_count(
    left: ColumnTable,
    right: ColumnTable,
    left_column: str,
    right_column: str,
    left_predicates=None,
    right_predicates=None,
) -> int:
    """Ground-truth equi-join cardinality computed directly on the raw tables."""
    left_mask = rows_matching(left.columns, list(left_predicates or []))
    right_mask = rows_matching(right.columns, list(right_predicates or []))
    left_keys = left.columns[left_column][left_mask]
    right_keys = right.columns[right_column][right_mask]
    if len(left_keys) == 0 or len(right_keys) == 0:
        return 0
    left_unique, left_counts = np.unique(left_keys, return_counts=True)
    right_unique, right_counts = np.unique(right_keys, return_counts=True)
    common, left_idx, right_idx = np.intersect1d(
        left_unique, right_unique, assume_unique=True, return_indices=True
    )
    return int((left_counts[left_idx] * right_counts[right_idx]).sum())


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing.

    The experiment drivers are deterministic simulations, so a single round
    is enough; this keeps the full benchmark suite fast while still recording
    wall-clock timings for every figure.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
