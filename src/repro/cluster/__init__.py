"""Cluster simulation: machines, memory budgets, and the analytical cost model."""

from .cluster import DEFAULT_MACHINE_MEMORY_BYTES, DEFAULT_NUM_MACHINES, Cluster
from .costmodel import CostModel
from .machine import Machine

__all__ = [
    "Cluster",
    "CostModel",
    "DEFAULT_MACHINE_MEMORY_BYTES",
    "DEFAULT_NUM_MACHINES",
    "Machine",
]
