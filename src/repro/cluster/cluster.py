"""The simulated cluster: a fixed set of machines plus a cost model.

The cluster is the substrate the distributed file system and the executor run
on.  It answers two questions the paper's evaluation depends on:

* where does a block live (for the locality model of Figure 7), and
* how many blocks fit into one worker's hash-table memory (the hyper-join
  buffer size swept in Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from .costmodel import CostModel
from .machine import Machine

DEFAULT_NUM_MACHINES = 10
DEFAULT_MACHINE_MEMORY_BYTES = 4 * 1024 * 1024 * 1024  # the paper's 4 GB split size


@dataclass
class Cluster:
    """A collection of simulated worker machines.

    Attributes:
        num_machines: Number of worker nodes (the paper uses 10).
        machine_memory_bytes: Hash-table memory budget per machine.
        cost_model: Cost model used to convert block accesses into cost units.
    """

    num_machines: int = DEFAULT_NUM_MACHINES
    machine_memory_bytes: int = DEFAULT_MACHINE_MEMORY_BYTES
    cost_model: CostModel = field(default_factory=CostModel)
    machines: list[Machine] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise StorageError("a cluster needs at least one machine")
        self.machines = [
            Machine(machine_id=i, memory_bytes=self.machine_memory_bytes)
            for i in range(self.num_machines)
        ]
        # Keep the cost model's notion of parallelism in sync with the
        # actual cluster size so modelled seconds scale correctly.
        if self.cost_model.parallelism != self.num_machines:
            self.cost_model = CostModel(
                shuffle_factor=self.cost_model.shuffle_factor,
                remote_read_penalty=self.cost_model.remote_read_penalty,
                repartition_write_factor=self.cost_model.repartition_write_factor,
                seconds_per_block=self.cost_model.seconds_per_block,
                parallelism=self.num_machines,
            )

    def machine(self, machine_id: int) -> Machine:
        """Return the machine with the given id."""
        try:
            return self.machines[machine_id]
        except IndexError:
            raise StorageError(f"no machine {machine_id} in a {self.num_machines}-node cluster") from None

    def buffer_blocks(self, block_size_bytes: int) -> int:
        """How many blocks of ``block_size_bytes`` fit into one machine's memory.

        This is the ``B`` parameter of the hyper-join grouping problem.
        """
        if block_size_bytes <= 0:
            raise StorageError("block size must be positive")
        return max(1, self.machine_memory_bytes // block_size_bytes)

    def reset_read_counters(self) -> None:
        """Zero per-machine read counters before running a query."""
        for machine in self.machines:
            machine.reset_counters()

    @property
    def total_local_reads(self) -> int:
        """Local block reads across all machines since the last reset."""
        return sum(machine.local_reads for machine in self.machines)

    @property
    def total_remote_reads(self) -> int:
        """Remote block reads across all machines since the last reset."""
        return sum(machine.remote_reads for machine in self.machines)

    @property
    def locality_fraction(self) -> float:
        """Fraction of all reads since the last reset that were local."""
        total = self.total_local_reads + self.total_remote_reads
        if total == 0:
            return 1.0
        return self.total_local_reads / total
