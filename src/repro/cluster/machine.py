"""A single worker machine in the simulated cluster.

The paper ran on 10 physical nodes with 256 GB of RAM each.  In the
reproduction a machine is a bookkeeping object: it has an identifier, a
memory budget used to bound the size of hyper-join hash tables, and counters
of how many blocks it has read locally vs. remotely.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Machine:
    """A simulated worker node.

    Attributes:
        machine_id: Zero-based identifier within the cluster.
        memory_bytes: Memory available for building hash tables.
        local_reads: Number of blocks this machine read from its own disk.
        remote_reads: Number of blocks this machine read over the network.
    """

    machine_id: int
    memory_bytes: int
    local_reads: int = 0
    remote_reads: int = 0
    stored_blocks: set[int] = field(default_factory=set)

    def holds(self, block_id: int) -> bool:
        """Whether a replica of ``block_id`` lives on this machine's disk."""
        return block_id in self.stored_blocks

    def record_read(self, block_id: int) -> bool:
        """Record a read of ``block_id`` by this machine.

        Returns:
            ``True`` if the read was local, ``False`` if it was remote.
        """
        if self.holds(block_id):
            self.local_reads += 1
            return True
        self.remote_reads += 1
        return False

    def reset_counters(self) -> None:
        """Zero the read counters (start of a new query)."""
        self.local_reads = 0
        self.remote_reads = 0

    @property
    def total_reads(self) -> int:
        """Total number of block reads performed by this machine."""
        return self.local_reads + self.remote_reads

    @property
    def locality_fraction(self) -> float:
        """Fraction of reads that were local (1.0 when no reads happened)."""
        if self.total_reads == 0:
            return 1.0
        return self.local_reads / self.total_reads
