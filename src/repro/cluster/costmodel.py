"""The paper's analytical cost model (Section 4.2).

The model counts *block accesses*; the time to process a join is directly
proportional to the number of blocks accessed.  Constants follow the paper:

* ``CSJ = 3`` — a shuffle join touches each relevant block roughly three
  times (read from HDFS, write of the partitioned run, read of the run),
  equation (1).
* ``Cost-HyJ(q) = blocks(R) + C_HyJ * blocks(S)`` — a hyper-join reads each
  build-side block once and each probe-side block ``C_HyJ`` times on
  average, equation (2).
* Remote reads cost 8 % more than local reads (Figure 7 / [3]).

The model also converts block counts into *modelled seconds* with a
configurable per-block time so experiment harnesses can report runtime-shaped
series; absolute values are not meant to match the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Analytical cost model translating block accesses into cost units.

    Attributes:
        shuffle_factor: The paper's ``CSJ`` constant (default 3.0).
        remote_read_penalty: Multiplier applied to remote block reads
            (default 1.08, i.e. 8 % slower than a local read).
        repartition_write_factor: Cost of writing one repartitioned block
            relative to reading one block.  Repartitioning reads a block,
            routes every record through the new tree and writes it back, so
            the default charges one read plus one (slightly more expensive)
            write per block.
        seconds_per_block: Conversion from one block access in cost units to
            modelled wall-clock seconds.  Purely presentational.
        parallelism: Number of machines sharing the work; modelled seconds
            are divided by this value, mirroring perfectly parallel scans.
    """

    shuffle_factor: float = 3.0
    remote_read_penalty: float = 1.08
    repartition_write_factor: float = 1.5
    seconds_per_block: float = 1.0
    parallelism: int = 10

    # ------------------------------------------------------------------ #
    # Equation (1): shuffle join
    # ------------------------------------------------------------------ #
    def shuffle_join_cost(self, blocks_r: float, blocks_s: float) -> float:
        """Cost-SJ(q): every relevant block on both sides pays ``CSJ``."""
        return self.shuffle_factor * (blocks_r + blocks_s)

    # ------------------------------------------------------------------ #
    # Equation (2): hyper-join
    # ------------------------------------------------------------------ #
    def hyper_join_cost(self, blocks_r: float, probe_block_reads: float) -> float:
        """Cost-HyJ(q): build blocks read once, probe blocks read per schedule.

        Args:
            blocks_r: Number of build-side blocks read (each read once).
            probe_block_reads: Total probe-side block reads produced by the
                hyper-join schedule, i.e. ``C_HyJ * blocks(S)``.
        """
        return blocks_r + probe_block_reads

    # ------------------------------------------------------------------ #
    # Scans, repartitioning, locality
    # ------------------------------------------------------------------ #
    def scan_cost(self, blocks: float, locality_fraction: float = 1.0) -> float:
        """Cost of scanning ``blocks`` with a given fraction of local reads."""
        local = blocks * locality_fraction
        remote = blocks * (1.0 - locality_fraction)
        return local + remote * self.remote_read_penalty

    def repartition_cost(self, blocks: float) -> float:
        """Cost of reading ``blocks`` and writing them back under a new tree."""
        return blocks * (1.0 + self.repartition_write_factor)

    def read_cost(self, local_reads: float, remote_reads: float) -> float:
        """Cost of an explicit mix of local and remote block reads."""
        return local_reads + remote_reads * self.remote_read_penalty

    # ------------------------------------------------------------------ #
    # Parallel execution: makespan and stragglers
    # ------------------------------------------------------------------ #
    def makespan(self, machine_costs: list[float]) -> float:
        """Parallel completion time in cost units: the max per-machine cost.

        The serial sum (``sum(machine_costs)``) is what the paper's model
        charges; the makespan is what a cluster actually waits for — the
        machine with the heaviest task load.  The gap between
        ``makespan`` and ``sum / len`` is the straggler overhead.
        """
        return max(machine_costs) if machine_costs else 0.0

    def makespan_seconds(self, machine_costs: list[float]) -> float:
        """Makespan converted to modelled wall-clock seconds."""
        return self.makespan(machine_costs) * self.seconds_per_block

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def to_seconds(self, cost_units: float) -> float:
        """Convert cost units into modelled seconds on the whole cluster.

        This is the idealised conversion (perfect parallelism); use
        :meth:`makespan_seconds` for the schedule-aware runtime.
        """
        return cost_units * self.seconds_per_block / max(self.parallelism, 1)
