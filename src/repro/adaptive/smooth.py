"""Smooth repartitioning (Section 5.2, Figure 11).

A table keeps one partitioning tree per popular join attribute.  When a
query arrives whose join attribute matches a (new or existing) tree, AdaptDB
compares the fraction of window queries using that attribute with the
fraction of the table's data already stored under that tree, and migrates the
difference — a small number of randomly chosen blocks — from the other trees.
Repartitioning therefore happens a little at a time rather than as one huge
reorganization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.query import Query
from ..common.rng import make_rng
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import RepartitionStats, StoredTable
from .window import QueryWindow

DEFAULT_MIN_FREQUENCY = 1


@dataclass
class SmoothPlan:
    """What smooth repartitioning decided to do for one table and one query.

    Attributes:
        table: Table the plan applies to.
        join_attribute: Join attribute of the incoming query on this table.
        created_tree_id: Id of a newly created two-phase tree, if any.
        blocks_to_move: Source blocks that will be migrated this query.
        fraction: The paper's ``p`` (fraction of the data to migrate).
    """

    table: str
    join_attribute: str | None = None
    created_tree_id: int | None = None
    blocks_to_move: list[int] = field(default_factory=list)
    fraction: float = 0.0

    @property
    def is_noop(self) -> bool:
        """Whether the plan performs no repartitioning work."""
        return self.created_tree_id is None and not self.blocks_to_move


@dataclass
class SmoothRepartitioner:
    """Implements the smooth repartitioning algorithm of Figure 11.

    Attributes:
        rows_per_block: Target block size used when building new trees.
        join_level_fraction: Fraction of tree levels reserved for the join
            attribute in newly created two-phase trees.
        min_frequency: Minimum number of window queries with a new join
            attribute before a tree is created for it (the paper's ``fmin``).
        rng: Random generator used to pick the blocks to migrate.
    """

    rows_per_block: int = 4096
    join_level_fraction: float = 0.5
    min_frequency: int = DEFAULT_MIN_FREQUENCY
    join_levels_override: int | None = None
    rng: np.random.Generator = field(default_factory=make_rng)

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def plan(self, table: StoredTable, query: Query, window: QueryWindow) -> SmoothPlan:
        """Decide how much of ``table`` to migrate in response to ``query``.

        The query must already be part of ``window`` (the algorithm in
        Figure 11 adds the query to the window first).
        """
        join_attribute = query.join_attribute(table.name)
        plan = SmoothPlan(table=table.name, join_attribute=join_attribute)
        if join_attribute is None:
            return plan

        # The paper's |W| is the configured window length, not the number of
        # queries seen so far — a cold-started system therefore migrates
        # 1/|W| of the data on the first query rather than all of it.
        window_size = max(window.size, 1)
        matching = window.count_join_attribute(table.name, join_attribute)
        target_tree_id = table.tree_for_join_attribute(join_attribute)

        if target_tree_id is None:
            if matching < self.min_frequency:
                return plan
            target_tree_id = self._create_tree(table, join_attribute, window)
            plan.created_tree_id = target_tree_id
            plan.fraction = matching / window_size
        else:
            rows_total = table.total_rows
            rows_in_target = table.rows_under_tree(target_tree_id)
            data_fraction = rows_in_target / rows_total if rows_total else 0.0
            plan.fraction = matching / window_size - data_fraction
            if plan.fraction <= 0:
                return plan

        plan.blocks_to_move = self._choose_blocks(table, target_tree_id, plan.fraction)
        return plan

    def apply(self, table: StoredTable, plan: SmoothPlan) -> RepartitionStats:
        """Migrate the blocks selected by ``plan`` and return the work done."""
        if plan.is_noop or not plan.blocks_to_move:
            return RepartitionStats()
        target_attribute = plan.join_attribute
        assert target_attribute is not None
        target_tree_id = table.tree_for_join_attribute(target_attribute)
        if target_tree_id is None:
            return RepartitionStats()
        stats = table.move_blocks(plan.blocks_to_move, target_tree_id)
        table.drop_empty_trees()
        return stats

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _create_tree(self, table: StoredTable, join_attribute: str, window: QueryWindow) -> int:
        """Create a new, initially empty, two-phase tree for ``join_attribute``."""
        selection_counts = window.predicate_attribute_counts(table.name)
        selection_attributes = [
            attribute
            for attribute, _ in sorted(selection_counts.items(), key=lambda item: -item[1])
            if attribute in table.sample and attribute != join_attribute
        ]
        if not selection_attributes:
            selection_attributes = [
                name for name in table.sample if name != join_attribute
            ]
        partitioner = TwoPhasePartitioner(
            join_attribute=join_attribute,
            selection_attributes=selection_attributes,
            rows_per_block=self.rows_per_block,
            join_level_fraction=self.join_level_fraction,
        )
        num_leaves = max(1, math.ceil(max(table.total_rows, 1) / self.rows_per_block))
        tree = partitioner.build(
            table.sample,
            total_rows=table.total_rows,
            num_leaves=num_leaves,
            join_levels=self.join_levels_override,
        )
        return table.add_empty_tree(tree)

    def _choose_blocks(self, table: StoredTable, target_tree_id: int, fraction: float) -> list[int]:
        """Randomly pick source blocks totalling ``fraction`` of the table's data."""
        non_empty = table.non_empty_block_ids()
        candidates = [
            block_id
            for block_id in non_empty
            if table.tree_of_block(block_id) != target_tree_id
        ]
        if not candidates or fraction <= 0:
            return []
        count = min(len(candidates), max(1, round(fraction * len(non_empty))))
        chosen = self.rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(index)] for index in chosen]
