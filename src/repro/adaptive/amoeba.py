"""Amoeba's selection-driven adaptive repartitioning (Section 3.2).

After each query, Amoeba considers alternative partitioning trees obtained by
applying local transformation rules — merge two sibling blocks currently
split on attribute ``A`` and re-split them on attribute ``B`` — and switches
to the alternative that maximizes total benefit over the query window, where
benefit is the estimated reduction in blocks read minus the repartitioning
cost.

AdaptDB keeps this mechanism for the *lower* (selection) levels of its trees;
the join levels at the top are managed by smooth repartitioning instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.epochs import epoch_keyed
from ..common.predicates import Predicate
from ..partitioning.builders import median_cutpoint
from ..partitioning.tree import TreeNode
from ..storage.table import StoredTable
from .window import QueryWindow


@dataclass
class TransformCandidate:
    """One candidate transformation of a partitioning tree.

    Attributes:
        tree_id: Tree the transformation applies to.
        node: The internal node (parent of two leaves) to re-split.
        new_attribute: Attribute the node would be re-split on.
        new_cutpoint: Cutpoint for the new split.
        benefit: Estimated blocks saved over the window, minus the
            repartitioning cost (in block accesses).
    """

    tree_id: int
    node: TreeNode
    new_attribute: str
    new_cutpoint: float
    benefit: float


@dataclass
class AmoebaAdaptationStats:
    """Work performed by one adaptation step."""

    transforms_applied: int = 0
    blocks_repartitioned: int = 0
    rows_moved: int = 0


@dataclass
class AmoebaAdaptor:
    """Selection-driven refinement of the lower levels of partitioning trees.

    Attributes:
        repartition_cost_per_block: Cost (in block accesses) charged for
            rewriting one block, used in the benefit computation.
        max_transforms_per_query: Upper bound on transformations applied per
            incoming query; keeps adaptation incremental.
        benefit_threshold: Minimum net benefit required to apply a transform.

    Candidate enumeration runs every query over every bottom-level node, so
    its two pure sub-computations are memoized: candidate cutpoints (the
    table sample never changes, so a (table, attribute, bounds) key is exact)
    and the per-predicate-set block-touch counts used by the benefit
    estimate (keyed on the node's split and the query's predicate tuple).
    """

    repartition_cost_per_block: float = 2.5
    max_transforms_per_query: int = 1
    benefit_threshold: float = 0.0
    _cutpoint_cache: dict = field(default_factory=dict, repr=False)
    _touched_cache: dict = field(default_factory=dict, repr=False)
    _predicate_tokens: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidate_transforms(
        self, table: StoredTable, window: QueryWindow
    ) -> list[TransformCandidate]:
        """Enumerate bottom-level re-split candidates driven by window predicates."""
        predicate_counts = window.predicate_attribute_counts(table.name)
        hot_attributes = [
            attribute
            for attribute, _ in sorted(predicate_counts.items(), key=lambda item: -item[1])
            if attribute in table.sample
        ]
        if not hot_attributes:
            return []

        # Tokenize each window query's predicate tuple once (the benefit memo
        # keys on the small integer token instead of re-hashing the predicate
        # dataclasses per candidate) and index the window entries by the
        # attributes they actually constrain: an entry without a predicate on
        # a split attribute always touches both leaves, so only the relevant
        # entries need per-cutpoint evaluation.
        self._trim_caches()
        window_predicates: list[tuple[int, tuple[Predicate, ...]]] = []
        entries_by_attr: dict[str, list[tuple[int, tuple[Predicate, ...]]]] = {}
        for query in window.queries_on(table.name):
            predicates = tuple(query.predicates_on(table.name))
            if not predicates:
                continue
            token = self._predicate_tokens.setdefault(
                predicates, len(self._predicate_tokens)
            )
            window_predicates.append((token, predicates))
            for column in sorted({predicate.column for predicate in predicates}):
                entries_by_attr.setdefault(column, []).append((token, predicates))
        total_entries = len(window_predicates)
        candidates: list[TransformCandidate] = []
        for tree_id, tree in table.trees.items():
            for node, bounds in tree.bottom_internal_nodes():
                if tree.join_attribute is not None and node.attribute == tree.join_attribute:
                    # Never down-grade a join-attribute split into a selection
                    # split: the join levels are managed by smooth repartitioning.
                    continue
                # One nested cache level per (table, bounds): attribute keys
                # are plain strings whose hashes python caches, so the hot
                # memo-hit path never re-hashes the bounds tuple.
                node_cutpoints = self._cutpoint_cache.setdefault(
                    (table.name, tuple(sorted(bounds.items()))), {}
                )
                for attribute in hot_attributes:
                    if attribute == node.attribute:
                        continue
                    cutpoint = self._cutpoint_for(table, attribute, bounds, node_cutpoints)
                    if cutpoint is None:
                        continue
                    benefit = self._estimate_benefit(
                        node, attribute, cutpoint, entries_by_attr, total_entries
                    )
                    if benefit > self.benefit_threshold:
                        candidates.append(
                            TransformCandidate(
                                tree_id=tree_id,
                                node=node,
                                new_attribute=attribute,
                                new_cutpoint=cutpoint,
                                benefit=benefit,
                            )
                        )
        candidates.sort(key=lambda candidate: -candidate.benefit)
        return candidates

    _MEMO_LIMIT = 16_384

    def _trim_caches(self) -> None:
        """Bound the memo tables for workloads with non-repeating predicates.

        ``_touched_cache`` keys on tokens issued by ``_predicate_tokens``,
        so the two must be dropped together — clearing only the tokens would
        let a reissued token alias a stale cached count.
        """
        if len(self._predicate_tokens) > self._MEMO_LIMIT or len(self._touched_cache) > self._MEMO_LIMIT:
            self._predicate_tokens.clear()
            self._touched_cache.clear()
        if len(self._cutpoint_cache) > self._MEMO_LIMIT:
            self._cutpoint_cache.clear()

    # ------------------------------------------------------------------ #
    # Adaptation
    # ------------------------------------------------------------------ #
    def adapt(self, table: StoredTable, window: QueryWindow) -> AmoebaAdaptationStats:
        """Apply the best beneficial transformations (at most ``max_transforms_per_query``)."""
        stats = AmoebaAdaptationStats()
        candidates = self.candidate_transforms(table, window)
        applied_nodes: set[int] = set()
        for candidate in candidates:
            if stats.transforms_applied >= self.max_transforms_per_query:
                break
            if id(candidate.node) in applied_nodes:
                continue
            moved = self._apply(table, candidate)
            applied_nodes.add(id(candidate.node))
            stats.transforms_applied += 1
            stats.blocks_repartitioned += 2
            stats.rows_moved += moved
        return stats

    def _apply(self, table: StoredTable, candidate: TransformCandidate) -> int:
        """Re-split one bottom-level node and redistribute its two blocks' rows."""
        node = candidate.node
        assert node.left is not None and node.right is not None
        left_id = node.left.block_id
        right_id = node.right.block_id
        if left_id is None or right_id is None:
            return 0
        # The paired resplit_leaf_pair call directly below bumps the table's
        # epoch unconditionally, covering this tree mutation — the epoch
        # checker proves that flow itself, so no suppression is needed.
        table.tree(candidate.tree_id).resplit_node(
            node, candidate.new_attribute, candidate.new_cutpoint
        )
        return table.resplit_leaf_pair(
            left_id, right_id, candidate.new_attribute, candidate.new_cutpoint
        )

    # ------------------------------------------------------------------ #
    # Benefit estimation
    # ------------------------------------------------------------------ #
    def _estimate_benefit(
        self,
        node: TreeNode,
        attribute: str,
        cutpoint: float,
        entries_by_attr: dict[str, list[tuple[int, tuple[Predicate, ...]]]],
        total_entries: int,
    ) -> float:
        """Blocks saved over the window if ``node`` were re-split on ``attribute``."""
        assert node.left is not None and node.right is not None
        current = self._touched_sum(node.attribute, node.cutpoint, entries_by_attr, total_entries)
        proposed = self._touched_sum(attribute, cutpoint, entries_by_attr, total_entries)
        return float(current - proposed) - self.repartition_cost_per_block * 2

    def _touched_sum(
        self,
        attribute: str | None,
        cutpoint: float | None,
        entries_by_attr: dict[str, list[tuple[int, tuple[Predicate, ...]]]],
        total_entries: int,
    ) -> int:
        """Σ over the window of blocks touched under one (attribute, cutpoint) split.

        Window entries without a predicate on ``attribute`` contribute a flat
        2 (both leaves read); only the entries indexed under ``attribute``
        need per-cutpoint evaluation.
        """
        if attribute is None or cutpoint is None:
            return 2 * total_entries
        relevant = entries_by_attr.get(attribute)
        if not relevant:
            return 2 * total_entries
        return 2 * (total_entries - len(relevant)) + sum(
            self._blocks_touched(attribute, cutpoint, predicates, token)
            for token, predicates in relevant
        )

    @epoch_keyed(reads=())
    def _blocks_touched(
        self,
        attribute: str | None,
        cutpoint: float | None,
        predicates: tuple[Predicate, ...],
        token: int,
    ) -> int:
        """How many of a bottom node's two leaf blocks the predicates must read."""
        if attribute is None or cutpoint is None:
            return 2
        key = (attribute, cutpoint, token)
        cached = self._touched_cache.get(key)
        if cached is not None:
            return cached
        relevant = [predicate for predicate in predicates if predicate.column == attribute]
        if not relevant:
            touched = 2
        else:
            touched = 0
            if all(predicate.may_match_range(-math.inf, cutpoint) for predicate in relevant):
                touched += 1
            if all(predicate.may_match_range(cutpoint, math.inf) for predicate in relevant):
                touched += 1
            touched = max(touched, 0)
        self._touched_cache[key] = touched
        return touched

    @epoch_keyed(reads=("sample",))
    def _cutpoint_for(
        self,
        table: StoredTable,
        attribute: str,
        bounds: dict[str, tuple[float, float]],
        memo: dict | None = None,
    ) -> float | None:
        """Median of ``attribute`` in the table sample, restricted to ``bounds``.

        The sample is fixed at load time, so results are memoized per
        ``(table, bounds)`` in ``memo`` (a nested level of
        ``_cutpoint_cache``) under the attribute name.
        """
        if memo is None:
            memo = self._cutpoint_cache.setdefault(
                (table.name, tuple(sorted(bounds.items()))), {}
            )
        if attribute in memo:
            return memo[attribute]
        sample = table.sample
        if attribute not in sample or len(sample[attribute]) == 0:
            cutpoint = None
        else:
            mask = np.ones(len(sample[attribute]), dtype=bool)
            for bounded_attribute, (lo, hi) in bounds.items():
                if bounded_attribute in sample:
                    values = sample[bounded_attribute]
                    mask &= (values >= lo) & (values <= hi)
            subset = sample[attribute][mask]
            if len(subset) < 2:
                subset = sample[attribute]
            cutpoint = median_cutpoint(subset)
        memo[attribute] = cutpoint
        return cutpoint


