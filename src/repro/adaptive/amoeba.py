"""Amoeba's selection-driven adaptive repartitioning (Section 3.2).

After each query, Amoeba considers alternative partitioning trees obtained by
applying local transformation rules — merge two sibling blocks currently
split on attribute ``A`` and re-split them on attribute ``B`` — and switches
to the alternative that maximizes total benefit over the query window, where
benefit is the estimated reduction in blocks read minus the repartitioning
cost.

AdaptDB keeps this mechanism for the *lower* (selection) levels of its trees;
the join levels at the top are managed by smooth repartitioning instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.predicates import Predicate
from ..partitioning.builders import median_cutpoint
from ..partitioning.tree import PartitioningTree, TreeNode
from ..storage.table import StoredTable
from .window import QueryWindow


@dataclass
class TransformCandidate:
    """One candidate transformation of a partitioning tree.

    Attributes:
        tree_id: Tree the transformation applies to.
        node: The internal node (parent of two leaves) to re-split.
        new_attribute: Attribute the node would be re-split on.
        new_cutpoint: Cutpoint for the new split.
        benefit: Estimated blocks saved over the window, minus the
            repartitioning cost (in block accesses).
    """

    tree_id: int
    node: TreeNode
    new_attribute: str
    new_cutpoint: float
    benefit: float


@dataclass
class AmoebaAdaptationStats:
    """Work performed by one adaptation step."""

    transforms_applied: int = 0
    blocks_repartitioned: int = 0
    rows_moved: int = 0


@dataclass
class AmoebaAdaptor:
    """Selection-driven refinement of the lower levels of partitioning trees.

    Attributes:
        repartition_cost_per_block: Cost (in block accesses) charged for
            rewriting one block, used in the benefit computation.
        max_transforms_per_query: Upper bound on transformations applied per
            incoming query; keeps adaptation incremental.
        benefit_threshold: Minimum net benefit required to apply a transform.
    """

    repartition_cost_per_block: float = 2.5
    max_transforms_per_query: int = 1
    benefit_threshold: float = 0.0

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidate_transforms(
        self, table: StoredTable, window: QueryWindow
    ) -> list[TransformCandidate]:
        """Enumerate bottom-level re-split candidates driven by window predicates."""
        predicate_counts = window.predicate_attribute_counts(table.name)
        hot_attributes = [
            attribute
            for attribute, _ in sorted(predicate_counts.items(), key=lambda item: -item[1])
            if attribute in table.sample
        ]
        if not hot_attributes:
            return []

        window_queries = window.queries_on(table.name)
        candidates: list[TransformCandidate] = []
        for tree_id, tree in table.trees.items():
            for node, bounds in _bottom_internal_nodes(tree):
                if tree.join_attribute is not None and node.attribute == tree.join_attribute:
                    # Never down-grade a join-attribute split into a selection
                    # split: the join levels are managed by smooth repartitioning.
                    continue
                for attribute in hot_attributes:
                    if attribute == node.attribute:
                        continue
                    cutpoint = self._cutpoint_for(table, attribute, bounds)
                    if cutpoint is None:
                        continue
                    benefit = self._estimate_benefit(
                        table, tree, node, attribute, cutpoint, window_queries
                    )
                    if benefit > self.benefit_threshold:
                        candidates.append(
                            TransformCandidate(
                                tree_id=tree_id,
                                node=node,
                                new_attribute=attribute,
                                new_cutpoint=cutpoint,
                                benefit=benefit,
                            )
                        )
        candidates.sort(key=lambda candidate: -candidate.benefit)
        return candidates

    # ------------------------------------------------------------------ #
    # Adaptation
    # ------------------------------------------------------------------ #
    def adapt(self, table: StoredTable, window: QueryWindow) -> AmoebaAdaptationStats:
        """Apply the best beneficial transformations (at most ``max_transforms_per_query``)."""
        stats = AmoebaAdaptationStats()
        candidates = self.candidate_transforms(table, window)
        applied_nodes: set[int] = set()
        for candidate in candidates:
            if stats.transforms_applied >= self.max_transforms_per_query:
                break
            if id(candidate.node) in applied_nodes:
                continue
            moved = self._apply(table, candidate)
            applied_nodes.add(id(candidate.node))
            stats.transforms_applied += 1
            stats.blocks_repartitioned += 2
            stats.rows_moved += moved
        return stats

    def _apply(self, table: StoredTable, candidate: TransformCandidate) -> int:
        """Re-split one bottom-level node and redistribute its two blocks' rows."""
        node = candidate.node
        assert node.left is not None and node.right is not None
        left_id = node.left.block_id
        right_id = node.right.block_id
        if left_id is None or right_id is None:
            return 0

        left_block = table.dfs.peek_block(left_id)
        right_block = table.dfs.peek_block(right_id)
        merged = {
            name: np.concatenate([left_block.columns[name], right_block.columns[name]])
            for name in left_block.columns
        }
        rows_moved = len(next(iter(merged.values()))) if merged else 0

        node.attribute = candidate.new_attribute
        node.cutpoint = candidate.new_cutpoint

        values = merged.get(candidate.new_attribute)
        if values is None or rows_moved == 0:
            return 0
        goes_left = values <= candidate.new_cutpoint
        table.dfs.peek_block(left_id).columns = {
            name: array[goes_left] for name, array in merged.items()
        }
        table.dfs.peek_block(right_id).columns = {
            name: array[~goes_left] for name, array in merged.items()
        }
        for block_id in (left_id, right_id):
            block = table.dfs.peek_block(block_id)
            block.ranges = {
                name: (float(array.min()), float(array.max()))
                for name, array in block.columns.items()
                if len(array)
            }
            block.size_bytes = int(sum(array.nbytes for array in block.columns.values()))
        return rows_moved

    # ------------------------------------------------------------------ #
    # Benefit estimation
    # ------------------------------------------------------------------ #
    def _estimate_benefit(
        self,
        table: StoredTable,
        tree: PartitioningTree,
        node: TreeNode,
        attribute: str,
        cutpoint: float,
        window_queries,
    ) -> float:
        """Blocks saved over the window if ``node`` were re-split on ``attribute``."""
        assert node.left is not None and node.right is not None
        saved = 0.0
        for query in window_queries:
            predicates = query.predicates_on(table.name)
            if not predicates:
                continue
            current = self._blocks_touched(node, node.attribute, node.cutpoint, predicates)
            proposed = self._blocks_touched(node, attribute, cutpoint, predicates)
            saved += current - proposed
        return saved - self.repartition_cost_per_block * 2

    @staticmethod
    def _blocks_touched(
        node: TreeNode, attribute: str | None, cutpoint: float | None, predicates: list[Predicate]
    ) -> int:
        """How many of the node's two leaf blocks the predicates must read."""
        if attribute is None or cutpoint is None:
            return 2
        relevant = [predicate for predicate in predicates if predicate.column == attribute]
        if not relevant:
            return 2
        touched = 0
        if all(predicate.may_match_range(-math.inf, cutpoint) for predicate in relevant):
            touched += 1
        if all(predicate.may_match_range(cutpoint, math.inf) for predicate in relevant):
            touched += 1
        return max(touched, 0)

    def _cutpoint_for(
        self, table: StoredTable, attribute: str, bounds: dict[str, tuple[float, float]]
    ) -> float | None:
        """Median of ``attribute`` in the table sample, restricted to ``bounds``."""
        sample = table.sample
        if attribute not in sample or len(sample[attribute]) == 0:
            return None
        mask = np.ones(len(sample[attribute]), dtype=bool)
        for bounded_attribute, (lo, hi) in bounds.items():
            if bounded_attribute in sample:
                values = sample[bounded_attribute]
                mask &= (values >= lo) & (values <= hi)
        subset = sample[attribute][mask]
        if len(subset) < 2:
            subset = sample[attribute]
        return median_cutpoint(subset)


def _bottom_internal_nodes(
    tree: PartitioningTree,
) -> list[tuple[TreeNode, dict[str, tuple[float, float]]]]:
    """Internal nodes whose two children are both leaves, with their path bounds."""
    result: list[tuple[TreeNode, dict[str, tuple[float, float]]]] = []

    def descend(node: TreeNode, bounds: dict[str, tuple[float, float]]) -> None:
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        if node.left.is_leaf and node.right.is_leaf:
            result.append((node, dict(bounds)))
            return
        assert node.attribute is not None and node.cutpoint is not None
        lo, hi = bounds.get(node.attribute, (-math.inf, math.inf))
        left_bounds = dict(bounds)
        left_bounds[node.attribute] = (lo, min(hi, node.cutpoint))
        right_bounds = dict(bounds)
        right_bounds[node.attribute] = (max(lo, node.cutpoint), hi)
        descend(node.left, left_bounds)
        descend(node.right, right_bounds)

    descend(tree.root, {})
    return result
