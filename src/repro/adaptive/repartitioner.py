"""The adaptive repartitioner: AdaptDB's per-query adaptation driver.

For every incoming query the repartitioner (a) records the query in the
window, (b) runs smooth repartitioning on every joined table, migrating a
small number of blocks towards the tree of the query's join attribute, and
(c) runs Amoeba-style selection refinement on the lower tree levels.  The
work it performs is returned so the executor can charge it to the query — in
the paper this corresponds to Type 2 blocks, which are scanned *and*
repartitioned by the same Spark tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.query import Query
from ..common.rng import make_rng
from ..storage.catalog import Catalog
from .amoeba import AmoebaAdaptor
from .smooth import SmoothRepartitioner
from .window import DEFAULT_WINDOW_SIZE, QueryWindow


@dataclass
class RepartitionReport:
    """Adaptation work charged to one query."""

    blocks_repartitioned: int = 0
    rows_repartitioned: int = 0
    trees_created: int = 0
    amoeba_transforms: int = 0
    per_table_blocks: dict[str, int] = field(default_factory=dict)

    def record(self, table: str, blocks: int, rows: int) -> None:
        """Add repartitioning work for ``table``."""
        self.blocks_repartitioned += blocks
        self.rows_repartitioned += rows
        self.per_table_blocks[table] = self.per_table_blocks.get(table, 0) + blocks


@dataclass
class AdaptiveRepartitioner:
    """Coordinates smooth repartitioning and Amoeba refinement per query.

    Attributes:
        window_size: Length of the query window.
        rows_per_block: Target block size for newly created trees.
        join_level_fraction: Fraction of tree levels reserved for join
            attributes in new two-phase trees.
        min_frequency: Minimum window frequency before a tree is created for
            a new join attribute (the paper's ``fmin``).
        enable_smooth: Toggle for smooth (join-driven) repartitioning.
        enable_amoeba: Toggle for selection-driven refinement.
        rng: Random generator for block selection.
    """

    window_size: int = DEFAULT_WINDOW_SIZE
    rows_per_block: int = 4096
    join_level_fraction: float = 0.5
    min_frequency: int = 1
    join_levels_override: int | None = None
    enable_smooth: bool = True
    enable_amoeba: bool = True
    rng: np.random.Generator = field(default_factory=make_rng)
    window: QueryWindow = field(init=False)
    smooth: SmoothRepartitioner = field(init=False)
    amoeba: AmoebaAdaptor = field(init=False)

    def __post_init__(self) -> None:
        self.window = QueryWindow(size=self.window_size)
        self.smooth = SmoothRepartitioner(
            rows_per_block=self.rows_per_block,
            join_level_fraction=self.join_level_fraction,
            min_frequency=self.min_frequency,
            join_levels_override=self.join_levels_override,
            rng=self.rng,
        )
        self.amoeba = AmoebaAdaptor()

    def on_query(self, catalog: Catalog, query: Query) -> RepartitionReport:
        """Adapt the storage layout in response to ``query``.

        Returns:
            A :class:`RepartitionReport` describing the blocks migrated and
            transformations applied, to be charged to the query's runtime.
        """
        self.window.add(query)
        report = RepartitionReport()
        tables = [catalog.get(name) for name in query.tables if name in catalog]

        if self.enable_smooth:
            for table in tables:
                plan = self.smooth.plan(table, query, self.window)
                if plan.created_tree_id is not None:
                    report.trees_created += 1
                stats = self.smooth.apply(table, plan)
                report.record(table.name, stats.source_blocks, stats.rows_moved)

        if self.enable_amoeba:
            for table in tables:
                stats = self.amoeba.adapt(table, self.window)
                report.amoeba_transforms += stats.transforms_applied
                report.record(table.name, stats.blocks_repartitioned, stats.rows_moved)

        return report
