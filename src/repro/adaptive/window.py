"""The query window (Sections 3.2 and 5.2).

AdaptDB keeps the most recent ``|W|`` queries.  The window drives every
adaptation decision: the fraction of queries using each join attribute
determines how much data each partitioning tree should hold (smooth
repartitioning), and the selection attributes seen in the window drive
Amoeba-style refinement of the lower tree levels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..common.errors import PlanningError
from ..common.query import Query

DEFAULT_WINDOW_SIZE = 10


@dataclass
class QueryWindow:
    """A bounded FIFO of recent queries.

    Attributes:
        size: Maximum number of queries retained (the paper's ``|W|``).
    """

    size: int = DEFAULT_WINDOW_SIZE
    _queries: deque = field(init=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise PlanningError("query window size must be at least 1")
        self._queries = deque(maxlen=self.size)

    def add(self, query: Query) -> None:
        """Append a query, evicting the oldest if the window is full."""
        self._queries.append(query)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    @property
    def queries(self) -> list[Query]:
        """Queries currently in the window, oldest first."""
        return list(self._queries)

    # ------------------------------------------------------------------ #
    # Aggregates used by the adaptors
    # ------------------------------------------------------------------ #
    def join_attribute_counts(self, table: str) -> dict[str, int]:
        """How many window queries join ``table`` on each attribute."""
        counts: dict[str, int] = {}
        for query in self._queries:
            attribute = query.join_attribute(table)
            if attribute is not None:
                counts[attribute] = counts.get(attribute, 0) + 1
        return counts

    def count_join_attribute(self, table: str, attribute: str) -> int:
        """Number of window queries joining ``table`` on ``attribute``."""
        return self.join_attribute_counts(table).get(attribute, 0)

    def predicate_attribute_counts(self, table: str) -> dict[str, int]:
        """How many window queries have a selection predicate on each attribute of ``table``."""
        counts: dict[str, int] = {}
        for query in self._queries:
            for attribute in query.predicate_attributes(table):
                counts[attribute] = counts.get(attribute, 0) + 1
        return counts

    def queries_on(self, table: str) -> list[Query]:
        """Window queries that read ``table``."""
        return [query for query in self._queries if table in query.tables]

    def clear(self) -> None:
        """Forget all queries."""
        self._queries.clear()
