"""Adaptive repartitioning: query window, smooth repartitioning, Amoeba refinement."""

from .amoeba import AmoebaAdaptationStats, AmoebaAdaptor, TransformCandidate
from .repartitioner import AdaptiveRepartitioner, RepartitionReport
from .smooth import SmoothPlan, SmoothRepartitioner
from .window import DEFAULT_WINDOW_SIZE, QueryWindow

__all__ = [
    "AdaptiveRepartitioner",
    "AmoebaAdaptationStats",
    "AmoebaAdaptor",
    "DEFAULT_WINDOW_SIZE",
    "QueryWindow",
    "RepartitionReport",
    "SmoothPlan",
    "SmoothRepartitioner",
    "TransformCandidate",
]
