"""A deterministic discrete-event simulator for task schedules.

The execution engine's makespan model sums each machine's assigned cost and
takes the maximum — it ignores *when* tasks can actually run.  This module
plays a :class:`~repro.exec.tasks.TaskSchedule` out on virtual machines
instead:

* every machine owns a FIFO task queue (placement order) and runs one task
  at a time; a machine picks the first *ready* task in its queue and idles
  when none is ready,
* shuffle-reduce tasks are held back by a **stage barrier**: a reduce for
  join ``j`` becomes ready only once every shuffle-map task of join ``j``
  has finished (other stage>0 tasks wait on all lower-stage tasks of their
  job),
* repartition tasks additionally contend for a **bounded
  repartitioning-bandwidth** resource: at most ``repartition_bandwidth``
  of them run cluster-wide at any instant, so adaptation work queues behind
  itself and competes with query tasks for machine time,
* multiple jobs (queries, background repartitioning streams) share the same
  machines; their tasks interleave in arrival order.

Everything is deterministic: the event queue breaks time ties on a
monotonic sequence number, machines dispatch in id order, and queues are
scanned in placement order — the same submissions always produce the same
event trace, which the tests and the benchmark's determinism gate rely on.

Time is modelled seconds: one cost unit (block access) takes
``seconds_per_block`` seconds, the same conversion the cost model's
``makespan_seconds`` uses, so simulated and makespan completion times are
directly comparable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..common.errors import ExecutionError
from ..exec.tasks import Task, TaskKind, TaskSchedule

#: Event-kind labels.  Equal-timestamp events are processed in *insertion*
#: order (the heap tuple is ``(time, seq, kind, payload)`` and ``seq`` is
#: unique and monotonic) — the kind never participates in ordering, and idle
#: machines are re-dispatched after every event either way.
_FINISH = 0
_ARRIVAL = 1


def task_dependencies(tasks: list[Task]) -> dict[int, set[int]]:
    """Barrier dependencies of a job's tasks, keyed by task id.

    Shuffle-reduce tasks depend on every shuffle-map task of the same join
    (the producing maps).  Any other stage>0 task conservatively depends on
    every lower-stage task of the job.  Stage-0 tasks have no dependencies.
    """
    maps_by_join: dict[int | None, set[int]] = {}
    for task in tasks:
        if task.kind is TaskKind.SHUFFLE_MAP:
            maps_by_join.setdefault(task.join_index, set()).add(task.task_id)
    dependencies: dict[int, set[int]] = {}
    for task in tasks:
        if task.stage == 0:
            dependencies[task.task_id] = set()
        elif task.kind is TaskKind.SHUFFLE_REDUCE and task.join_index in maps_by_join:
            dependencies[task.task_id] = set(maps_by_join[task.join_index])
        else:
            dependencies[task.task_id] = {
                other.task_id for other in tasks if other.stage < task.stage
            }
    return dependencies


@dataclass
class _SimTask:
    """One task instance inside the simulator."""

    job: "JobStats"
    task: Task
    machine_id: int
    seconds: float
    deps_remaining: int
    dependents: list["_SimTask"] = field(default_factory=list)
    ready_time: float = 0.0
    started: float | None = None

    @property
    def needs_bandwidth(self) -> bool:
        return self.task.kind is TaskKind.REPARTITION


@dataclass
class JobStats:
    """Timing of one submitted job (a query's schedule, or background work).

    Attributes:
        job_id: Submission order (0-based).
        label: Caller-supplied tag (e.g. ``"query"`` / ``"repartition"``).
        arrival: Simulated time the job was submitted.
        started: Time its first task started running.
        finished: Time its last task finished (``None`` while running).
        tasks_total: Number of tasks in the job's schedule.
        queueing_seconds: Summed task waiting time — for every task, the gap
            between the moment it was runnable (arrived with its barrier
            open) and the moment a machine actually started it.
    """

    job_id: int
    label: str = "job"
    arrival: float = 0.0
    started: float | None = None
    finished: float | None = None
    tasks_total: int = 0
    tasks_done: int = 0
    queueing_seconds: float = 0.0

    @property
    def latency(self) -> float:
        """Completion time minus arrival time (0.0 for empty jobs)."""
        if self.finished is None:
            return 0.0
        return self.finished - self.arrival

    @property
    def mean_task_wait(self) -> float:
        """Average queueing delay per task."""
        if self.tasks_total == 0:
            return 0.0
        return self.queueing_seconds / self.tasks_total


@dataclass
class SimReport:
    """Outcome of one simulation run."""

    finished_at: float
    jobs: list[JobStats]
    machine_busy_seconds: list[float]
    busy_intervals: list[list[tuple[float, float]]]

    def utilisation(self) -> list[float]:
        """Busy fraction per machine over the whole run."""
        if self.finished_at <= 0.0:
            return [0.0] * len(self.machine_busy_seconds)
        return [busy / self.finished_at for busy in self.machine_busy_seconds]

    def utilisation_timeline(self, bins: int = 20) -> list[float]:
        """Cluster-mean busy fraction per time bin over ``[0, finished_at]``."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        if self.finished_at <= 0.0 or not self.busy_intervals:
            return [0.0] * bins
        width = self.finished_at / bins
        busy = [0.0] * bins
        for intervals in self.busy_intervals:
            for start, end in intervals:
                first = min(int(start / width), bins - 1)
                last = min(int(end / width), bins - 1) if end < self.finished_at else bins - 1
                for index in range(first, last + 1):
                    bin_start = index * width
                    bin_end = bin_start + width
                    busy[index] += max(0.0, min(end, bin_end) - max(start, bin_start))
        machines = len(self.busy_intervals)
        return [value / (width * machines) for value in busy]


@dataclass
class ClusterSimulator:
    """Discrete-event simulation of task schedules on a virtual cluster.

    Attributes:
        num_machines: Machines available (schedules must target this size).
        seconds_per_block: Cost-unit to simulated-seconds conversion (matches
            :meth:`repro.cluster.costmodel.CostModel.makespan_seconds`).
        repartition_bandwidth: Maximum number of repartition tasks running
            cluster-wide at once; ``None`` leaves them unbounded.
        on_job_complete: Optional callback ``(job, finish_time)`` fired when
            a job's last task finishes; it may call :meth:`submit` to inject
            follow-up jobs (the closed-loop workload driver does).
    """

    num_machines: int
    seconds_per_block: float = 1.0
    repartition_bandwidth: int | None = None
    on_job_complete: Callable[[JobStats, float], None] | None = None

    jobs: list[JobStats] = field(default_factory=list, init=False)
    event_log: list[tuple] = field(default_factory=list, init=False)
    _queues: list[list[_SimTask]] = field(init=False)
    _busy_until: list[float | None] = field(init=False)
    _busy_intervals: list[list[tuple[float, float]]] = field(init=False)
    _events: list[tuple] = field(default_factory=list, init=False)
    _seq: int = field(default=0, init=False)
    _bandwidth_in_use: int = field(default=0, init=False)
    _now: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ExecutionError("simulator needs at least one machine")
        if self.repartition_bandwidth is not None and self.repartition_bandwidth < 1:
            raise ExecutionError("repartition_bandwidth must be at least 1 (or None)")
        self._queues = [[] for _ in range(self.num_machines)]
        self._busy_until = [None] * self.num_machines
        self._busy_intervals = [[] for _ in range(self.num_machines)]

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self, schedule: TaskSchedule, arrival: float = 0.0, label: str = "job"
    ) -> JobStats:
        """Register ``schedule`` as a job arriving at ``arrival``.

        May be called before :meth:`run` or from an ``on_job_complete``
        callback while the simulation is running (arrival must then not lie
        in the past).
        """
        if schedule.num_machines > self.num_machines:
            raise ExecutionError(
                f"schedule targets {schedule.num_machines} machines, "
                f"simulator has {self.num_machines}"
            )
        arrival = max(arrival, self._now)
        tasks = schedule.tasks
        job = JobStats(
            job_id=len(self.jobs), label=label, arrival=arrival, tasks_total=len(tasks)
        )
        self.jobs.append(job)
        self._push(arrival, _ARRIVAL, (job, schedule))
        return job

    # ------------------------------------------------------------------ #
    # The event loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimReport:
        """Play every submitted job to completion and report the outcome."""
        while self._events:
            time, _seq, kind, payload = heapq.heappop(self._events)
            self._now = time
            if kind == _ARRIVAL:
                self._arrive(*payload)
            else:
                self._finish(payload)
            self._dispatch_idle_machines()
        pending = sum(len(queue) for queue in self._queues)
        if pending:
            raise ExecutionError(
                f"simulation deadlocked with {pending} tasks still queued"
            )
        finished_at = max((job.finished or 0.0) for job in self.jobs) if self.jobs else 0.0
        busy = [
            sum(end - start for start, end in intervals)
            for intervals in self._busy_intervals
        ]
        return SimReport(
            finished_at=finished_at,
            jobs=list(self.jobs),
            machine_busy_seconds=busy,
            busy_intervals=[list(intervals) for intervals in self._busy_intervals],
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    def _arrive(self, job: JobStats, schedule: TaskSchedule) -> None:
        """Materialise a job's tasks into the machine queues."""
        tasks = schedule.tasks
        dependencies = task_dependencies(tasks)
        placement = {
            task.task_id: machine_id
            for machine_id, placed in schedule.assignments.items()
            for task in placed
        }
        sim_tasks: dict[int, _SimTask] = {}
        for task in tasks:
            sim_tasks[task.task_id] = _SimTask(
                job=job,
                task=task,
                machine_id=placement[task.task_id],
                seconds=task.cost_units * self.seconds_per_block,
                deps_remaining=len(dependencies[task.task_id]),
                ready_time=self._now,
            )
        for task_id, deps in dependencies.items():
            for dep in sorted(deps):
                sim_tasks[dep].dependents.append(sim_tasks[task_id])
        # Queue in the engine's deterministic execution order: stage, then
        # compilation order (schedule.tasks is already sorted that way).
        for task in tasks:
            sim_task = sim_tasks[task.task_id]
            self._queues[sim_task.machine_id].append(sim_task)
        if not tasks:  # an empty schedule completes instantly
            job.started = self._now
            job.finished = self._now
            self.event_log.append((self._now, job.job_id, None, None, "empty"))
            if self.on_job_complete is not None:
                self.on_job_complete(job, self._now)

    def _finish(self, sim_task: _SimTask) -> None:
        """Complete a running task: free resources, open barriers."""
        machine_id = sim_task.machine_id
        self._busy_intervals[machine_id].append((sim_task.started, self._now))
        self._busy_until[machine_id] = None
        if sim_task.needs_bandwidth and self.repartition_bandwidth is not None:
            self._bandwidth_in_use -= 1
        job = sim_task.job
        job.tasks_done += 1
        self.event_log.append(
            (self._now, job.job_id, sim_task.task.task_id, machine_id, "finish")
        )
        for dependent in sim_task.dependents:
            dependent.deps_remaining -= 1
            if dependent.deps_remaining == 0:
                dependent.ready_time = self._now
        if job.tasks_done == job.tasks_total:
            job.finished = self._now
            if self.on_job_complete is not None:
                self.on_job_complete(job, self._now)

    def _dispatch_idle_machines(self) -> None:
        """Give every idle machine the first ready task in its queue."""
        for machine_id in range(self.num_machines):
            if self._busy_until[machine_id] is not None:
                continue
            queue = self._queues[machine_id]
            chosen = None
            for index, sim_task in enumerate(queue):
                if sim_task.deps_remaining > 0:
                    continue
                if (
                    sim_task.needs_bandwidth
                    and self.repartition_bandwidth is not None
                    and self._bandwidth_in_use >= self.repartition_bandwidth
                ):
                    continue
                chosen = index
                break
            if chosen is None:
                continue
            sim_task = queue.pop(chosen)
            if sim_task.needs_bandwidth and self.repartition_bandwidth is not None:
                self._bandwidth_in_use += 1
            sim_task.started = self._now
            job = sim_task.job
            if job.started is None:
                job.started = self._now
            job.queueing_seconds += self._now - max(sim_task.ready_time, job.arrival)
            self._busy_until[machine_id] = self._now + sim_task.seconds
            self.event_log.append(
                (self._now, job.job_id, sim_task.task.task_id, machine_id, "start")
            )
            self._push(self._now + sim_task.seconds, _FINISH, sim_task)
