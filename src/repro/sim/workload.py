"""Concurrent-query workload driver on top of the cluster simulator.

The paper's runtime claims come from a cluster serving *streams* of queries
while repartitioning competes for I/O — the serial and makespan models can
only score one query at a time.  This driver admits multiple **closed-loop
clients**: each client submits a query, waits for its simulated completion,
thinks for a seeded exponential pause, and submits its next query; an
optional background repartitioning stream occupies machines and the bounded
repartitioning bandwidth for the whole run.

Planning and scheduling go through the session (so adaptation, the plan
cache and the locality-aware scheduler all apply); the simulator then
interleaves every job's tasks on the shared virtual machines.  Plans are
produced in a fixed round-robin client order *before* the simulation, so
the partition state a query is planned at does not depend on simulated
timing — given a seed, the whole run (plans, arrival order, every event) is
reproducible bit for bit.

Reported per run: per-query latency percentiles, mean/max queueing delay,
machine utilisation (overall and as a binned timeline), and the completion
time of the whole workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..common.errors import ExecutionError
from ..common.query import Query
from ..common.rng import derive_rng, make_rng
from ..exec.scheduler import Scheduler, compile_plan
from ..exec.tasks import Task, TaskKind, TaskSchedule
from .simulator import ClusterSimulator


@dataclass
class QueryTiming:
    """Simulated timing of one client query."""

    client: int
    index: int
    arrival: float
    finished: float
    latency: float
    queueing_seconds: float
    tasks: int


@dataclass
class WorkloadReport:
    """Outcome of one concurrent-workload simulation."""

    queries: list[QueryTiming]
    finished_at: float
    machine_busy_seconds: list[float]
    utilisation_bins: list[float]
    background_jobs: int = 0
    background_finished_at: float = 0.0

    @property
    def latencies(self) -> list[float]:
        """Per-query latencies in submission-completion order."""
        return [timing.latency for timing in self.queries]

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` (0-100) over every client query."""
        if not self.queries:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def percentiles(self) -> dict[str, float]:
        """The standard latency percentiles (p50/p90/p95/p99) plus mean/max."""
        latencies = self.latencies
        if not latencies:
            return {"p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0,
                    "mean": 0.0, "max": 0.0}
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "mean": float(np.mean(latencies)),
            "max": float(np.max(latencies)),
        }

    @property
    def mean_queueing_seconds(self) -> float:
        """Mean summed task-queueing delay per query."""
        if not self.queries:
            return 0.0
        return float(np.mean([timing.queueing_seconds for timing in self.queries]))

    def utilisation(self) -> list[float]:
        """Busy fraction per machine over the whole run."""
        if self.finished_at <= 0.0:
            return [0.0] * len(self.machine_busy_seconds)
        return [busy / self.finished_at for busy in self.machine_busy_seconds]

    def summary(self) -> dict:
        """JSON-able digest: percentiles, queueing, utilisation, completion."""
        percentiles = {key: round(value, 9) for key, value in self.percentiles().items()}
        utilisation = self.utilisation()
        return {
            "queries": len(self.queries),
            "finished_at": round(self.finished_at, 9),
            "latency": percentiles,
            "mean_queueing_seconds": round(self.mean_queueing_seconds, 9),
            "mean_utilisation": round(float(np.mean(utilisation)), 9)
            if utilisation else 0.0,
            "background_jobs": self.background_jobs,
        }

    def fingerprint(self) -> tuple:
        """Stable digest for run-to-run determinism checks."""
        return (
            round(self.finished_at, 9),
            tuple(
                (t.client, t.index, round(t.arrival, 9), round(t.finished, 9))
                for t in self.queries
            ),
            tuple(round(busy, 9) for busy in self.machine_busy_seconds),
        )


def background_repartition_schedule(
    num_machines: int,
    blocks: int,
    cost_model,
    chunk_blocks: int = 8,
    task_id_base: int = 0,
) -> TaskSchedule:
    """A schedule of repartition tasks rewriting ``blocks`` blocks.

    The blocks are spread round-robin over the machines in chunks of
    ``chunk_blocks`` (smaller chunks interleave more finely with query
    tasks); each task carries the cost model's repartition cost for its
    chunk and contends for the simulator's repartitioning bandwidth.
    """
    if blocks <= 0:
        return TaskSchedule(num_machines=num_machines, assignments={})
    assignments: dict[int, list[Task]] = {m: [] for m in range(num_machines)}
    task_id = task_id_base
    remaining = blocks
    machine = 0
    while remaining > 0:
        chunk = min(chunk_blocks, remaining)
        assignments[machine].append(
            Task(
                task_id=task_id,
                kind=TaskKind.REPARTITION,
                cost_units=cost_model.repartition_cost(chunk),
            )
        )
        task_id += 1
        remaining -= chunk
        machine = (machine + 1) % num_machines
    return TaskSchedule(num_machines=num_machines, assignments=assignments)


def run_concurrent_workload(
    session,
    client_queries: Sequence[Sequence[Query]],
    *,
    think_seconds: float = 0.0,
    arrival_stagger_seconds: float | None = None,
    seed: int = 0,
    adapt: bool = False,
    background_repartition_blocks: int = 0,
    background_chunk_blocks: int = 8,
    repartition_bandwidth: int | None = None,
) -> WorkloadReport:
    """Simulate closed-loop clients running their query lists concurrently.

    Args:
        session: A :class:`repro.api.Session` with tables loaded.  Plans go
            through the session (adaptation + plan cache apply); scheduling
            always uses the task scheduler regardless of the session's
            execution backend.
        client_queries: One query list per client; client ``c`` submits its
            queries in order, waiting for each to complete (plus think time)
            before the next.
        think_seconds: Mean of the seeded exponential think-time between a
            query's completion and the client's next submission (0 disables
            thinking — clients resubmit immediately).
        arrival_stagger_seconds: Upper bound of the seeded uniform offset of
            every client's *first* submission; defaults to ``think_seconds``.
        seed: Seed for arrival offsets and think times (plans are already
            deterministic through the session's own seed).
        adapt: Whether planning runs the adaptive repartitioner per query.
        background_repartition_blocks: If positive, a background stream
            rewriting this many blocks is submitted at time 0 and contends
            with query tasks for machines and repartitioning bandwidth.
        background_chunk_blocks: Blocks per background repartition task.
        repartition_bandwidth: Cluster-wide cap on concurrently running
            repartition tasks; defaults to the session config's
            ``sim_repartition_bandwidth``.

    Returns:
        A :class:`WorkloadReport` (deterministic given session state + seed).
    """
    if not client_queries or not any(len(queries) for queries in client_queries):
        raise ExecutionError("run_concurrent_workload needs at least one query")

    # Stage 1: plan and schedule every query in a fixed round-robin order so
    # partition state (and therefore every plan) is independent of simulated
    # timing.  Lowering goes through the session, so queries sharing a
    # template reuse both the logical entry and the compiled task schedule
    # from the epoch-keyed plan cache; only when the session's backend
    # elides lowering (the serial model) is the schedule compiled directly.
    schedules: list[list[TaskSchedule]] = [[] for _ in client_queries]
    scheduler = Scheduler(session.cluster.num_machines)
    rounds = max(len(queries) for queries in client_queries)
    for round_index in range(rounds):
        for client, queries in enumerate(client_queries):
            if round_index >= len(queries):
                continue
            physical = session.lower(session.plan(queries[round_index], adapt=adapt))
            if physical.schedule_elided:
                compiled = compile_plan(
                    physical.logical, session.catalog, session.cluster, session.config
                )
                schedules[client].append(scheduler.schedule(compiled.tasks))
            else:
                schedules[client].append(physical.schedule)

    # Stage 2: seeded arrival offsets and think times, pre-drawn per client
    # so the draw order never depends on simulated completion order.
    root = make_rng(seed)
    stagger = think_seconds if arrival_stagger_seconds is None else arrival_stagger_seconds
    first_arrival: list[float] = []
    thinks: list[list[float]] = []
    for client, queries in enumerate(client_queries):
        rng = derive_rng(root, f"client:{client}")
        first_arrival.append(float(rng.uniform(0.0, stagger)) if stagger > 0 else 0.0)
        thinks.append(
            [
                float(rng.exponential(think_seconds)) if think_seconds > 0 else 0.0
                for _ in range(len(queries))
            ]
        )

    # Stage 3: closed-loop simulation.  Each job completion submits the
    # owning client's next query after its think pause.
    if repartition_bandwidth is None:
        repartition_bandwidth = session.config.sim_repartition_bandwidth
    simulator = ClusterSimulator(
        num_machines=session.cluster.num_machines,
        seconds_per_block=session.cluster.cost_model.seconds_per_block,
        repartition_bandwidth=repartition_bandwidth,
    )
    job_owner: dict[int, tuple[int, int]] = {}

    def submit(client: int, index: int, arrival: float) -> None:
        job = simulator.submit(
            schedules[client][index], arrival=arrival, label=f"client{client}"
        )
        job_owner[job.job_id] = (client, index)

    def on_complete(job, finish_time: float) -> None:
        owner = job_owner.get(job.job_id)
        if owner is None:  # background repartitioning stream
            return
        client, index = owner
        if index + 1 < len(schedules[client]):
            submit(client, index + 1, finish_time + thinks[client][index])

    simulator.on_job_complete = on_complete

    background_jobs = 0
    if background_repartition_blocks > 0:
        background = background_repartition_schedule(
            session.cluster.num_machines,
            background_repartition_blocks,
            session.cluster.cost_model,
            chunk_blocks=background_chunk_blocks,
        )
        simulator.submit(background, arrival=0.0, label="repartition")
        background_jobs = 1
    for client in range(len(client_queries)):
        if schedules[client]:
            submit(client, 0, first_arrival[client])

    report = simulator.run()

    timings = []
    background_finished = 0.0
    for job in report.jobs:
        owner = job_owner.get(job.job_id)
        if owner is None:
            background_finished = max(background_finished, job.finished or 0.0)
            continue
        client, index = owner
        timings.append(
            QueryTiming(
                client=client,
                index=index,
                arrival=job.arrival,
                finished=job.finished or 0.0,
                latency=job.latency,
                queueing_seconds=job.queueing_seconds,
                tasks=job.tasks_total,
            )
        )
    timings.sort(key=lambda timing: (timing.client, timing.index))
    return WorkloadReport(
        queries=timings,
        finished_at=report.finished_at,
        machine_busy_seconds=report.machine_busy_seconds,
        utilisation_bins=report.utilisation_timeline(bins=20),
        background_jobs=background_jobs,
        background_finished_at=background_finished,
    )
