"""The simulated execution backend (``runtime_model="simulated"``).

:class:`SimBackend` runs a physical plan twice, in two senses:

* the **task engine** executes it for real (row-level answers, serial cost,
  makespan accounting) — exactly what :class:`~repro.api.backends.TaskBackend`
  does, so answers and fingerprints are identical across the two backends;
* the **cluster simulator** then plays the same schedule out event by event,
  honouring stage barriers (shuffle reduces wait for their producing maps)
  and the bounded repartitioning bandwidth, and stamps the result with
  simulated timing: ``sim_seconds`` (completion time), per-machine busy
  seconds, and the summed task queueing delay.

On a single query the gap between ``sim_seconds`` and ``makespan_seconds``
is exactly the barrier-induced idle time: the makespan model assumes every
machine can run its assigned load back to back, the simulator charges the
stalls where a reduce waits on maps finishing elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import Cluster
from ..core.config import AdaptDBConfig
from ..exec.engine import Executor
from ..exec.result import QueryResult
from ..exec.scheduler import Scheduler, compile_plan
from ..exec.tasks import TaskSchedule
from ..storage.catalog import Catalog
from .simulator import ClusterSimulator, SimReport


@dataclass
class SimBackend:
    """Discrete-event simulated execution behind the backend protocol."""

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig
    name: str = "simulated"
    #: Replays the lowered task schedule, like the task backend.
    consumes_schedule = True
    executor: Executor = field(init=False)

    def __post_init__(self) -> None:
        self.executor = Executor(
            catalog=self.catalog, cluster=self.cluster, config=self.config
        )

    def simulate_schedule(self, schedule: TaskSchedule) -> SimReport:
        """Play one schedule on a fresh simulator (single-query, no contention)."""
        simulator = ClusterSimulator(
            num_machines=self.cluster.num_machines,
            seconds_per_block=self.cluster.cost_model.seconds_per_block,
            repartition_bandwidth=self.config.sim_repartition_bandwidth,
        )
        simulator.submit(schedule, arrival=0.0, label="query")
        return simulator.run()

    def execute(self, physical) -> QueryResult:
        """Execute through the task engine, then simulate the schedule's timing."""
        if physical.schedule_elided:
            # The plan was lowered for a schedule-free backend (e.g. the
            # session's backend was switched afterwards): compile fresh.
            compiled = compile_plan(
                physical.logical, self.catalog, self.cluster, self.config
            )
            schedule = Scheduler(self.cluster.num_machines).schedule(compiled.tasks)
        else:
            compiled, schedule = physical.compiled, physical.schedule
        result = self.executor.execute_schedule(physical.logical, compiled, schedule)
        report = self.simulate_schedule(schedule)
        result.sim_seconds = report.finished_at
        result.sim_queueing_seconds = (
            report.jobs[0].queueing_seconds if report.jobs else 0.0
        )
        result.sim_machine_busy_seconds = report.machine_busy_seconds
        return result
