"""``repro.sim`` — discrete-event cluster simulation.

The third execution model of the reproduction.  Where the serial model sums
block accesses and the makespan model takes the most-loaded machine, this
package *plays schedules out* on virtual machines:

* ``repro.sim.simulator`` — the deterministic discrete-event core:
  per-machine FIFO task queues, shuffle stage barriers, and a bounded
  repartitioning-bandwidth resource (:class:`ClusterSimulator`);
* ``repro.sim.backend``   — :class:`SimBackend`, the
  ``runtime_model="simulated"`` execution backend selectable through
  :class:`repro.api.Session`;
* ``repro.sim.workload``  — closed-loop concurrent-query driver
  (:func:`run_concurrent_workload`) reporting latency percentiles,
  queueing delay and machine utilisation under contention.
"""

from .backend import SimBackend
from .simulator import ClusterSimulator, JobStats, SimReport, task_dependencies
from .workload import (
    QueryTiming,
    WorkloadReport,
    background_repartition_schedule,
    run_concurrent_workload,
)

__all__ = [
    "ClusterSimulator",
    "JobStats",
    "QueryTiming",
    "SimBackend",
    "SimReport",
    "WorkloadReport",
    "background_repartition_schedule",
    "run_concurrent_workload",
    "task_dependencies",
]
