"""Deterministic random-number utilities.

Every stochastic choice in the library (data generation, block placement,
random block selection during smooth repartitioning, workload parameter
randomization) flows through a :class:`numpy.random.Generator` created here,
so experiments are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20170101


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a new random generator.

    Args:
        seed: Seed value.  ``None`` uses :data:`DEFAULT_SEED` (the library is
            deterministic by default; pass an explicit seed for variation).

    Returns:
        A seeded :class:`numpy.random.Generator`.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a string key.

    The derivation hashes the key together with fresh entropy drawn from the
    parent, so two children with different keys are independent while the
    overall stream remains a pure function of the original seed.
    """
    salt = int(rng.integers(0, 2**32))
    digest = hashlib.sha256(f"{salt}:{key}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def spawn_rngs(rng: np.random.Generator, keys: list[str]) -> dict[str, np.random.Generator]:
    """Derive one child generator per key, in key order."""
    return {key: derive_rng(rng, key) for key in keys}
