"""Runtime sanitizer: dynamic enforcement of the statically-checked contracts.

``REPRO_SANITIZE=1`` (or :func:`set_sanitize`) turns on cheap runtime
cross-checks of the invariants ``repro.analysis`` proves statically, so
one CI job runs the whole tier-1 suite with the contracts *enforced*
rather than merely audited:

* Worker-side shared-memory views become **actually** read-only —
  :func:`freeze_attached` flips ``writeable=False`` on every attached
  array, so a worker write the static checker missed raises
  ``ValueError`` at the write site instead of corrupting parent blocks.
* Every ``bump_epoch(delta)`` cross-checks the *previous* bump's
  descriptor against the partition-state changes actually observed since
  (:class:`PartitionStateSnapshot`) — an under-described delta raises
  :class:`SanitizeError` naming the missing ids, the dynamic twin of the
  ``delta-completeness`` rule.
* Cache-serve paths assert their container copies do not alias the
  cached entry (:func:`assert_unaliased`, :func:`assert_no_shared_memory`)
  so a caller mutating a served plan can never poison the cache.

All checks are no-ops when the sanitizer is off; the hooks cost one
predicate call on hot paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .epochs import PartitionDelta
from .errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..storage.table import StoredTable

ENV_VAR = "REPRO_SANITIZE"

_override: bool | None = None


class SanitizeError(ReproError):
    """A runtime contract check failed under ``REPRO_SANITIZE=1``."""


def sanitize_enabled() -> bool:
    """Whether sanitizer checks are active (env var or explicit override)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def set_sanitize(enabled: bool | None) -> None:
    """Force the sanitizer on/off (tests); ``None`` defers to the env var."""
    global _override
    _override = enabled


def freeze_attached(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Make attached shared-memory views read-only under the sanitizer."""
    if sanitize_enabled():
        for array in columns.values():
            array.setflags(write=False)
    return columns


def assert_unaliased(served: object, cached: object, what: str) -> None:
    """Assert a served container is a copy of (not the same object as) the cached one.

    Recurses one level into dict values so ``{table: [ids]}`` copies are
    checked per key.  Element objects may be shared — only the mutable
    containers themselves must be fresh.
    """
    if not sanitize_enabled():
        return
    _assert_unaliased(served, cached, what)


def _assert_unaliased(served: object, cached: object, what: str) -> None:
    if not isinstance(cached, (list, dict, set)):
        return
    if served is cached:
        raise SanitizeError(
            f"{what}: served container aliases the cached entry; a caller "
            "mutating the served plan would poison the cache"
        )
    if isinstance(cached, dict) and isinstance(served, dict):
        for key, value in cached.items():
            if key in served:
                _assert_unaliased(served[key], value, f"{what}[{key!r}]")


def assert_no_shared_memory(
    fresh: np.ndarray, cached: np.ndarray, what: str
) -> None:
    """Assert a patched array does not share storage with the cached one."""
    if not sanitize_enabled():
        return
    if np.shares_memory(fresh, cached):
        raise SanitizeError(
            f"{what}: patched array shares memory with the cached entry; "
            "in-place patching would corrupt it"
        )


@dataclass
class PartitionStateSnapshot:
    """Observable partition state at one bump, plus that bump's descriptor.

    Captured by ``StoredTable.bump_epoch`` when the sanitizer is on;
    verified at the *next* bump (the bump-before-mutate discipline means a
    descriptor is complete only once its mutation finished, which is
    guaranteed by the time any later bump runs).
    """

    block_rows: dict[int, int]
    tree_ids: frozenset[int]
    delta: PartitionDelta

    @classmethod
    def capture(
        cls, table: "StoredTable", delta: PartitionDelta
    ) -> "PartitionStateSnapshot":
        return cls(
            block_rows=dict(table._block_rows),
            tree_ids=frozenset(table.trees),
            delta=delta,
        )

    def verify(
        self, table: "StoredTable", incoming: PartitionDelta | None = None
    ) -> None:
        """Raise :class:`SanitizeError` if observed changes exceed the descriptor.

        ``incoming`` is the descriptor of the bump triggering this check.
        A *full* incoming descriptor skips verification: full-change paths
        (initial load, full repartitioning) legitimately mutate state just
        before their own bump, and the blanket descriptor covers those
        mutations for every chain consumer.
        """
        if self.delta.full or (incoming is not None and incoming.full):
            return
        described_blocks = self.delta.blocks_changed | self.delta.blocks_dropped
        missing: list[str] = []
        observed_rows = table._block_rows
        for block_id, rows in observed_rows.items():
            if (
                self.block_rows.get(block_id) != rows
                and block_id not in described_blocks
            ):
                missing.append(f"block {block_id} rows changed")
        for block_id in self.block_rows:
            if block_id not in observed_rows and block_id not in described_blocks:
                missing.append(f"block {block_id} removed")
        observed_trees = frozenset(table.trees)
        for tree_id in sorted(observed_trees - self.tree_ids):
            if tree_id not in self.delta.trees_added:
                missing.append(f"tree {tree_id} added")
        for tree_id in sorted(self.tree_ids - observed_trees):
            if tree_id not in self.delta.trees_dropped:
                missing.append(f"tree {tree_id} removed")
        if missing:
            raise SanitizeError(
                f"table {table.name!r}: the last PartitionDelta "
                "under-describes the mutation that followed it: "
                + "; ".join(sorted(missing))
            )


__all__ = [
    "ENV_VAR",
    "PartitionStateSnapshot",
    "SanitizeError",
    "assert_no_shared_memory",
    "assert_unaliased",
    "freeze_attached",
    "sanitize_enabled",
    "set_sanitize",
]
