"""Markers that make the epoch/caching contract machine-checkable.

The plan cache and the hyper-plan memo are sound only because every
partition-state mutation bumps the owning table's epoch.  That contract
used to live in docstrings; this module turns it into two lightweight
decorators that ``repro.analysis`` (and code reviewers) can key off:

``@mutates_partition_state``
    Marks a helper method that writes partition state on behalf of its
    callers.  The helper itself is exempt from the bump-on-every-path
    rule, but every *call site* of a marked method counts as a mutation
    and must therefore reach ``bump_epoch()``.

``@epoch_keyed(reads=(...))``
    Marks a function whose result is cached under an epoch-derived key.
    ``reads`` declares which mutable table/tree attributes the function
    is allowed to touch — anything it reads must either be immutable or
    covered by the epoch in its cache key.  The static checker rejects
    reads outside the declared set.

Both decorators only attach attributes; they add no call overhead and
import nothing from the rest of the package.

Since the incremental plan-state maintenance work, a bump additionally
carries a **change descriptor** (:class:`PartitionDelta`): which blocks
were rewritten or dropped and which trees were re-split, added or
removed.  Descriptors are recorded in a bounded per-table delta chain
(:meth:`repro.storage.table.StoredTable.delta_between`), which is what
lets the planning layers *patch* cached overlap matrices, groupings and
compiled schedules across epoch bumps instead of recomputing them.  The
``epoch-descriptor`` static rule rejects any ``bump_epoch()`` call that
does not pass one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: Attribute set on functions wrapped by :func:`mutates_partition_state`.
MUTATOR_ATTR = "__repro_mutates_partition_state__"

#: Attribute set on functions wrapped by :func:`epoch_keyed`.
EPOCH_KEYED_ATTR = "__repro_epoch_keyed_reads__"


def mutates_partition_state(func: F) -> F:
    """Mark ``func`` as a partition-state mutator.

    Call sites of the decorated method are treated as mutations by the
    epoch-discipline checker: the calling method must bump the table
    epoch on every path (or be a marked mutator itself).
    """
    setattr(func, MUTATOR_ATTR, True)
    return func


def epoch_keyed(*, reads: tuple[str, ...] = ()) -> Callable[[F], F]:
    """Mark ``func`` as cached under an epoch-derived key.

    Args:
        reads: Mutable table/tree attribute names the function's cache
            key covers (because the key embeds the owning table's epoch,
            which is bumped whenever those attributes change).  Reads of
            mutable attributes outside this set are cache-key violations.
    """

    def decorate(func: F) -> F:
        setattr(func, EPOCH_KEYED_ATTR, tuple(reads))
        return func

    return decorate


def is_partition_mutator(func: object) -> bool:
    """Whether ``func`` was marked with :func:`mutates_partition_state`."""
    return bool(getattr(func, MUTATOR_ATTR, False))


def epoch_keyed_reads(func: object) -> tuple[str, ...] | None:
    """The declared ``reads`` of an epoch-keyed function, or ``None``."""
    reads = getattr(func, EPOCH_KEYED_ATTR, None)
    if reads is None:
        return None
    return tuple(reads)


@dataclass
class PartitionDelta:
    """Change descriptor for one (or a merged run of) epoch bump(s).

    Every ``bump_epoch(delta)`` call records one of these in the owning
    table's bounded delta chain.  The descriptor is deliberately *mutable*:
    the epoch-discipline checker requires the bump to precede the mutation,
    so the mutating method registers the descriptor first and fills in the
    affected ids as the mutation proceeds — by the time any planning layer
    reads the chain (always after the mutation returned), the descriptor is
    complete.

    Attributes:
        blocks_changed: Block ids whose *contents* (rows, and therefore
            ranges and emptiness) changed — appended to, cleared, or
            rewritten by a re-split.
        blocks_dropped: Block ids deleted from the table.
        trees_resplit: Tree ids whose internal split nodes changed
            (Amoeba transforms) — lookups over these trees may differ, but
            the tree *set* (and join-attribute classification) is intact.
        trees_added: Tree ids newly registered with the table.
        trees_dropped: Tree ids removed from the table.
        full: Blanket change — everything may differ (initial load, full
            repartitioning).  Consumers must fall back to a recompute.
    """

    blocks_changed: set[int] = field(default_factory=set)
    blocks_dropped: set[int] = field(default_factory=set)
    trees_resplit: set[int] = field(default_factory=set)
    trees_added: set[int] = field(default_factory=set)
    trees_dropped: set[int] = field(default_factory=set)
    full: bool = False

    @classmethod
    def full_change(cls) -> "PartitionDelta":
        """A blanket descriptor: cached state must be rebuilt from scratch."""
        return cls(full=True)

    @classmethod
    def merged(cls, deltas: Iterable["PartitionDelta"]) -> "PartitionDelta":
        """Combine a chain of descriptors into one (never mutates inputs)."""
        result = cls()
        for delta in deltas:
            if delta.full:
                return cls.full_change()
            result.blocks_changed |= delta.blocks_changed
            result.blocks_dropped |= delta.blocks_dropped
            result.trees_resplit |= delta.trees_resplit
            result.trees_added |= delta.trees_added
            result.trees_dropped |= delta.trees_dropped
        return result

    @property
    def touched_blocks(self) -> set[int]:
        """Blocks whose cached per-block state (rows, ranges) is stale."""
        return self.blocks_changed | self.blocks_dropped

    def preserves_tree_set(self) -> bool:
        """Whether the table's tree set (and join classification) survived.

        Re-splits inside existing trees are fine — they change lookups, not
        which trees exist or their join attributes; adding or dropping a
        tree can flip the optimizer's structural join classification.
        """
        return not self.full and not self.trees_added and not self.trees_dropped
