"""Markers that make the epoch/caching contract machine-checkable.

The plan cache and the hyper-plan memo are sound only because every
partition-state mutation bumps the owning table's epoch.  That contract
used to live in docstrings; this module turns it into two lightweight
decorators that ``repro.analysis`` (and code reviewers) can key off:

``@mutates_partition_state``
    Marks a helper method that writes partition state on behalf of its
    callers.  The helper itself is exempt from the bump-on-every-path
    rule, but every *call site* of a marked method counts as a mutation
    and must therefore reach ``bump_epoch()``.

``@epoch_keyed(reads=(...))``
    Marks a function whose result is cached under an epoch-derived key.
    ``reads`` declares which mutable table/tree attributes the function
    is allowed to touch — anything it reads must either be immutable or
    covered by the epoch in its cache key.  The static checker rejects
    reads outside the declared set.

Both decorators only attach attributes; they add no call overhead and
import nothing from the rest of the package.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: Attribute set on functions wrapped by :func:`mutates_partition_state`.
MUTATOR_ATTR = "__repro_mutates_partition_state__"

#: Attribute set on functions wrapped by :func:`epoch_keyed`.
EPOCH_KEYED_ATTR = "__repro_epoch_keyed_reads__"


def mutates_partition_state(func: F) -> F:
    """Mark ``func`` as a partition-state mutator.

    Call sites of the decorated method are treated as mutations by the
    epoch-discipline checker: the calling method must bump the table
    epoch on every path (or be a marked mutator itself).
    """
    setattr(func, MUTATOR_ATTR, True)
    return func


def epoch_keyed(*, reads: tuple[str, ...] = ()) -> Callable[[F], F]:
    """Mark ``func`` as cached under an epoch-derived key.

    Args:
        reads: Mutable table/tree attribute names the function's cache
            key covers (because the key embeds the owning table's epoch,
            which is bumped whenever those attributes change).  Reads of
            mutable attributes outside this set are cache-key violations.
    """

    def decorate(func: F) -> F:
        setattr(func, EPOCH_KEYED_ATTR, tuple(reads))
        return func

    return decorate


def is_partition_mutator(func: object) -> bool:
    """Whether ``func`` was marked with :func:`mutates_partition_state`."""
    return bool(getattr(func, MUTATOR_ATTR, False))


def epoch_keyed_reads(func: object) -> tuple[str, ...] | None:
    """The declared ``reads`` of an epoch-keyed function, or ``None``."""
    reads = getattr(func, EPOCH_KEYED_ATTR, None)
    if reads is None:
        return None
    return tuple(reads)
