"""Table schemas and typed columns.

AdaptDB is a table-oriented relational storage manager.  A :class:`Schema`
describes the columns of a table; individual blocks store one numpy array per
column.  Dates are represented as integer day offsets and categorical string
columns as small integer codes — the partitioning and join machinery only
needs an ordered domain, never the string representation itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np
from numpy.typing import NDArray

from .errors import SchemaError


class DataType(Enum):
    """Column data types supported by the storage engine."""

    INT = "int"
    FLOAT = "float"
    DATE = "date"       # stored as int32 day offsets
    CATEGORY = "category"  # stored as int32 dictionary codes

    @property
    def numpy_dtype(self) -> np.dtype[Any]:
        """The numpy dtype used to store values of this type."""
        if self is DataType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(np.int64)


@dataclass(frozen=True)
class Column:
    """A single named, typed column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass
class Schema:
    """An ordered collection of columns forming a table schema."""

    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._by_name = {column.name: column for column in self.columns}

    @classmethod
    def of(cls, *specs: tuple[str, DataType]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls([Column(name, dtype) for name, dtype in specs])

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        """Return the column named ``name``.

        Raises:
            SchemaError: if the column does not exist.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.column_names}") from None

    def dtype_of(self, name: str) -> DataType:
        """Return the :class:`DataType` of the column named ``name``."""
        return self.column(name).dtype

    def validate_columns(self, columns: dict[str, NDArray[Any]]) -> None:
        """Check that ``columns`` matches this schema exactly.

        All arrays must be present, one-dimensional and of equal length.

        Raises:
            SchemaError: on any mismatch.
        """
        missing = set(self.column_names) - set(columns)
        extra = set(columns) - set(self.column_names)
        if missing or extra:
            raise SchemaError(f"column mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        lengths = {name: len(array) for name, array in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"columns have differing lengths: {lengths}")
        for name, array in columns.items():
            if np.ndim(array) != 1:
                raise SchemaError(f"column {name!r} must be one-dimensional")
