"""Exception hierarchy for the AdaptDB reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A column, type, or table definition is inconsistent."""


class StorageError(ReproError):
    """A block or table could not be located or stored."""


class PartitioningError(ReproError):
    """A partitioning tree is malformed or cannot be constructed."""


class PlanningError(ReproError):
    """The optimizer or planner received an unsupported query."""


class ExecutionError(ReproError):
    """The executor failed while running a plan."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""
