"""Shared value types: schemas, predicates, queries, errors, RNG helpers."""

from .clock import monotonic_seconds
from .errors import (
    ExecutionError,
    PartitioningError,
    PlanningError,
    ReproError,
    SchemaError,
    StorageError,
    WorkloadError,
)
from .predicates import (
    Operator,
    Predicate,
    between,
    block_may_match,
    eq,
    ge,
    gt,
    isin,
    le,
    lt,
    rows_matching,
)
from .query import JoinClause, Query, join_query, scan_query
from .rng import DEFAULT_SEED, derive_rng, make_rng, spawn_rngs
from .sanitize import SanitizeError, sanitize_enabled, set_sanitize
from .schema import Column, DataType, Schema

__all__ = [
    "Column",
    "DataType",
    "DEFAULT_SEED",
    "ExecutionError",
    "JoinClause",
    "Operator",
    "PartitioningError",
    "PlanningError",
    "Predicate",
    "Query",
    "ReproError",
    "SanitizeError",
    "Schema",
    "SchemaError",
    "StorageError",
    "WorkloadError",
    "between",
    "block_may_match",
    "derive_rng",
    "eq",
    "ge",
    "gt",
    "isin",
    "join_query",
    "le",
    "lt",
    "make_rng",
    "monotonic_seconds",
    "rows_matching",
    "sanitize_enabled",
    "scan_query",
    "set_sanitize",
    "spawn_rngs",
]
