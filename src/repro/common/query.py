"""Query descriptions.

AdaptDB's storage manager sees queries as *access descriptors*: which tables
are read, which selection predicates apply to each table, and which equi-join
clauses connect them.  Aggregations and projections run on top of the
returned rows (in the paper, as Spark RDD operations) and do not influence
partitioning decisions, so they are represented only as an optional label.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .errors import PlanningError
from .predicates import Predicate

_query_counter = itertools.count(1)


@dataclass(frozen=True)
class JoinClause:
    """An equi-join between two tables.

    Attributes:
        left_table / right_table: Names of the joined tables.
        left_column / right_column: Join columns on each side.
    """

    left_table: str
    right_table: str
    left_column: str
    right_column: str

    def involves(self, table: str) -> bool:
        """Return whether ``table`` participates in this join."""
        return table in (self.left_table, self.right_table)

    def column_for(self, table: str) -> str:
        """Return the join column of ``table`` in this clause."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise PlanningError(f"table {table!r} does not participate in join {self}")

    def other_table(self, table: str) -> str:
        """Return the table joined with ``table``."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise PlanningError(f"table {table!r} does not participate in join {self}")

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


@dataclass
class Query:
    """A query against the AdaptDB storage manager.

    Attributes:
        tables: Tables read by the query, in join order.
        predicates: Selection predicates per table (tables may be absent).
        joins: Equi-join clauses, in execution order.
        template: Optional label of the workload template that produced the
            query (e.g. ``"q14"``), used for reporting.
        query_id: Monotonically increasing identifier.
    """

    tables: list[str]
    predicates: dict[str, list[Predicate]] = field(default_factory=dict)
    joins: list[JoinClause] = field(default_factory=list)
    template: str = ""
    query_id: int = field(default_factory=lambda: next(_query_counter))

    def __post_init__(self) -> None:
        if not self.tables:
            raise PlanningError("a query must read at least one table")
        for table in self.predicates:
            if table not in self.tables:
                raise PlanningError(f"predicates refer to table {table!r} not read by the query")
        for join in self.joins:
            for table in (join.left_table, join.right_table):
                if table not in self.tables:
                    raise PlanningError(f"join {join} refers to table {table!r} not read by the query")

    # ------------------------------------------------------------------ #
    # Accessors used by the optimizer and adaptors
    # ------------------------------------------------------------------ #
    def predicates_on(self, table: str) -> list[Predicate]:
        """Selection predicates applying to ``table`` (possibly empty)."""
        return list(self.predicates.get(table, []))

    def joins_involving(self, table: str) -> list[JoinClause]:
        """Join clauses in which ``table`` participates."""
        return [join for join in self.joins if join.involves(table)]

    def join_attribute(self, table: str) -> str | None:
        """The join column of ``table`` in this query's *primary* join.

        Smooth repartitioning tracks one join attribute per query per table
        (the paper's query window records the join attribute of each query);
        when a table participates in several joins the first clause is the
        primary one, matching the paper's join-order convention.
        """
        involved = self.joins_involving(table)
        if not involved:
            return None
        return involved[0].column_for(table)

    @property
    def is_join_query(self) -> bool:
        """Whether the query contains at least one join."""
        return bool(self.joins)

    def predicate_attributes(self, table: str) -> list[str]:
        """Distinct predicate columns on ``table``, in first-use order."""
        seen: list[str] = []
        for predicate in self.predicates_on(table):
            if predicate.column not in seen:
                seen.append(predicate.column)
        return seen

    def describe(self) -> str:
        """Short human-readable description of the query."""
        parts = [f"Q{self.query_id}"]
        if self.template:
            parts.append(f"[{self.template}]")
        parts.append("tables=" + ",".join(self.tables))
        if self.joins:
            parts.append("joins=" + "; ".join(str(join) for join in self.joins))
        return " ".join(parts)


def scan_query(table: str, predicates: list[Predicate] | None = None, template: str = "") -> Query:
    """Convenience constructor for a single-table scan query."""
    return Query(
        tables=[table],
        predicates={table: list(predicates or [])},
        template=template,
    )


def join_query(
    left_table: str,
    right_table: str,
    left_column: str,
    right_column: str,
    predicates: dict[str, list[Predicate]] | None = None,
    template: str = "",
) -> Query:
    """Convenience constructor for a two-table equi-join query."""
    return Query(
        tables=[left_table, right_table],
        predicates=dict(predicates or {}),
        joins=[JoinClause(left_table, right_table, left_column, right_column)],
        template=template,
    )
