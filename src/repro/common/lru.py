"""A small bounded LRU map with hit/miss counters.

Shared by the session plan cache (:class:`repro.api.cache.PlanCache`) and the
optimizer's hyper-plan memo (:class:`repro.join.hyperjoin.HyperPlanCache`), so
the recency/eviction/statistics mechanics exist exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from .errors import PlanningError

K = TypeVar("K")
V = TypeVar("V")


@dataclass
class BoundedLRU(Generic[K, V]):
    """A dict bounded to ``capacity`` entries with least-recently-used eviction.

    Attributes:
        capacity: Maximum number of entries; ``0`` disables storage (every
            ``get`` misses, ``put`` is a no-op).
        hits / misses: Lookup counters since construction.

    Keys must be hashable; a non-hashable key (a cache-key builder leaking
    a list or dict) raises :class:`~repro.common.errors.PlanningError`
    rather than a bare ``TypeError``, so cache misuse is reported in the
    library's own vocabulary.
    """

    capacity: int = 64
    hits: int = 0
    misses: int = 0
    _entries: dict[K, V] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @staticmethod
    def _check_key(key: K) -> None:
        # dict.pop(key, default) short-circuits on an empty dict without
        # hashing, so hash explicitly to reject bad keys deterministically.
        try:
            hash(key)
        except TypeError as exc:
            raise PlanningError(f"cache key is not hashable: {exc}") from exc

    def get(self, key: K) -> V | None:
        """Return the value for ``key`` (refreshing its recency) or ``None``."""
        self._check_key(key)
        value = self._entries.pop(key, None)
        if value is None:
            self.misses += 1
            return None
        self._entries[key] = value  # refresh recency
        self.hits += 1
        return value

    def peek(self, key: K) -> V | None:
        """Return the value for ``key`` without recency or counter updates.

        Used by delta-upgrade paths that inspect a stale entry they are
        about to replace — inspecting it is neither a hit nor a miss.
        """
        self._check_key(key)
        return self._entries.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert ``value`` under ``key``, evicting least-recently-used entries."""
        if self.capacity <= 0:
            return
        self._check_key(key)
        self._entries.pop(key, None)
        while len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
