"""A small bounded LRU map with hit/miss counters.

Shared by the session plan cache (:class:`repro.api.cache.PlanCache`) and the
optimizer's hyper-plan memo (:class:`repro.join.hyperjoin.HyperPlanCache`), so
the recency/eviction/statistics mechanics exist exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BoundedLRU:
    """A dict bounded to ``capacity`` entries with least-recently-used eviction.

    Attributes:
        capacity: Maximum number of entries; ``0`` disables storage (every
            ``get`` misses, ``put`` is a no-op).
        hits / misses: Lookup counters since construction.
    """

    capacity: int = 64
    hits: int = 0
    misses: int = 0
    _entries: dict = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def get(self, key):
        """Return the value for ``key`` (refreshing its recency) or ``None``."""
        value = self._entries.pop(key, None)
        if value is None:
            self.misses += 1
            return None
        self._entries[key] = value  # refresh recency
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert ``value`` under ``key``, evicting least-recently-used entries."""
        if self.capacity <= 0:
            return
        self._entries.pop(key, None)
        while len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
