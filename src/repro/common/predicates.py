"""Selection predicates.

A predicate constrains a single column (``col <op> value``).  Predicates are
used in three places, mirroring the paper:

* block pruning — a partitioning tree ``lookup`` only descends into subtrees
  whose value range can satisfy the predicate,
* row filtering — the executor applies the predicate to the column arrays of
  every surviving block,
* adaptation hints — the Amoeba adaptor derives candidate tree transforms
  from the predicate attributes seen in the query window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Any

import numpy as np
from numpy.typing import NDArray

from .errors import PlanningError


class Operator(Enum):
    """Comparison operators supported in selection predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"  # inclusive on both ends
    IN = "in"


@dataclass(frozen=True)
class Predicate:
    """A single-column selection predicate.

    Attributes:
        column: Name of the column the predicate applies to.
        op: Comparison operator.
        value: Comparison value.  For ``BETWEEN`` this is the lower bound and
            for ``IN`` a tuple of admissible values.
        high: Upper bound, only used by ``BETWEEN``.
    """

    column: str
    op: Operator
    value: float | tuple[float, ...]
    high: float | None = None

    def __post_init__(self) -> None:
        if self.op is Operator.BETWEEN and self.high is None:
            raise PlanningError("BETWEEN predicate requires a high bound")
        if self.op is Operator.IN and not isinstance(self.value, tuple):
            raise PlanningError("IN predicate requires a tuple of values")

    # ------------------------------------------------------------------ #
    # Block-level pruning
    # ------------------------------------------------------------------ #
    def may_match_range(self, lo: float, hi: float) -> bool:
        """Return whether *any* value in the closed interval [lo, hi] can satisfy this predicate.

        Used to prune blocks and tree subtrees: if ``False`` the block cannot
        contain qualifying rows and may be skipped.
        """
        if math.isnan(lo) or math.isnan(hi):
            return True
        if self.op is Operator.IN:
            assert isinstance(self.value, tuple)
            return any(lo <= v <= hi for v in self.value)
        value = self.value
        assert not isinstance(value, tuple)  # only IN carries a tuple
        if self.op is Operator.EQ:
            return lo <= value <= hi
        if self.op is Operator.NE:
            return not (lo == hi == value)
        if self.op is Operator.LT:
            return lo < value
        if self.op is Operator.LE:
            return lo <= value
        if self.op is Operator.GT:
            return hi > value
        if self.op is Operator.GE:
            return hi >= value
        if self.op is Operator.BETWEEN:
            assert self.high is not None
            return not (hi < value or lo > self.high)
        raise PlanningError(f"unsupported operator {self.op}")

    # ------------------------------------------------------------------ #
    # Row-level filtering
    # ------------------------------------------------------------------ #
    def mask(self, values: NDArray[Any]) -> NDArray[np.bool_]:
        """Return a boolean mask of rows in ``values`` satisfying the predicate."""
        if self.op is Operator.IN:
            return np.isin(values, np.asarray(self.value))
        value = self.value
        assert not isinstance(value, tuple)  # only IN carries a tuple
        if self.op is Operator.EQ:
            return np.asarray(values == value, dtype=bool)
        if self.op is Operator.NE:
            return np.asarray(values != value, dtype=bool)
        if self.op is Operator.LT:
            return np.asarray(values < value, dtype=bool)
        if self.op is Operator.LE:
            return np.asarray(values <= value, dtype=bool)
        if self.op is Operator.GT:
            return np.asarray(values > value, dtype=bool)
        if self.op is Operator.GE:
            return np.asarray(values >= value, dtype=bool)
        if self.op is Operator.BETWEEN:
            assert self.high is not None
            return np.asarray((values >= value) & (values <= self.high), dtype=bool)
        raise PlanningError(f"unsupported operator {self.op}")

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        if self.op is Operator.BETWEEN:
            return f"{self.column} BETWEEN {self.value} AND {self.high}"
        if self.op is Operator.IN:
            return f"{self.column} IN {self.value}"
        return f"{self.column} {self.op.value} {self.value}"


def rows_matching(
    columns: dict[str, NDArray[Any]], predicates: list[Predicate]
) -> NDArray[np.bool_]:
    """Return a boolean mask selecting rows of ``columns`` matching all ``predicates``.

    An empty predicate list matches every row.

    Raises:
        PlanningError: if ``predicates`` is non-empty but ``columns`` is an
            empty dict — a miswired caller lost its projection, and silently
            returning an all-false mask would hide that.
    """
    if not columns:
        if predicates:
            raise PlanningError(
                "cannot evaluate predicates "
                f"({', '.join(str(p) for p in predicates)}) without any columns"
            )
        return np.zeros(0, dtype=bool)
    num_rows = len(next(iter(columns.values())))
    mask = np.ones(num_rows, dtype=bool)
    for predicate in predicates:
        if predicate.column not in columns:
            raise PlanningError(f"predicate column {predicate.column!r} not present in data")
        mask &= predicate.mask(columns[predicate.column])
    return mask


def block_may_match(ranges: dict[str, tuple[float, float]], predicates: list[Predicate]) -> bool:
    """Return whether a block with per-column ``ranges`` may satisfy all ``predicates``.

    Columns without range metadata are conservatively assumed to match.
    """
    for predicate in predicates:
        column_range = ranges.get(predicate.column)
        if column_range is None:
            continue
        if not predicate.may_match_range(*column_range):
            return False
    return True


# Convenience constructors ------------------------------------------------- #

def eq(column: str, value: float) -> Predicate:
    """``column == value``"""
    return Predicate(column, Operator.EQ, value)


def lt(column: str, value: float) -> Predicate:
    """``column < value``"""
    return Predicate(column, Operator.LT, value)


def le(column: str, value: float) -> Predicate:
    """``column <= value``"""
    return Predicate(column, Operator.LE, value)


def gt(column: str, value: float) -> Predicate:
    """``column > value``"""
    return Predicate(column, Operator.GT, value)


def ge(column: str, value: float) -> Predicate:
    """``column >= value``"""
    return Predicate(column, Operator.GE, value)


def between(column: str, low: float, high: float) -> Predicate:
    """``low <= column <= high``"""
    return Predicate(column, Operator.BETWEEN, low, high)


def isin(column: str, values: tuple[float, ...]) -> Predicate:
    """``column IN values``"""
    return Predicate(column, Operator.IN, tuple(values))
