"""The sanctioned wall-clock source for reporting-only measurements.

The determinism checker bans direct ``time.perf_counter()`` /
``time.monotonic()`` calls inside the fingerprinted layers
(``repro.exec``, ``repro.join``, ``repro.parallel``, ...): a measured
duration must never feed a planning decision or a result fingerprint.
Durations that are *reported* — solver wall time on an
:class:`~repro.join.ilp.ILPSolution`, task timings on
``QueryResult.wall_seconds``, calibration harness measurements — go
through :func:`monotonic_seconds` instead.  ``repro.common`` is outside
the checker's determinism scope, so this is the one place the clock is
read and every call site names its purpose by importing from here
rather than carrying a per-line suppression.
"""

from __future__ import annotations

import time


def monotonic_seconds() -> float:
    """A monotonic timestamp in fractional seconds (reporting only).

    The value is only meaningful as a difference between two calls in the
    same process; it must never reach a fingerprint or a planning decision.
    """
    return time.perf_counter()


__all__ = ["monotonic_seconds"]
