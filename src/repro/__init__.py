"""repro — a reproduction of *AdaptDB: Adaptive Partitioning for Distributed Joins* (VLDB 2017).

The package implements the full AdaptDB stack on top of a simulated
cluster/HDFS substrate:

* ``repro.common``        — schemas, predicates, queries, deterministic RNG
* ``repro.cluster``       — simulated machines and the analytical cost model
* ``repro.storage``       — blocks, the distributed file system, tables, catalog
* ``repro.partitioning``  — Amoeba upfront trees and AdaptDB two-phase trees
* ``repro.adaptive``      — query window, smooth repartitioning, Amoeba refinement
* ``repro.join``          — hyper-join (overlap, grouping heuristics, ILP) and shuffle join
* ``repro.core``          — optimizer, planner, executor, and the :class:`AdaptDB` facade
* ``repro.sim``           — discrete-event cluster simulator and the concurrent-workload driver
* ``repro.workloads``     — TPC-H and CMT generators plus the paper's workload patterns
* ``repro.baselines``     — Full Scan, full repartitioning, Amoeba-only, PREF, hand-tuned
* ``repro.experiments``   — one driver per figure of the paper's evaluation
"""

from .common import (
    JoinClause,
    Predicate,
    Query,
    ReproError,
    Schema,
    join_query,
    scan_query,
)

# .core must initialize before .api is imported here: AdaptDB (in .core) pulls
# in the whole .api package mid-initialization, and running .api first would
# re-enter .core through a half-executed backends module.
from .core import AdaptDB, AdaptDBConfig, QueryResult
from .api import (
    ExecutionBackend,
    LogicalPlan,
    PhysicalPlan,
    SerialBackend,
    Session,
    SimBackend,
    TaskBackend,
)
from .storage import ColumnTable

__version__ = "1.0.0"

__all__ = [
    "AdaptDB",
    "AdaptDBConfig",
    "ColumnTable",
    "ExecutionBackend",
    "JoinClause",
    "LogicalPlan",
    "PhysicalPlan",
    "Predicate",
    "Query",
    "QueryResult",
    "ReproError",
    "Schema",
    "SerialBackend",
    "Session",
    "SimBackend",
    "TaskBackend",
    "__version__",
    "join_query",
    "scan_query",
]
