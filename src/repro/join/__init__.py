"""Distributed join algorithms: hyper-join, shuffle join, and block grouping."""

from .grouping import (
    GROUPING_ALGORITHMS,
    Grouping,
    average_probe_multiplicity,
    bottom_up_grouping,
    first_fit_grouping,
    greedy_grouping,
    group_blocks,
    grouping_cost,
)
from .hyperjoin import HyperJoinPlan, execute_hyper_join, hyper_join, plan_hyper_join
from .ilp import ILPSolution, ilp_grouping
from .kernels import KeyHistogram, hash_partition, join_match_count, join_match_count_arrays
from .overlap import compute_overlap_matrix, delta, probe_blocks_needed, ranges_overlap, union_vector
from .shuffle import JoinStats, shuffle_join

__all__ = [
    "GROUPING_ALGORITHMS",
    "Grouping",
    "HyperJoinPlan",
    "ILPSolution",
    "JoinStats",
    "KeyHistogram",
    "average_probe_multiplicity",
    "bottom_up_grouping",
    "compute_overlap_matrix",
    "delta",
    "execute_hyper_join",
    "first_fit_grouping",
    "greedy_grouping",
    "group_blocks",
    "grouping_cost",
    "hash_partition",
    "hyper_join",
    "ilp_grouping",
    "join_match_count",
    "join_match_count_arrays",
    "plan_hyper_join",
    "probe_blocks_needed",
    "ranges_overlap",
    "shuffle_join",
    "union_vector",
]
