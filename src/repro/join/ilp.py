"""Optimal block grouping via mixed integer programming (Section 4.1.2).

The paper formulates Minimal Partitioning (Problem 1) as an ILP:

* ``x[i, k] ∈ {0, 1}`` — build block ``r_i`` is assigned to partition ``p_k``,
* ``y[j, k] ∈ {0, 1}`` — probe block ``s_j`` must be read for partition ``p_k``,
* minimize ``Σ_{j,k} y[j, k]`` subject to
    - each partition holds at most ``B`` blocks,
    - each build block is assigned to exactly one partition,
    - ``y[j, k] ≥ x[i, k]`` whenever ``r_i`` overlaps ``s_j``.

The paper solved the program with GLPK; here it is solved with
``scipy.optimize.milp`` (HiGHS).  As in the paper, the ILP is a baseline for
evaluating the heuristic (Figure 17) rather than a production code path — its
runtime grows quickly with the number of blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..common.clock import monotonic_seconds
from ..common.errors import PlanningError
from .grouping import Grouping, grouping_cost


@dataclass
class ILPSolution:
    """Result of solving the minimal-partitioning ILP.

    Attributes:
        grouping: The optimal grouping (or best found within the time limit).
        objective: The ILP objective value (total probe-block reads).
        solve_seconds: Wall-clock time spent in the solver.
        optimal: Whether the solver proved optimality.
    """

    grouping: Grouping
    objective: float
    solve_seconds: float
    optimal: bool


def ilp_grouping(
    overlap: np.ndarray,
    budget: int,
    time_limit_seconds: float | None = None,
) -> ILPSolution:
    """Solve Problem 1 exactly with a mixed-integer program.

    Args:
        overlap: Boolean overlap matrix ``V`` of shape (n build, m probe).
        budget: Maximum build blocks per partition (``B``).
        time_limit_seconds: Optional solver time limit; when hit, the best
            incumbent is returned with ``optimal=False``.

    Returns:
        An :class:`ILPSolution`.

    Raises:
        PlanningError: if the inputs are malformed or no feasible solution
            exists (which cannot happen for a well-formed overlap matrix).
    """
    if overlap.ndim != 2:
        raise PlanningError("overlap matrix must be two-dimensional")
    if budget < 1:
        raise PlanningError("memory budget must allow at least one block per group")

    num_build, num_probe = overlap.shape
    if num_build == 0:
        return ILPSolution(Grouping(groups=[], algorithm="ilp"), 0.0, 0.0, True)

    num_partitions = math.ceil(num_build / budget)
    num_x = num_build * num_partitions
    num_y = num_probe * num_partitions
    num_vars = num_x + num_y

    def x_index(i: int, k: int) -> int:
        return i * num_partitions + k

    def y_index(j: int, k: int) -> int:
        return num_x + j * num_partitions + k

    # Objective: minimize sum of y.
    objective = np.zeros(num_vars)
    objective[num_x:] = 1.0

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    row_counter = 0

    # (1) capacity: sum_i x[i,k] <= budget, for every partition k.
    for k in range(num_partitions):
        for i in range(num_build):
            rows.append(row_counter)
            cols.append(x_index(i, k))
            data.append(1.0)
        lower.append(-np.inf)
        upper.append(float(budget))
        row_counter += 1

    # (2) assignment: sum_k x[i,k] == 1, for every build block i.
    for i in range(num_build):
        for k in range(num_partitions):
            rows.append(row_counter)
            cols.append(x_index(i, k))
            data.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row_counter += 1

    # (3) coverage: y[j,k] - x[i,k] >= 0 whenever r_i overlaps s_j.
    overlap_pairs = np.argwhere(overlap)
    for i, j in overlap_pairs:
        for k in range(num_partitions):
            rows.extend([row_counter, row_counter])
            cols.extend([y_index(int(j), k), x_index(int(i), k)])
            data.extend([1.0, -1.0])
            lower.append(0.0)
            upper.append(np.inf)
            row_counter += 1

    constraint_matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(row_counter, num_vars)
    )
    constraints = LinearConstraint(constraint_matrix, np.array(lower), np.array(upper))
    bounds = Bounds(np.zeros(num_vars), np.ones(num_vars))
    integrality = np.ones(num_vars)

    options: dict[str, float] = {}
    if time_limit_seconds is not None:
        options["time_limit"] = float(time_limit_seconds)

    # Measured solver wall time is reported on the ILPSolution for operators;
    # it never feeds a planning decision or a fingerprint.
    started = monotonic_seconds()
    result = milp(
        c=objective,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options=options or None,
    )
    elapsed = monotonic_seconds() - started

    if result.x is None:
        raise PlanningError(f"ILP solver failed: {result.message}")

    assignment = result.x[:num_x].reshape(num_build, num_partitions)
    groups: list[list[int]] = [[] for _ in range(num_partitions)]
    for i in range(num_build):
        k = int(np.argmax(assignment[i]))
        groups[k].append(i)
    groups = [group for group in groups if group]

    grouping = Grouping(groups=groups, algorithm="ilp")
    grouping.probe_reads_per_group = grouping_cost(overlap, groups)
    return ILPSolution(
        grouping=grouping,
        objective=float(grouping.total_probe_reads),
        solve_seconds=elapsed,
        optimal=bool(result.status == 0),
    )
