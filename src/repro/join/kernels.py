"""Low-level join kernels shared by the shuffle-join and hyper-join executors.

AdaptDB's evaluation reports I/O-driven runtimes, so the reproduction's join
executors only need to (a) account block accesses faithfully and (b) compute
the *correct* number of join matches so tests can verify results against a
reference join.  Both needs are served by counting key multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..common.errors import StorageError
from ..common.predicates import Predicate, rows_matching

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..storage.block import Block


@dataclass
class KeyHistogram:
    """Distinct keys of one relation side together with their multiplicities."""

    keys: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_keys(cls, keys: np.ndarray) -> "KeyHistogram":
        """Build a histogram from a raw key array."""
        if len(keys) == 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        unique, counts = np.unique(keys, return_counts=True)
        return cls(unique, counts)

    @classmethod
    def merge(cls, histograms: list["KeyHistogram"]) -> "KeyHistogram":
        """Merge several histograms into one (summing multiplicities)."""
        non_empty = [histogram for histogram in histograms if len(histogram.keys)]
        if not non_empty:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        keys = np.concatenate([histogram.keys for histogram in non_empty])
        counts = np.concatenate([histogram.counts for histogram in non_empty])
        unique, inverse = np.unique(keys, return_inverse=True)
        merged_counts = np.zeros(len(unique), dtype=np.int64)
        np.add.at(merged_counts, inverse, counts)
        return cls(unique, merged_counts)

    @property
    def total(self) -> int:
        """Total number of rows represented by the histogram."""
        return int(self.counts.sum())


def join_match_count(left: KeyHistogram, right: KeyHistogram) -> int:
    """Number of join output rows between two key histograms.

    Equal to Σ over common keys of (left multiplicity × right multiplicity),
    i.e. the cardinality of the equi-join.
    """
    if len(left.keys) == 0 or len(right.keys) == 0:
        return 0
    common, left_idx, right_idx = np.intersect1d(
        left.keys, right.keys, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return 0
    return int((left.counts[left_idx] * right.counts[right_idx]).sum())


def join_match_count_arrays(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Convenience wrapper: join cardinality of two raw key arrays."""
    return join_match_count(KeyHistogram.from_keys(left_keys), KeyHistogram.from_keys(right_keys))


def gather_columns(blocks: Iterable["Block"], columns: list[str]) -> dict[str, np.ndarray]:
    """Concatenate the named columns of a batch of blocks row-wise.

    Empty blocks contribute no rows but still supply dtype metadata, so an
    empty batch keeps the source column dtype (a float predicate column must
    not silently become int64 just because no block held rows).  int64 is
    only the last-resort default when no block carries the column at all.
    """
    # Stream each block's raw parts (consolidated prefix + pending chunks):
    # the batch concatenates across blocks anyway, so forcing a per-block
    # consolidation first would just copy the data twice.
    all_parts: list[dict[str, np.ndarray]] = []
    dtypes: dict[str, np.dtype] = {}
    for block in blocks:
        if block.num_rows == 0:
            block_columns = block.columns
            for name in columns:
                if name not in dtypes and name in block_columns:
                    dtypes[name] = block_columns[name].dtype
            continue
        all_parts.extend(block.column_parts())
    result: dict[str, np.ndarray] = {}
    for name in columns:
        try:
            arrays = [part[name] for part in all_parts]
        except KeyError:
            raise StorageError(f"gathered blocks have no column {name!r}") from None
        result[name] = (
            np.concatenate(arrays)
            if arrays
            else np.empty(0, dtype=dtypes.get(name, np.int64))
        )
    return result


def gather_filtered_keys(
    blocks: Iterable["Block"], key_column: str, predicates: list[Predicate]
) -> np.ndarray:
    """Join keys of a batch of blocks surviving ``predicates``, in one pass.

    Instead of filtering block by block, the key column and every predicate
    column are concatenated across the batch and the predicate masks are
    evaluated once over the concatenation — the vectorized inner loop of the
    scan and shuffle-map tasks.
    """
    needed = [key_column] + sorted({p.column for p in predicates} - {key_column})
    columns = gather_columns(blocks, needed)
    keys = columns[key_column]
    if not predicates or len(keys) == 0:
        return keys
    return keys[rows_matching(columns, predicates)]


def batch_matching_count(blocks: Iterable["Block"], predicates: list[Predicate]) -> int:
    """Rows of a batch of blocks matching all ``predicates`` (vectorized).

    With no predicates this is simply the batch's total row count; otherwise
    the predicate columns are concatenated across the batch and every
    predicate mask is evaluated once.
    """
    blocks = list(blocks)
    if not predicates:
        return sum(block.num_rows for block in blocks)
    columns = gather_columns(blocks, sorted({p.column for p in predicates}))
    return int(rows_matching(columns, predicates).sum())


def hash_partition(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each key to a shuffle partition (simple modulo hashing)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return (keys.astype(np.int64) % num_partitions + num_partitions) % num_partitions
