"""Low-level join kernels shared by the shuffle-join and hyper-join executors.

AdaptDB's evaluation reports I/O-driven runtimes, so the reproduction's join
executors only need to (a) account block accesses faithfully and (b) compute
the *correct* number of join matches so tests can verify results against a
reference join.  Both needs are served by counting key multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KeyHistogram:
    """Distinct keys of one relation side together with their multiplicities."""

    keys: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_keys(cls, keys: np.ndarray) -> "KeyHistogram":
        """Build a histogram from a raw key array."""
        if len(keys) == 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        unique, counts = np.unique(keys, return_counts=True)
        return cls(unique, counts)

    @classmethod
    def merge(cls, histograms: list["KeyHistogram"]) -> "KeyHistogram":
        """Merge several histograms into one (summing multiplicities)."""
        non_empty = [histogram for histogram in histograms if len(histogram.keys)]
        if not non_empty:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        keys = np.concatenate([histogram.keys for histogram in non_empty])
        counts = np.concatenate([histogram.counts for histogram in non_empty])
        unique, inverse = np.unique(keys, return_inverse=True)
        merged_counts = np.zeros(len(unique), dtype=np.int64)
        np.add.at(merged_counts, inverse, counts)
        return cls(unique, merged_counts)

    @property
    def total(self) -> int:
        """Total number of rows represented by the histogram."""
        return int(self.counts.sum())


def join_match_count(left: KeyHistogram, right: KeyHistogram) -> int:
    """Number of join output rows between two key histograms.

    Equal to Σ over common keys of (left multiplicity × right multiplicity),
    i.e. the cardinality of the equi-join.
    """
    if len(left.keys) == 0 or len(right.keys) == 0:
        return 0
    common, left_idx, right_idx = np.intersect1d(
        left.keys, right.keys, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return 0
    return int((left.counts[left_idx] * right.counts[right_idx]).sum())


def join_match_count_arrays(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Convenience wrapper: join cardinality of two raw key arrays."""
    return join_match_count(KeyHistogram.from_keys(left_keys), KeyHistogram.from_keys(right_keys))


def hash_partition(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each key to a shuffle partition (simple modulo hashing)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return (keys.astype(np.int64) % num_partitions + num_partitions) % num_partitions
