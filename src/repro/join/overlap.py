"""Overlap vectors between the blocks of two joined relations (Section 4.1.1).

For a join R ⋈ S on attribute ``t``, block ``r_i`` of R overlaps block
``s_j`` of S when their ``t`` ranges intersect — exactly those pairs must be
joined with each other.  The overlap structure is summarized as a boolean
matrix ``V`` with ``V[i, j] = 1`` iff ``Range_t(r_i) ∩ Range_t(s_j) ≠ ∅``;
the paper calls the rows of this matrix the vectors ``v_i``.

Under continuous adaptation most epoch bumps touch a handful of blocks, so
besides the cold :func:`compute_overlap_matrix` there is
:func:`patch_overlap_matrix`: it rebuilds only the rows/columns whose block
ranges changed (or are new) and copies every surviving cell from the cached
matrix — O(changed × blocks) instead of O(blocks²) range comparisons, and
bit-identical to a cold recompute by construction.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import PlanningError

Range = tuple[float, float]


def ranges_overlap(a: Range, b: Range) -> bool:
    """Whether two closed intervals intersect."""
    return not (a[1] < b[0] or b[1] < a[0])


def compute_overlap_matrix(build_ranges: list[Range], probe_ranges: list[Range]) -> np.ndarray:
    """Compute the overlap matrix ``V`` between build-side and probe-side blocks.

    Args:
        build_ranges: Per-block (min, max) of the join attribute in relation R.
        probe_ranges: Per-block (min, max) of the join attribute in relation S.

    Returns:
        A boolean matrix of shape ``(len(build_ranges), len(probe_ranges))``.

    Raises:
        PlanningError: if any range is inverted (min > max).
    """
    for ranges in (build_ranges, probe_ranges):
        for lo, hi in ranges:
            if lo > hi:
                raise PlanningError(f"invalid block range ({lo}, {hi})")
    if not build_ranges or not probe_ranges:
        return np.zeros((len(build_ranges), len(probe_ranges)), dtype=bool)

    build = np.asarray(build_ranges, dtype=float)
    probe = np.asarray(probe_ranges, dtype=float)
    # r and s overlap  <=>  r.lo <= s.hi  and  s.lo <= r.hi
    lo_ok = build[:, 0][:, None] <= probe[:, 1][None, :]
    hi_ok = probe[:, 0][None, :] <= build[:, 1][:, None]
    return lo_ok & hi_ok


def patch_overlap_matrix(
    matrix: np.ndarray,
    build_ranges: list[Range],
    probe_ranges: list[Range],
    kept_build: list[tuple[int, int]],
    kept_probe: list[tuple[int, int]],
) -> np.ndarray:
    """Rebuild ``V`` for new candidate lists, reusing unchanged rows/columns.

    Args:
        matrix: The cached overlap matrix for the *old* candidate lists.
        build_ranges: Per-block (min, max) for the **new** build-side list.
        probe_ranges: Per-block (min, max) for the **new** probe-side list.
        kept_build: ``(new_row, old_row)`` index pairs for build blocks whose
            join-attribute range is unchanged since ``matrix`` was computed.
        kept_probe: ``(new_col, old_col)`` index pairs for probe blocks whose
            range is unchanged.

    Rows/columns absent from the kept pairs are recomputed from their ranges
    (so only *changed* ranges are validated here — kept ones were validated
    when the cached matrix was built); cells covered by a kept row *and* a
    kept column are copied from ``matrix``.  The result is bit-identical to
    ``compute_overlap_matrix(build_ranges, probe_ranges)``.

    Raises:
        PlanningError: if any recomputed range is inverted (min > max).
    """
    num_build, num_probe = len(build_ranges), len(probe_ranges)
    kept_build_new = {new for new, _ in kept_build}
    kept_probe_new = {new for new, _ in kept_probe}
    fresh_rows = [row for row in range(num_build) if row not in kept_build_new]
    fresh_cols = [col for col in range(num_probe) if col not in kept_probe_new]
    for lo, hi in [build_ranges[row] for row in fresh_rows] + [
        probe_ranges[col] for col in fresh_cols
    ]:
        if lo > hi:
            raise PlanningError(f"invalid block range ({lo}, {hi})")
    result = np.zeros((num_build, num_probe), dtype=bool)
    if num_build == 0 or num_probe == 0:
        return result

    build = np.asarray(build_ranges, dtype=float)
    probe = np.asarray(probe_ranges, dtype=float)
    if kept_build and kept_probe:
        new_rows = np.asarray([new for new, _ in kept_build])
        old_rows = np.asarray([old for _, old in kept_build])
        new_cols = np.asarray([new for new, _ in kept_probe])
        old_cols = np.asarray([old for _, old in kept_probe])
        result[np.ix_(new_rows, new_cols)] = matrix[np.ix_(old_rows, old_cols)]
    if fresh_rows:
        rows = np.asarray(fresh_rows)
        lo_ok = build[rows, 0][:, None] <= probe[:, 1][None, :]
        hi_ok = probe[:, 0][None, :] <= build[rows, 1][:, None]
        result[rows] = lo_ok & hi_ok
    if fresh_cols:
        cols = np.asarray(fresh_cols)
        lo_ok = build[:, 0][:, None] <= probe[cols, 1][None, :]
        hi_ok = probe[cols, 0][None, :] <= build[:, 1][:, None]
        result[:, cols] = lo_ok & hi_ok
    return result


def delta(vector: np.ndarray) -> int:
    """Number of set bits in an overlap vector (the paper's δ)."""
    return int(np.count_nonzero(vector))


def union_vector(matrix: np.ndarray, block_indices: list[int]) -> np.ndarray:
    """The union (bitwise OR) of the overlap vectors of ``block_indices``."""
    if not block_indices:
        return np.zeros(matrix.shape[1], dtype=bool)
    return matrix[block_indices].any(axis=0)


def probe_blocks_needed(matrix: np.ndarray) -> int:
    """Number of probe-side blocks that overlap at least one build-side block."""
    if matrix.size == 0:
        return 0
    return int(matrix.any(axis=0).sum())
