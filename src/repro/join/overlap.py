"""Overlap vectors between the blocks of two joined relations (Section 4.1.1).

For a join R ⋈ S on attribute ``t``, block ``r_i`` of R overlaps block
``s_j`` of S when their ``t`` ranges intersect — exactly those pairs must be
joined with each other.  The overlap structure is summarized as a boolean
matrix ``V`` with ``V[i, j] = 1`` iff ``Range_t(r_i) ∩ Range_t(s_j) ≠ ∅``;
the paper calls the rows of this matrix the vectors ``v_i``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import PlanningError

Range = tuple[float, float]


def ranges_overlap(a: Range, b: Range) -> bool:
    """Whether two closed intervals intersect."""
    return not (a[1] < b[0] or b[1] < a[0])


def compute_overlap_matrix(build_ranges: list[Range], probe_ranges: list[Range]) -> np.ndarray:
    """Compute the overlap matrix ``V`` between build-side and probe-side blocks.

    Args:
        build_ranges: Per-block (min, max) of the join attribute in relation R.
        probe_ranges: Per-block (min, max) of the join attribute in relation S.

    Returns:
        A boolean matrix of shape ``(len(build_ranges), len(probe_ranges))``.

    Raises:
        PlanningError: if any range is inverted (min > max).
    """
    for ranges in (build_ranges, probe_ranges):
        for lo, hi in ranges:
            if lo > hi:
                raise PlanningError(f"invalid block range ({lo}, {hi})")
    if not build_ranges or not probe_ranges:
        return np.zeros((len(build_ranges), len(probe_ranges)), dtype=bool)

    build = np.asarray(build_ranges, dtype=float)
    probe = np.asarray(probe_ranges, dtype=float)
    # r and s overlap  <=>  r.lo <= s.hi  and  s.lo <= r.hi
    lo_ok = build[:, 0][:, None] <= probe[:, 1][None, :]
    hi_ok = probe[:, 0][None, :] <= build[:, 1][:, None]
    return lo_ok & hi_ok


def delta(vector: np.ndarray) -> int:
    """Number of set bits in an overlap vector (the paper's δ)."""
    return int(np.count_nonzero(vector))


def union_vector(matrix: np.ndarray, block_indices: list[int]) -> np.ndarray:
    """The union (bitwise OR) of the overlap vectors of ``block_indices``."""
    if not block_indices:
        return np.zeros(matrix.shape[1], dtype=bool)
    return matrix[block_indices].any(axis=0)


def probe_blocks_needed(matrix: np.ndarray) -> int:
    """Number of probe-side blocks that overlap at least one build-side block."""
    if matrix.size == 0:
        return 0
    return int(matrix.any(axis=0).sum())
