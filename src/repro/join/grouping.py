"""Block-grouping algorithms for hyper-join (Sections 4.1.3 and 4.1.5).

Hyper-join builds one hash table per *group* of build-side blocks (a group
must fit into a worker's memory, i.e. at most ``B`` blocks) and probes it
with every probe-side block that overlaps any block in the group.  The cost
of a grouping is the total number of probe-block reads:

    C(P) = Σ_{p ∈ P} δ( ∨_{r ∈ p} v_r )

Choosing the groups to minimize this cost is NP-hard (Section 4.1.4); this
module provides:

* :func:`bottom_up_grouping` — the paper's practical heuristic (Figure 6),
* :func:`greedy_grouping` — the approximate algorithm of Figure 5, realized
  with the same greedy block-at-a-time rule but restarted per group,
* :func:`first_fit_grouping` — a naive baseline that chunks blocks in their
  storage order, used to show the benefit of cost-aware grouping.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import PlanningError
from .overlap import delta, probe_blocks_needed, union_vector


@dataclass
class Grouping:
    """A partitioning of the build-side blocks into memory-sized groups.

    Attributes:
        groups: Lists of build-side block *indices* (positions in the overlap
            matrix, not DFS block ids).
        probe_reads_per_group: δ of the union vector of each group.
        algorithm: Name of the algorithm that produced this grouping.
    """

    groups: list[list[int]]
    probe_reads_per_group: list[int] = field(default_factory=list)
    algorithm: str = ""

    @property
    def total_probe_reads(self) -> int:
        """Total probe-side block reads (the paper's objective C(P))."""
        return int(sum(self.probe_reads_per_group))

    @property
    def num_groups(self) -> int:
        """Number of hash tables that will be built."""
        return len(self.groups)

    def validate(self, num_blocks: int, budget: int) -> None:
        """Check that the grouping is a valid solution to Problem 1.

        Every block index appears exactly once and no group exceeds the
        memory budget.

        Raises:
            PlanningError: if the grouping is invalid.
        """
        seen = [index for group in self.groups for index in group]
        if sorted(seen) != list(range(num_blocks)):
            raise PlanningError("grouping does not cover every build block exactly once")
        for group in self.groups:
            if len(group) > budget:
                raise PlanningError(f"group of size {len(group)} exceeds budget {budget}")


def grouping_cost(overlap: np.ndarray, groups: list[list[int]]) -> list[int]:
    """Per-group probe-read counts (δ of each group's union vector)."""
    return [delta(union_vector(overlap, group)) for group in groups]


def average_probe_multiplicity(overlap: np.ndarray, grouping: Grouping) -> float:
    """The paper's ``C_HyJ``: average number of times a needed probe block is read."""
    needed = probe_blocks_needed(overlap)
    if needed == 0:
        return 1.0
    return grouping.total_probe_reads / needed


def _check_inputs(overlap: np.ndarray, budget: int) -> None:
    if overlap.ndim != 2:
        raise PlanningError("overlap matrix must be two-dimensional")
    if budget < 1:
        raise PlanningError("memory budget must allow at least one block per group")


def bottom_up_grouping(overlap: np.ndarray, budget: int) -> Grouping:
    """The paper's bottom-up heuristic (Figure 6).

    Starting from an empty partition, repeatedly merge the remaining block
    whose addition increases the partition's union vector the least; when the
    partition reaches ``budget`` blocks (or blocks run out), close it and
    start a new one.

    Complexity is O(n² · m) for n build blocks and m probe blocks, which the
    paper reports as negligible (milliseconds) in practice.
    """
    _check_inputs(overlap, budget)
    num_blocks = overlap.shape[0]
    groups: list[list[int]] = []

    if num_blocks <= 256:
        packed = np.packbits(np.ascontiguousarray(overlap, dtype=bool), axis=1)
        # Each block's overlap vector becomes one arbitrary-precision
        # bitset: δ(v_i ∨ ṽ(P)) is an OR plus ``bit_count()`` — the same
        # integers the boolean formulation produces, so the first-minimum
        # tie-breaking is unchanged while the inner loop avoids per-
        # iteration numpy dispatch on what are typically short vectors.
        bitsets = [int.from_bytes(row.tobytes(), "big") for row in packed]
        remaining = list(range(num_blocks))
        current: list[int] = []
        current_union = 0
        while remaining:
            best_position = 0
            best_delta = (bitsets[remaining[0]] | current_union).bit_count()
            for position in range(1, len(remaining)):
                delta_here = (bitsets[remaining[position]] | current_union).bit_count()
                if delta_here < best_delta:
                    best_delta = delta_here
                    best_position = position
            best = remaining.pop(best_position)
            current.append(best)
            current_union |= bitsets[best]
            if len(current) == budget or not remaining:
                groups.append(current)
                current = []
                current_union = 0
    else:
        # Same greedy rule on the packed matrix with vectorized popcounts,
        # which wins once the candidate set is large.  numpy < 2.0 has no
        # bitwise_count; fall back to the boolean matrix there.
        popcount = getattr(np, "bitwise_count", None)
        if popcount is None:
            matrix = np.ascontiguousarray(overlap, dtype=bool)
            union_row = np.zeros(matrix.shape[1], dtype=bool)
        else:
            matrix = np.packbits(np.ascontiguousarray(overlap, dtype=bool), axis=1)
            union_row = np.zeros(matrix.shape[1], dtype=np.uint8)
        remaining_mask = np.ones(num_blocks, dtype=bool)
        current = []
        while remaining_mask.any():
            candidate_indices = np.flatnonzero(remaining_mask)
            unions = matrix[candidate_indices] | union_row
            new_deltas = (popcount(unions) if popcount is not None else unions).sum(axis=1)
            best = int(candidate_indices[int(np.argmin(new_deltas))])
            current.append(best)
            union_row = union_row | matrix[best]
            remaining_mask[best] = False
            if len(current) == budget or not remaining_mask.any():
                groups.append(current)
                current = []
                union_row = np.zeros(matrix.shape[1], dtype=union_row.dtype)

    grouping = Grouping(groups=groups, algorithm="bottom_up")
    grouping.probe_reads_per_group = grouping_cost(overlap, groups)
    return grouping


def greedy_grouping(overlap: np.ndarray, budget: int) -> Grouping:
    """The approximate algorithm of Figure 5.

    Figure 5 asks, per iteration, for the set of at most ``B`` remaining
    blocks with the smallest union — itself an NP-hard subproblem
    (Section 4.1.4).  This realization seeds each group with the remaining
    block of smallest individual δ and grows it greedily, which matches the
    paper's described behaviour while staying polynomial.
    """
    _check_inputs(overlap, budget)
    num_blocks = overlap.shape[0]
    remaining = np.ones(num_blocks, dtype=bool)
    groups: list[list[int]] = []

    while remaining.any():
        candidate_indices = np.flatnonzero(remaining)
        seed = candidate_indices[int(np.argmin(overlap[candidate_indices].sum(axis=1)))]
        group = [int(seed)]
        group_union = overlap[seed].copy()
        remaining[seed] = False
        while len(group) < budget and remaining.any():
            candidate_indices = np.flatnonzero(remaining)
            new_deltas = (overlap[candidate_indices] | group_union).sum(axis=1)
            best = candidate_indices[int(np.argmin(new_deltas))]
            group.append(int(best))
            group_union |= overlap[best]
            remaining[best] = False
        groups.append(group)

    grouping = Grouping(groups=groups, algorithm="greedy")
    grouping.probe_reads_per_group = grouping_cost(overlap, groups)
    return grouping


def first_fit_grouping(overlap: np.ndarray, budget: int) -> Grouping:
    """Naive baseline: group blocks in storage order, ``budget`` at a time."""
    _check_inputs(overlap, budget)
    num_blocks = overlap.shape[0]
    groups = [
        list(range(start, min(start + budget, num_blocks)))
        for start in range(0, num_blocks, budget)
    ]
    grouping = Grouping(groups=groups, algorithm="first_fit")
    grouping.probe_reads_per_group = grouping_cost(overlap, groups)
    return grouping


GROUPING_ALGORITHMS = {
    "bottom_up": bottom_up_grouping,
    "greedy": greedy_grouping,
    "first_fit": first_fit_grouping,
}


_GROUPING_CACHE: dict[tuple, Grouping] = {}
_GROUPING_CACHE_LIMIT = 512


def matrix_row_digests(overlap: np.ndarray) -> list[bytes]:
    """Per-row content digests of the overlap matrix.

    The grouping memo keys on these instead of the whole-matrix bytes so an
    incremental planner that patched only a few rows can produce the memo
    key in O(changed): it reuses the digests of untouched rows and hashes
    only the rewritten ones (see ``HyperPlanCache``).
    """
    contiguous = np.ascontiguousarray(overlap, dtype=bool)
    return [
        hashlib.blake2b(row.tobytes(), digest_size=16).digest() for row in contiguous
    ]


def group_blocks(
    overlap: np.ndarray,
    budget: int,
    algorithm: str = "bottom_up",
    row_digests: list[bytes] | None = None,
) -> Grouping:
    """Dispatch to a named grouping algorithm.

    Every algorithm is a deterministic pure function of the overlap matrix,
    so results are memoized on per-row content digests: the optimizer costs
    both build directions of every hyper-join every query, consecutive
    queries from the same template reproduce the same overlap pattern, and a
    patched matrix whose rows all survived an epoch bump hits the same memo
    entry as the cold computation that created it.  Callers must treat the
    returned :class:`Grouping` as read-only.

    Args:
        overlap: The boolean overlap matrix ``V``.
        budget: Maximum blocks per group (the paper's ``B``).
        algorithm: One of ``bottom_up``, ``greedy``, ``first_fit``.
        row_digests: Precomputed :func:`matrix_row_digests` of ``overlap``
            (an incremental caller maintains them row-by-row); computed here
            when omitted.
    """
    try:
        implementation = GROUPING_ALGORITHMS[algorithm]
    except KeyError:
        raise PlanningError(
            f"unknown grouping algorithm {algorithm!r}; choose from {sorted(GROUPING_ALGORITHMS)}"
        ) from None
    if row_digests is None:
        row_digests = matrix_row_digests(overlap)
    digest = hashlib.blake2b(b"".join(row_digests), digest_size=16).digest()
    key = (overlap.shape, digest, budget, algorithm)
    cached = _GROUPING_CACHE.get(key)
    if cached is None:
        if len(_GROUPING_CACHE) >= _GROUPING_CACHE_LIMIT:
            _GROUPING_CACHE.clear()
        cached = _GROUPING_CACHE[key] = implementation(overlap, budget)
    return cached
