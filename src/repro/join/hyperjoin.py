"""Hyper-join (Section 4.1).

Hyper-join avoids shuffling: it groups the build-side blocks into
memory-sized partitions (one hash table per group), and probes each hash
table with exactly the probe-side blocks whose join-attribute range overlaps
the group.  The cost is ``blocks(R) + C_HyJ · blocks(S)`` (equation (2)),
where ``C_HyJ`` is the average number of times a needed probe block is read —
1.0 for perfectly co-partitioned tables, larger when block ranges overlap
more widely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.costmodel import CostModel
from ..common.epochs import epoch_keyed
from ..common.errors import PlanningError
from ..common.lru import BoundedLRU
from ..common.predicates import Predicate
from ..storage.dfs import DistributedFileSystem
from .grouping import Grouping, average_probe_multiplicity, group_blocks
from .kernels import KeyHistogram, join_match_count
from .overlap import compute_overlap_matrix
from .shuffle import JoinStats


@dataclass
class HyperJoinPlan:
    """A fully determined hyper-join schedule.

    Attributes:
        build_block_ids: Non-empty build-side blocks, in overlap-matrix order.
        probe_block_ids: Non-empty probe-side blocks, in overlap-matrix order.
        overlap: The boolean overlap matrix between the two block lists.
        grouping: The chosen grouping of build-side blocks.
        probe_multiplicity: Estimated ``C_HyJ`` for this schedule.
    """

    build_block_ids: list[int]
    probe_block_ids: list[int]
    overlap: np.ndarray
    grouping: Grouping
    probe_multiplicity: float

    @property
    def estimated_probe_reads(self) -> int:
        """Total probe-block reads the schedule will perform."""
        return self.grouping.total_probe_reads


@epoch_keyed(reads=("peek_block", "num_rows", "ranges", "range_of"))
def plan_hyper_join(
    dfs: DistributedFileSystem,
    build_block_ids: list[int],
    probe_block_ids: list[int],
    build_column: str,
    probe_column: str,
    buffer_blocks: int,
    algorithm: str = "bottom_up",
) -> HyperJoinPlan:
    """Compute the hyper-join schedule (overlap matrix + grouping).

    Empty blocks and blocks lacking join-attribute metadata are dropped —
    they cannot contribute join matches and incur no I/O.

    Args:
        dfs: The DFS holding both relations' blocks.
        build_block_ids: Candidate build-side blocks (hash tables are built
            over these).
        probe_block_ids: Candidate probe-side blocks.
        build_column / probe_column: Join attribute on each side.
        buffer_blocks: Memory budget ``B`` (build blocks per hash table).
        algorithm: Grouping algorithm name (see ``repro.join.grouping``).
    """
    if buffer_blocks < 1:
        raise PlanningError("buffer_blocks must be at least 1")

    def usable(block_ids: list[int], column: str) -> tuple[list[int], list[tuple[float, float]]]:
        ids: list[int] = []
        ranges: list[tuple[float, float]] = []
        for block_id in block_ids:
            block = dfs.peek_block(block_id)
            if block.num_rows == 0 or column not in block.ranges:
                continue
            ids.append(block_id)
            ranges.append(block.range_of(column))
        return ids, ranges

    build_ids, build_ranges = usable(build_block_ids, build_column)
    probe_ids, probe_ranges = usable(probe_block_ids, probe_column)

    overlap = compute_overlap_matrix(build_ranges, probe_ranges)
    grouping = group_blocks(overlap, buffer_blocks, algorithm) if build_ids else Grouping(groups=[])
    multiplicity = average_probe_multiplicity(overlap, grouping) if build_ids else 1.0
    return HyperJoinPlan(
        build_block_ids=build_ids,
        probe_block_ids=probe_ids,
        overlap=overlap,
        grouping=grouping,
        probe_multiplicity=multiplicity,
    )


class HyperPlanCache:
    """Bounded LRU memo of hyper-join schedules, keyed on partition-state epochs.

    The optimizer costs *both* build directions of every hyper-join on every
    query, and repeated-template workloads reproduce the same relevant block
    sets query after query once adaptation has converged.  At a fixed
    partition state the schedule is a pure function of the block-id lists and
    the planning knobs, so entries are keyed on::

        (state_token, build_ids, probe_ids, build_col, probe_col,
         buffer_blocks, algorithm)

    where ``state_token`` carries the ``(table, epoch)`` pairs of both sides.
    Any table mutation bumps its epoch and thereby orphans every entry that
    mentions it; orphans age out of the LRU.  Cached plans are shared and
    must be treated as read-only by consumers (they already are: compilation
    and execution only read them).

    The cache is held per optimizer instance, never globally — block ids are
    only unique within one DFS, and test suites run many engines side by
    side.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._cache = BoundedLRU(capacity=capacity)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lookups that had to plan from scratch."""
        return self._cache.misses

    @epoch_keyed(reads=())
    def get_or_plan(
        self,
        dfs: DistributedFileSystem,
        build_block_ids: list[int],
        probe_block_ids: list[int],
        build_column: str,
        probe_column: str,
        buffer_blocks: int,
        algorithm: str,
        state_token: tuple,
    ) -> HyperJoinPlan:
        """Return the cached schedule for this key, planning on a miss."""
        key = (
            state_token,
            tuple(build_block_ids),
            tuple(probe_block_ids),
            build_column,
            probe_column,
            buffer_blocks,
            algorithm,
        )
        plan = self._cache.get(key)
        if plan is not None:
            return plan
        plan = plan_hyper_join(
            dfs,
            build_block_ids,
            probe_block_ids,
            build_column,
            probe_column,
            buffer_blocks,
            algorithm,
        )
        self._cache.put(key, plan)
        return plan


def execute_hyper_join(
    dfs: DistributedFileSystem,
    plan: HyperJoinPlan,
    build_column: str,
    probe_column: str,
    build_predicates: list[Predicate] | None = None,
    probe_predicates: list[Predicate] | None = None,
    cost_model: CostModel | None = None,
) -> JoinStats:
    """Run a hyper-join according to ``plan`` and account its I/O.

    For every group: the group's build blocks are read once and a hash table
    (key histogram) is built over their filtered rows; every probe block
    overlapping the group is then read and probed.

    Returns:
        A :class:`JoinStats` with ``method="hyper"``.
    """
    cost_model = cost_model or CostModel()
    build_predicates = build_predicates or []
    probe_predicates = probe_predicates or []

    build_reads = 0
    probe_reads = 0
    output_rows = 0

    for group in plan.grouping.groups:
        histograms: list[KeyHistogram] = []
        for index in group:
            block = dfs.get_block(plan.build_block_ids[index])
            build_reads += 1
            rows = block.filtered(build_predicates)
            histograms.append(KeyHistogram.from_keys(rows[build_column]))
        build_histogram = KeyHistogram.merge(histograms)

        group_union = plan.overlap[group].any(axis=0) if group else np.zeros(0, dtype=bool)
        for probe_index in np.flatnonzero(group_union):
            block = dfs.get_block(plan.probe_block_ids[int(probe_index)])
            probe_reads += 1
            rows = block.filtered(probe_predicates)
            probe_histogram = KeyHistogram.from_keys(rows[probe_column])
            output_rows += join_match_count(build_histogram, probe_histogram)

    cost = cost_model.hyper_join_cost(build_reads, probe_reads)
    return JoinStats(
        method="hyper",
        build_blocks_read=build_reads,
        probe_blocks_read=probe_reads,
        shuffled_blocks=0,
        output_rows=output_rows,
        cost_units=cost,
        probe_multiplicity=plan.probe_multiplicity,
        groups=plan.grouping.num_groups,
    )


def hyper_join(
    dfs: DistributedFileSystem,
    build_block_ids: list[int],
    probe_block_ids: list[int],
    build_column: str,
    probe_column: str,
    buffer_blocks: int,
    build_predicates: list[Predicate] | None = None,
    probe_predicates: list[Predicate] | None = None,
    cost_model: CostModel | None = None,
    algorithm: str = "bottom_up",
) -> JoinStats:
    """Plan and execute a hyper-join in one call (convenience wrapper)."""
    plan = plan_hyper_join(
        dfs,
        build_block_ids,
        probe_block_ids,
        build_column,
        probe_column,
        buffer_blocks,
        algorithm,
    )
    return execute_hyper_join(
        dfs,
        plan,
        build_column,
        probe_column,
        build_predicates,
        probe_predicates,
        cost_model,
    )
