"""Hyper-join (Section 4.1).

Hyper-join avoids shuffling: it groups the build-side blocks into
memory-sized partitions (one hash table per group), and probes each hash
table with exactly the probe-side blocks whose join-attribute range overlaps
the group.  The cost is ``blocks(R) + C_HyJ · blocks(S)`` (equation (2)),
where ``C_HyJ`` is the average number of times a needed probe block is read —
1.0 for perfectly co-partitioned tables, larger when block ranges overlap
more widely.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cluster.costmodel import CostModel
from ..common.epochs import PartitionDelta, epoch_keyed
from ..common.errors import PlanningError
from ..common.lru import BoundedLRU
from ..common.predicates import Predicate
from ..common.sanitize import assert_no_shared_memory, sanitize_enabled
from ..storage.dfs import DistributedFileSystem
from .grouping import Grouping, average_probe_multiplicity, group_blocks, matrix_row_digests
from .kernels import KeyHistogram, join_match_count
from .overlap import Range, compute_overlap_matrix, patch_overlap_matrix
from .shuffle import JoinStats

#: ``(table_name, start_epoch, end_epoch) -> merged delta or None`` — how the
#: cache reaches :meth:`repro.storage.table.StoredTable.delta_between`
#: without importing the storage layer.
DeltaSource = Callable[[str, int, int], "PartitionDelta | None"]


@dataclass
class HyperJoinPlan:
    """A fully determined hyper-join schedule.

    Attributes:
        build_block_ids: Non-empty build-side blocks, in overlap-matrix order.
        probe_block_ids: Non-empty probe-side blocks, in overlap-matrix order.
        overlap: The boolean overlap matrix between the two block lists.
        grouping: The chosen grouping of build-side blocks.
        probe_multiplicity: Estimated ``C_HyJ`` for this schedule.
    """

    build_block_ids: list[int]
    probe_block_ids: list[int]
    overlap: np.ndarray
    grouping: Grouping
    probe_multiplicity: float

    @property
    def estimated_probe_reads(self) -> int:
        """Total probe-block reads the schedule will perform."""
        return self.grouping.total_probe_reads


@epoch_keyed(reads=("peek_block", "num_rows", "ranges", "range_of"))
def plan_hyper_join(
    dfs: DistributedFileSystem,
    build_block_ids: list[int],
    probe_block_ids: list[int],
    build_column: str,
    probe_column: str,
    buffer_blocks: int,
    algorithm: str = "bottom_up",
) -> HyperJoinPlan:
    """Compute the hyper-join schedule (overlap matrix + grouping).

    Empty blocks and blocks lacking join-attribute metadata are dropped —
    they cannot contribute join matches and incur no I/O.

    Args:
        dfs: The DFS holding both relations' blocks.
        build_block_ids: Candidate build-side blocks (hash tables are built
            over these).
        probe_block_ids: Candidate probe-side blocks.
        build_column / probe_column: Join attribute on each side.
        buffer_blocks: Memory budget ``B`` (build blocks per hash table).
        algorithm: Grouping algorithm name (see ``repro.join.grouping``).
    """
    if buffer_blocks < 1:
        raise PlanningError("buffer_blocks must be at least 1")

    def usable(block_ids: list[int], column: str) -> tuple[list[int], list[tuple[float, float]]]:
        ids: list[int] = []
        ranges: list[tuple[float, float]] = []
        for block_id in block_ids:
            block = dfs.peek_block(block_id)
            if block.num_rows == 0 or column not in block.ranges:
                continue
            ids.append(block_id)
            ranges.append(block.range_of(column))
        return ids, ranges

    build_ids, build_ranges = usable(build_block_ids, build_column)
    probe_ids, probe_ranges = usable(probe_block_ids, probe_column)

    overlap = compute_overlap_matrix(build_ranges, probe_ranges)
    grouping = group_blocks(overlap, buffer_blocks, algorithm) if build_ids else Grouping(groups=[])
    multiplicity = average_probe_multiplicity(overlap, grouping) if build_ids else 1.0
    return HyperJoinPlan(
        build_block_ids=build_ids,
        probe_block_ids=probe_ids,
        overlap=overlap,
        grouping=grouping,
        probe_multiplicity=multiplicity,
    )


@dataclass
class _CacheEntry:
    """One memoized schedule plus the state needed to delta-patch it later.

    ``build_ranges`` / ``probe_ranges`` map each *usable* block id to the
    join-attribute range it had when the plan was computed; ``row_digests``
    are the per-row content digests of ``plan.overlap`` (the grouping memo
    key material).  All containers are owned by the entry — upgrades build
    fresh ones, never aliasing a plan handed to a caller.
    """

    build_ranges: dict[int, Range]
    probe_ranges: dict[int, Range]
    row_digests: list[bytes]
    plan: HyperJoinPlan


class HyperPlanCache:
    """Bounded LRU memo of hyper-join schedules, keyed on partition-state epochs.

    The optimizer costs *both* build directions of every hyper-join on every
    query, and repeated-template workloads reproduce the same relevant block
    sets query after query once adaptation has converged.  At a fixed
    partition state the schedule is a pure function of the block-id lists and
    the planning knobs, so entries are keyed on::

        (state_token, build_ids, probe_ids, build_col, probe_col,
         buffer_blocks, algorithm)

    where ``state_token`` carries the ``(table, epoch)`` pairs of both sides.
    Any table mutation bumps its epoch and thereby orphans every entry that
    mentions it.  When the caller supplies a ``delta_source``, an orphan is
    not abandoned: the cache finds the newest entry for the same join
    template, asks both tables for the merged change descriptor spanning the
    stale and current epochs, and **patches** the schedule — re-peeking only
    changed blocks, rewriting only changed overlap rows/columns, and
    re-grouping through the digest-keyed memo — in O(changed × blocks)
    instead of recomputing in O(blocks²).  The patched plan is bit-identical
    to a cold recompute by construction; if either delta is unavailable
    (chain overflow) or blanket-full, the cache falls back to cold planning.

    Cached plans are shared and must be treated as read-only by consumers
    (they already are: compilation and execution only read them).  Patched
    plans are always *new* ``HyperJoinPlan`` objects with freshly allocated
    id lists and overlap matrices — an upgrade can never mutate arrays a
    caller already holds.

    The cache is held per optimizer instance, never globally — block ids are
    only unique within one DFS, and test suites run many engines side by
    side.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._cache: BoundedLRU[tuple, _CacheEntry] = BoundedLRU(capacity=capacity)
        #: join template -> full key of the newest entry for that template,
        #: the starting point for delta upgrades.
        self._history: dict[tuple, tuple] = {}
        self._upgrades = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lookups that had to plan from scratch or patch a stale entry."""
        return self._cache.misses

    @property
    def upgrades(self) -> int:
        """Misses resolved by delta-patching a stale entry (no cold replan)."""
        return self._upgrades

    @epoch_keyed(reads=("peek_block", "num_rows", "ranges", "range_of"))
    def get_or_plan(
        self,
        dfs: DistributedFileSystem,
        build_block_ids: list[int],
        probe_block_ids: list[int],
        build_column: str,
        probe_column: str,
        buffer_blocks: int,
        algorithm: str,
        state_token: tuple,
        delta_source: DeltaSource | None = None,
    ) -> HyperJoinPlan:
        """Return the cached schedule for this key, upgrading or planning on a miss."""
        key = (
            state_token,
            tuple(build_block_ids),
            tuple(probe_block_ids),
            build_column,
            probe_column,
            buffer_blocks,
            algorithm,
        )
        template = (
            state_token[0],
            state_token[2],
            build_column,
            probe_column,
            buffer_blocks,
            algorithm,
        )
        entry = self._cache.get(key)
        if entry is None:
            if delta_source is not None:
                entry = self._upgrade(
                    dfs, key, template, build_block_ids, probe_block_ids, delta_source
                )
                if entry is not None:
                    self._upgrades += 1
            if entry is None:
                plan = plan_hyper_join(
                    dfs,
                    build_block_ids,
                    probe_block_ids,
                    build_column,
                    probe_column,
                    buffer_blocks,
                    algorithm,
                )
                entry = _CacheEntry(
                    build_ranges={
                        block_id: dfs.peek_block(block_id).range_of(build_column)
                        for block_id in plan.build_block_ids
                    },
                    probe_ranges={
                        block_id: dfs.peek_block(block_id).range_of(probe_column)
                        for block_id in plan.probe_block_ids
                    },
                    row_digests=matrix_row_digests(plan.overlap),
                    plan=plan,
                )
            self._cache.put(key, entry)
        self._history[template] = key
        return entry.plan

    # ------------------------------------------------------------------ #
    # Delta upgrades
    # ------------------------------------------------------------------ #
    @epoch_keyed(reads=())
    def _upgrade(
        self,
        dfs: DistributedFileSystem,
        key: tuple,
        template: tuple,
        build_block_ids: list[int],
        probe_block_ids: list[int],
        delta_source: DeltaSource,
    ) -> _CacheEntry | None:
        """Patch the newest same-template entry up to ``key``'s state, if possible."""
        old_key = self._history.get(template)
        if old_key is None:
            return None
        old = self._cache.peek(old_key)
        if old is None:
            return None
        state_token = key[0]
        old_token = old_key[0]
        build_delta = delta_source(state_token[0], old_token[1], state_token[1])
        probe_delta = delta_source(state_token[2], old_token[3], state_token[3])
        if (
            build_delta is None
            or build_delta.full
            or probe_delta is None
            or probe_delta.full
        ):
            return None

        build_ids, build_ranges, kept_build = self._usable_via_delta(
            dfs, build_block_ids, key[3], set(old_key[1]), old.plan.build_block_ids,
            old.build_ranges, build_delta,
        )
        probe_ids, probe_ranges, kept_probe = self._usable_via_delta(
            dfs, probe_block_ids, key[4], set(old_key[2]), old.plan.probe_block_ids,
            old.probe_ranges, probe_delta,
        )

        build_same = (
            len(kept_build) == len(build_ids)
            and build_ids == old.plan.build_block_ids
        )
        probe_same = (
            len(kept_probe) == len(probe_ids)
            and probe_ids == old.plan.probe_block_ids
        )
        if build_same and probe_same:
            # Nothing this join reads actually changed — rebind the old
            # entry (shared read-only state) under the new epoch key.
            return old

        buffer_blocks, algorithm = key[5], key[6]
        overlap = patch_overlap_matrix(
            old.plan.overlap, build_ranges, probe_ranges, kept_build, kept_probe
        )
        if probe_same:
            # Probe columns are untouched, so a kept build row's bytes — and
            # therefore its digest — are unchanged; hash only fresh rows.
            contiguous = np.ascontiguousarray(overlap, dtype=bool)
            kept_rows = dict(kept_build)
            row_digests = [
                old.row_digests[kept_rows[row]]
                if row in kept_rows
                else hashlib.blake2b(
                    contiguous[row].tobytes(), digest_size=16
                ).digest()
                for row in range(len(build_ids))
            ]
        else:
            row_digests = matrix_row_digests(overlap)
        if build_ids:
            grouping = group_blocks(
                overlap, buffer_blocks, algorithm, row_digests=row_digests
            )
            multiplicity = average_probe_multiplicity(overlap, grouping)
        else:
            grouping = Grouping(groups=[])
            multiplicity = 1.0
        if sanitize_enabled():
            # The patched matrix must be fresh storage: sharing memory with
            # the old entry would mean the in-place patch corrupted it.
            assert_no_shared_memory(
                overlap, old.plan.overlap, "HyperPlanCache upgrade overlap"
            )
        plan = HyperJoinPlan(
            build_block_ids=list(build_ids),
            probe_block_ids=list(probe_ids),
            overlap=overlap,
            grouping=grouping,
            probe_multiplicity=multiplicity,
        )
        return _CacheEntry(
            build_ranges=dict(zip(build_ids, build_ranges)),
            probe_ranges=dict(zip(probe_ids, probe_ranges)),
            row_digests=row_digests,
            plan=plan,
        )

    @epoch_keyed(reads=("peek_block", "num_rows", "ranges", "range_of"))
    def _usable_via_delta(
        self,
        dfs: DistributedFileSystem,
        candidate_ids: list[int],
        column: str,
        old_candidates: set[int],
        old_usable_ids: list[int],
        old_ranges: dict[int, Range],
        delta: PartitionDelta,
    ) -> tuple[list[int], list[Range], list[tuple[int, int]]]:
        """One side's usable-block filter, peeking only blocks the delta touched.

        A candidate examined for the old entry and untouched by the delta
        kept its contents, so its usability verdict and cached range are
        reused; everything else (new candidates, changed blocks) goes
        through the same peek-and-filter as ``plan_hyper_join``.  Returns
        the usable ids, their ranges, and ``(new_index, old_index)`` pairs
        for reused rows/columns.
        """
        touched = delta.touched_blocks
        old_index = {block_id: i for i, block_id in enumerate(old_usable_ids)}
        ids: list[int] = []
        ranges: list[Range] = []
        kept: list[tuple[int, int]] = []
        for block_id in candidate_ids:
            if block_id in old_candidates and block_id not in touched:
                cached_range = old_ranges.get(block_id)
                if cached_range is None:
                    continue  # examined before: empty or range-less, still is
                kept.append((len(ids), old_index[block_id]))
                ids.append(block_id)
                ranges.append(cached_range)
            else:
                block = dfs.peek_block(block_id)
                if block.num_rows == 0 or column not in block.ranges:
                    continue
                ids.append(block_id)
                ranges.append(block.range_of(column))
        return ids, ranges, kept


def execute_hyper_join(
    dfs: DistributedFileSystem,
    plan: HyperJoinPlan,
    build_column: str,
    probe_column: str,
    build_predicates: list[Predicate] | None = None,
    probe_predicates: list[Predicate] | None = None,
    cost_model: CostModel | None = None,
) -> JoinStats:
    """Run a hyper-join according to ``plan`` and account its I/O.

    For every group: the group's build blocks are read once and a hash table
    (key histogram) is built over their filtered rows; every probe block
    overlapping the group is then read and probed.

    Returns:
        A :class:`JoinStats` with ``method="hyper"``.
    """
    cost_model = cost_model or CostModel()
    build_predicates = build_predicates or []
    probe_predicates = probe_predicates or []

    build_reads = 0
    probe_reads = 0
    output_rows = 0

    for group in plan.grouping.groups:
        histograms: list[KeyHistogram] = []
        for index in group:
            block = dfs.get_block(plan.build_block_ids[index])
            build_reads += 1
            rows = block.filtered(build_predicates)
            histograms.append(KeyHistogram.from_keys(rows[build_column]))
        build_histogram = KeyHistogram.merge(histograms)

        group_union = plan.overlap[group].any(axis=0) if group else np.zeros(0, dtype=bool)
        for probe_index in np.flatnonzero(group_union):
            block = dfs.get_block(plan.probe_block_ids[int(probe_index)])
            probe_reads += 1
            rows = block.filtered(probe_predicates)
            probe_histogram = KeyHistogram.from_keys(rows[probe_column])
            output_rows += join_match_count(build_histogram, probe_histogram)

    cost = cost_model.hyper_join_cost(build_reads, probe_reads)
    return JoinStats(
        method="hyper",
        build_blocks_read=build_reads,
        probe_blocks_read=probe_reads,
        shuffled_blocks=0,
        output_rows=output_rows,
        cost_units=cost,
        probe_multiplicity=plan.probe_multiplicity,
        groups=plan.grouping.num_groups,
    )


def hyper_join(
    dfs: DistributedFileSystem,
    build_block_ids: list[int],
    probe_block_ids: list[int],
    build_column: str,
    probe_column: str,
    buffer_blocks: int,
    build_predicates: list[Predicate] | None = None,
    probe_predicates: list[Predicate] | None = None,
    cost_model: CostModel | None = None,
    algorithm: str = "bottom_up",
) -> JoinStats:
    """Plan and execute a hyper-join in one call (convenience wrapper)."""
    plan = plan_hyper_join(
        dfs,
        build_block_ids,
        probe_block_ids,
        build_column,
        probe_column,
        buffer_blocks,
        algorithm,
    )
    return execute_hyper_join(
        dfs,
        plan,
        build_column,
        probe_column,
        build_predicates,
        probe_predicates,
        cost_model,
    )
