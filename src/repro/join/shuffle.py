"""Shuffle join (the baseline distributed join, Section 4.2).

A shuffle join reads every relevant block of both relations, hash-partitions
each record on the join key, writes the partitioned runs, and re-reads them
to join partition-by-partition.  Per the paper's cost model every relevant
block therefore costs roughly ``CSJ = 3`` block accesses (equation (1)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.costmodel import CostModel
from ..common.predicates import Predicate
from ..storage.dfs import DistributedFileSystem
from .kernels import KeyHistogram, hash_partition, join_match_count


@dataclass
class JoinStats:
    """I/O and output accounting for one join execution."""

    method: str
    build_blocks_read: int = 0
    probe_blocks_read: int = 0
    shuffled_blocks: int = 0
    output_rows: int = 0
    cost_units: float = 0.0
    probe_multiplicity: float = 1.0
    groups: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_blocks_read(self) -> int:
        """Blocks read from both sides (first pass only)."""
        return self.build_blocks_read + self.probe_blocks_read


def shuffle_join(
    dfs: DistributedFileSystem,
    left_block_ids: list[int],
    right_block_ids: list[int],
    left_column: str,
    right_column: str,
    left_predicates: list[Predicate] | None = None,
    right_predicates: list[Predicate] | None = None,
    cost_model: CostModel | None = None,
    num_partitions: int | None = None,
) -> JoinStats:
    """Execute a shuffle join over the given blocks.

    Both relations' relevant blocks are read once, hash-partitioned on the
    join key, and joined partition-wise; the cost model charges ``CSJ`` per
    block to account for the extra write/read of the shuffled runs.

    Returns:
        A :class:`JoinStats` with ``method="shuffle"``.
    """
    cost_model = cost_model or CostModel()
    left_predicates = left_predicates or []
    right_predicates = right_predicates or []
    if num_partitions is None:
        num_partitions = max(1, dfs.cluster.num_machines)

    left_partitions: list[list[np.ndarray]] = [[] for _ in range(num_partitions)]
    right_partitions: list[list[np.ndarray]] = [[] for _ in range(num_partitions)]

    def read_side(block_ids: list[int], column: str, predicates: list[Predicate],
                  partitions: list[list[np.ndarray]]) -> int:
        blocks_read = 0
        for block_id in block_ids:
            block = dfs.get_block(block_id)
            if block.num_rows == 0:
                continue
            blocks_read += 1
            rows = block.filtered(predicates)
            keys = rows[column]
            if len(keys) == 0:
                continue
            assignment = hash_partition(keys, num_partitions)
            for partition in np.unique(assignment):
                partitions[int(partition)].append(keys[assignment == partition])
        return blocks_read

    left_read = read_side(left_block_ids, left_column, left_predicates, left_partitions)
    right_read = read_side(right_block_ids, right_column, right_predicates, right_partitions)

    output_rows = 0
    for partition in range(num_partitions):
        left_keys = (
            np.concatenate(left_partitions[partition])
            if left_partitions[partition]
            else np.empty(0, dtype=np.int64)
        )
        right_keys = (
            np.concatenate(right_partitions[partition])
            if right_partitions[partition]
            else np.empty(0, dtype=np.int64)
        )
        output_rows += join_match_count(
            KeyHistogram.from_keys(left_keys), KeyHistogram.from_keys(right_keys)
        )

    cost = cost_model.shuffle_join_cost(left_read, right_read)
    return JoinStats(
        method="shuffle",
        build_blocks_read=left_read,
        probe_blocks_read=right_read,
        shuffled_blocks=left_read + right_read,
        output_rows=output_rows,
        cost_units=cost,
    )
