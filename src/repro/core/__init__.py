"""AdaptDB core: configuration, optimizer, planner, executor, and the facade."""

from .adaptdb import AdaptDB
from .config import AdaptDBConfig
from .executor import Executor, QueryResult
from .optimizer import JoinDecision, Optimizer, QueryPlan
from .planner import JoinCase, JoinClassification, JoinMethod, classify_join

__all__ = [
    "AdaptDB",
    "AdaptDBConfig",
    "Executor",
    "JoinCase",
    "JoinClassification",
    "JoinDecision",
    "JoinMethod",
    "Optimizer",
    "QueryPlan",
    "QueryResult",
    "classify_join",
]
