"""The AdaptDB facade — a compatibility shim over :class:`repro.api.Session`.

New code should use the staged session API directly::

    from repro.api import Session
    from repro import AdaptDBConfig

    session = Session(AdaptDBConfig(rows_per_block=1024))
    session.load_table(table)
    logical = session.plan(query)     # LogicalPlan, with explain()
    result = session.execute(session.lower(logical))

``AdaptDB`` is kept so existing callers (and the paper-era examples) keep
working unchanged; ``plan``/``run``/``run_workload`` are thin delegations to
an owned session, and the component attributes (``cluster``, ``dfs``,
``catalog``, ``optimizer``, ``executor``, ``rng``) are read-through views of
the session's.  The facade will stay, but new lifecycle features (plan
caching statistics, backend selection, explain) land on the session only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api.session import Session
from ..common.query import Query
from ..partitioning.tree import PartitioningTree
from ..storage.table import ColumnTable, StoredTable
from .config import AdaptDBConfig
from .executor import Executor, QueryResult
from .optimizer import Optimizer, QueryPlan


@dataclass
class AdaptDB:
    """An AdaptDB storage-manager instance over a simulated cluster.

    Attributes:
        config: Instance configuration.
        session: The staged-lifecycle session doing the actual work.  One is
            created from ``config`` when not supplied, so ``AdaptDB(config)``
            behaves exactly as before the session API existed.
    """

    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    session: Session | None = None

    def __post_init__(self) -> None:
        if self.session is None:
            self.session = Session(config=self.config)
        else:
            self.config = self.session.config

    # ------------------------------------------------------------------ #
    # Component views (compat with the pre-session attribute surface)
    # ------------------------------------------------------------------ #
    @property
    def cluster(self):
        """The simulated cluster."""
        return self.session.cluster

    @property
    def dfs(self):
        """The simulated distributed file system."""
        return self.session.dfs

    @property
    def catalog(self):
        """Registered tables."""
        return self.session.catalog

    @property
    def optimizer(self) -> Optimizer:
        """The session's optimizer."""
        return self.session.optimizer

    @property
    def executor(self) -> Executor:
        """The task engine's executor."""
        return self.session.executor

    @property
    def rng(self) -> np.random.Generator:
        """The session's root random generator."""
        return self.session.rng

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load_table(
        self,
        table: ColumnTable,
        partition_attributes: list[str] | None = None,
        tree: "PartitioningTree | None" = None,
    ) -> StoredTable:
        """Partition ``table`` and register it (see :meth:`Session.load_table`)."""
        return self.session.load_table(table, partition_attributes, tree)

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def plan(self, query: Query, adapt: bool = True) -> QueryPlan:
        """Plan a query (optionally without performing adaptation)."""
        return self.session.plan(query, adapt=adapt)

    def run(self, query: Query, adapt: bool = True) -> QueryResult:
        """Plan and execute ``query``, returning its accounted result."""
        return self.session.run(query, adapt=adapt)

    def run_workload(self, queries: list[Query], adapt: bool = True) -> list[QueryResult]:
        """Run a sequence of queries, adapting after each one."""
        return self.session.run_workload(queries, adapt=adapt)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def table(self, name: str) -> StoredTable:
        """Return a registered table by name."""
        return self.session.table(name)

    def describe(self) -> str:
        """Multi-line summary of every table's partitioning state."""
        return self.session.describe()
