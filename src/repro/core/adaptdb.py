"""The AdaptDB facade: the library's main public entry point.

Typical usage::

    from repro import AdaptDB, AdaptDBConfig
    from repro.workloads import TPCHGenerator, tpch_query

    db = AdaptDB(AdaptDBConfig(rows_per_block=1024))
    for table in TPCHGenerator(scale=0.5).generate().values():
        db.load_table(table)
    result = db.run(tpch_query("q12", db.rng))
    print(result.runtime_seconds, result.join_methods)

``AdaptDB`` wires together the simulated cluster and DFS, the upfront
partitioner, the adaptive repartitioner (smooth + Amoeba), the cost-based
optimizer, and the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adaptive.repartitioner import AdaptiveRepartitioner
from ..cluster.cluster import Cluster
from ..cluster.costmodel import CostModel
from ..common.errors import StorageError
from ..common.query import Query
from ..common.rng import derive_rng, make_rng
from ..partitioning.tree import PartitioningTree
from ..partitioning.upfront import UpfrontPartitioner
from ..storage.catalog import Catalog
from ..storage.dfs import DistributedFileSystem
from ..storage.table import ColumnTable, StoredTable
from .config import AdaptDBConfig
from .executor import Executor, QueryResult
from .optimizer import Optimizer, QueryPlan


@dataclass
class AdaptDB:
    """An AdaptDB storage-manager instance over a simulated cluster.

    Attributes:
        config: Instance configuration.
        cluster: The simulated cluster (created from the config).
        dfs: The simulated distributed file system.
        catalog: Registered tables.
    """

    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    cluster: Cluster = field(init=False)
    dfs: DistributedFileSystem = field(init=False)
    catalog: Catalog = field(init=False)
    optimizer: Optimizer = field(init=False)
    executor: Executor = field(init=False)
    rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        self.rng = make_rng(self.config.seed)
        cost_model = CostModel(
            shuffle_factor=self.config.shuffle_cost_factor,
            seconds_per_block=self.config.seconds_per_block,
            parallelism=self.config.num_machines,
        )
        self.cluster = Cluster(
            num_machines=self.config.num_machines,
            cost_model=cost_model,
        )
        self.dfs = DistributedFileSystem(
            cluster=self.cluster,
            replication=self.config.replication,
            rng=derive_rng(self.rng, "dfs"),
        )
        self.catalog = Catalog()
        repartitioner = AdaptiveRepartitioner(
            window_size=self.config.window_size,
            rows_per_block=self.config.rows_per_block,
            join_level_fraction=self.config.join_level_fraction,
            min_frequency=self.config.min_frequency,
            join_levels_override=self.config.join_levels_override,
            enable_smooth=self.config.enable_smooth,
            enable_amoeba=self.config.enable_amoeba,
            rng=derive_rng(self.rng, "repartitioner"),
        )
        self.optimizer = Optimizer(
            catalog=self.catalog,
            cluster=self.cluster,
            config=self.config,
            repartitioner=repartitioner,
        )
        self.executor = Executor(
            catalog=self.catalog,
            cluster=self.cluster,
            config=self.config,
        )

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load_table(
        self,
        table: ColumnTable,
        partition_attributes: list[str] | None = None,
        tree: "PartitioningTree | None" = None,
    ) -> StoredTable:
        """Partition ``table`` and register it with the instance.

        By default the Amoeba upfront partitioner builds the initial tree
        (no workload knowledge); callers that *do* know the workload (the
        PREF and hand-tuned baselines, or a user who "requests" a join tree,
        Section 5.1) may pass a pre-built ``tree`` instead.

        Args:
            table: The raw in-memory table.
            partition_attributes: Attributes the upfront partitioner may use;
                defaults to every column.  Ignored when ``tree`` is given.
            tree: Optional pre-built partitioning tree with unbound leaves.

        Returns:
            The registered :class:`StoredTable`.
        """
        if table.name in self.catalog:
            raise StorageError(f"table {table.name!r} already loaded")
        if tree is None:
            attributes = partition_attributes or table.schema.column_names
            partitioner = UpfrontPartitioner(
                attributes=attributes, rows_per_block=self.config.rows_per_block
            )
            sample = table.sample(
                self.config.sample_size, derive_rng(self.rng, f"sample:{table.name}")
            )
            tree = partitioner.build(sample, total_rows=table.num_rows)
        stored = StoredTable.load(
            table,
            self.dfs,
            tree,
            rows_per_block=self.config.rows_per_block,
            sample_size=self.config.sample_size,
            rng=derive_rng(self.rng, f"stored-sample:{table.name}"),
        )
        self.catalog.register(stored)
        return stored

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def plan(self, query: Query, adapt: bool = True) -> QueryPlan:
        """Plan a query (optionally without performing adaptation)."""
        return self.optimizer.plan_query(query, adapt=adapt)

    def run(self, query: Query, adapt: bool = True) -> QueryResult:
        """Plan and execute ``query``, returning its accounted result."""
        self.dfs.reset_read_stats()
        plan = self.plan(query, adapt=adapt)
        return self.executor.execute(plan)

    def run_workload(self, queries: list[Query], adapt: bool = True) -> list[QueryResult]:
        """Run a sequence of queries, adapting after each one."""
        return [self.run(query, adapt=adapt) for query in queries]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def table(self, name: str) -> StoredTable:
        """Return a registered table by name."""
        return self.catalog.get(name)

    def describe(self) -> str:
        """Multi-line summary of every table's partitioning state."""
        return "\n".join(table.describe() for table in self.catalog.tables())
