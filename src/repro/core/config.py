"""AdaptDB configuration.

One :class:`AdaptDBConfig` object captures every tunable studied in the
paper's sensitivity analysis (Section 7.4) plus the simulation-scale knobs
introduced by the reproduction (rows per block instead of 64 MB, etc.).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..common.errors import PlanningError


@dataclass
class AdaptDBConfig:
    """Configuration of one AdaptDB instance.

    Attributes:
        num_machines: Worker nodes in the simulated cluster (paper: 10).
        rows_per_block: Target rows per storage block (stand-in for the 64 MB
            HDFS block size).
        buffer_blocks: Memory budget ``B`` of the hyper-join — how many
            build-side blocks fit in one worker's hash-table memory
            (Figure 14 sweeps this).
        window_size: Query-window length ``|W|`` (Figure 15 sweeps this).
        join_level_fraction: Fraction of tree levels reserved for the join
            attribute in two-phase trees (Figure 16 sweeps this; paper
            default is one half).
        join_levels_override: Absolute number of join levels; overrides the
            fraction when not ``None``.
        min_frequency: Minimum number of window queries with a new join
            attribute before a tree is created for it (``fmin``).
        enable_smooth: Enable join-driven smooth repartitioning.
        enable_amoeba: Enable selection-driven Amoeba refinement.
        enable_pruning: Use partitioning trees to skip blocks; disabling this
            models the Full Scan baseline.
        force_join_method: ``None`` (cost-based choice), ``"shuffle"`` or
            ``"hyper"`` to force a join algorithm for ablation runs.
        grouping_algorithm: Block-grouping heuristic used by hyper-join.
        sample_size: Rows retained in each table's sample.
        replication: DFS replication factor.
        seed: Seed for all randomized choices.
        shuffle_cost_factor: The cost model's ``CSJ`` constant.
        seconds_per_block: Cost-unit to modelled-seconds conversion factor.
        execution_backend: Which :class:`~repro.api.ExecutionBackend` a
            session executes through: ``"tasks"`` (the task-based parallel
            engine, with makespan accounting), ``"serial"`` (the paper's
            idealised serial-sum model), ``"simulated"`` (the task engine
            plus the ``repro.sim`` discrete-event simulator: stage barriers,
            queueing, repartition-bandwidth contention), or ``"parallel"``
            (true multi-core execution on a persistent worker pool with
            shared-memory block transport, ``repro.parallel``).
        num_workers: Worker processes of the parallel backend; ``None``
            means one worker per simulated machine.
        worker_start_method: ``multiprocessing`` start method for the
            parallel backend's pool (``"fork"`` / ``"spawn"`` /
            ``"forkserver"``); ``None`` picks ``fork`` where available,
            else ``spawn``.
        sim_repartition_bandwidth: Cluster-wide cap on repartition tasks
            running concurrently in the simulator — the bounded I/O budget
            adaptation work gets, so it contends with query tasks instead of
            spreading for free.
        plan_cache_size: Capacity of the session's epoch-keyed plan cache
            (entries); ``0`` disables plan caching entirely.
        incremental_planning: Maintain cached planning state *across* epoch
            bumps: stale hyper-plan memo entries are delta-patched instead of
            recomputed, and compiled session plans are revalidated against
            the tables' change descriptors.  Decisions are bit-identical
            either way; disabling falls back to invalidate-and-recompute
            (the pre-delta behaviour, kept for benchmarking).
        delta_chain_limit: Change descriptors retained per table.  A cached
            artifact older than this many epoch bumps can no longer be
            patched and is recomputed cold (bounds delta-chain memory).
        calibrated_cost_model: Replace the nominal ``seconds_per_block``
            with the machine-calibrated ``seconds_per_unit`` fitted by
            ``repro.parallel.calibrate`` (read from ``BENCH_adaptation.json``
            when available), so modelled runtimes track this host's measured
            multi-core execution.
        persistence: ``"memory"`` (default; blocks live purely in RAM) or
            ``"mmap"`` — blocks spill to memory-mapped per-column files
            under ``storage_root``, all reads route through a byte-budgeted
            LRU buffer, and ``Session.checkpoint()`` / ``Session.open()``
            provide epoch-aware crash recovery.  The default can be
            overridden with the ``REPRO_PERSISTENCE`` environment variable
            (an explicit constructor argument always wins).
        storage_root: Directory holding the spill files and catalog of an
            ``"mmap"`` session.  ``None`` lets the session create a unique
            temporary root (under ``REPRO_STORAGE_ROOT`` when that is set).
        buffer_bytes: Byte budget of the block buffer; ``None`` means
            unbounded (blocks spill only at checkpoints).  Only meaningful
            with ``persistence="mmap"``.  When unset, ``REPRO_BUFFER_BYTES``
            supplies a default for mmap sessions.
    """

    num_machines: int = 10
    rows_per_block: int = 2048
    buffer_blocks: int = 16
    window_size: int = 10
    join_level_fraction: float = 0.5
    join_levels_override: int | None = None
    min_frequency: int = 1
    enable_smooth: bool = True
    enable_amoeba: bool = True
    enable_pruning: bool = True
    force_join_method: str | None = None
    grouping_algorithm: str = "bottom_up"
    sample_size: int = 10_000
    replication: int = 3
    seed: int = 20170101
    shuffle_cost_factor: float = 3.0
    seconds_per_block: float = 1.0
    execution_backend: str = "tasks"
    num_workers: int | None = None
    worker_start_method: str | None = None
    sim_repartition_bandwidth: int = 2
    plan_cache_size: int = 64
    incremental_planning: bool = True
    delta_chain_limit: int = 64
    calibrated_cost_model: bool = False
    persistence: str = ""
    storage_root: str | None = None
    buffer_bytes: int | None = None

    def __post_init__(self) -> None:
        # Resolve the persistence knobs against the environment first: an
        # empty persistence field means "unset", which REPRO_PERSISTENCE may
        # default (the CI persistence job runs the whole tier-1 suite this
        # way); an explicit constructor argument always wins.  The resolved
        # values are written back so a checkpointed config round-trips.
        if not self.persistence:
            self.persistence = os.environ.get("REPRO_PERSISTENCE", "") or "memory"
        if (
            self.buffer_bytes is None
            and self.persistence == "mmap"
            and os.environ.get("REPRO_BUFFER_BYTES", "")
        ):
            env_budget = int(os.environ["REPRO_BUFFER_BYTES"])
            # REPRO_BUFFER_BYTES=0 means explicitly unbounded.
            self.buffer_bytes = env_budget if env_budget > 0 else None
        if self.rows_per_block <= 0:
            raise PlanningError("rows_per_block must be positive")
        if self.buffer_blocks < 1:
            raise PlanningError("buffer_blocks must be at least 1")
        if self.window_size < 1:
            raise PlanningError("window_size must be at least 1")
        if not 0.0 <= self.join_level_fraction <= 1.0:
            raise PlanningError("join_level_fraction must be in [0, 1]")
        if self.force_join_method not in (None, "shuffle", "hyper"):
            raise PlanningError("force_join_method must be None, 'shuffle' or 'hyper'")
        if self.execution_backend not in ("tasks", "serial", "simulated", "parallel"):
            raise PlanningError(
                "execution_backend must be 'tasks', 'serial', 'simulated' "
                "or 'parallel'"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise PlanningError("num_workers must be at least 1 (or None)")
        if self.worker_start_method not in (None, "fork", "spawn", "forkserver"):
            raise PlanningError(
                "worker_start_method must be None, 'fork', 'spawn' or 'forkserver'"
            )
        if self.sim_repartition_bandwidth < 1:
            raise PlanningError("sim_repartition_bandwidth must be at least 1")
        if self.plan_cache_size < 0:
            raise PlanningError("plan_cache_size must be non-negative")
        if self.delta_chain_limit < 1:
            raise PlanningError("delta_chain_limit must be at least 1")
        if self.persistence not in ("memory", "mmap"):
            raise PlanningError("persistence must be 'memory' or 'mmap'")
        if self.persistence == "memory":
            if self.storage_root is not None:
                raise PlanningError(
                    "storage_root is only meaningful with persistence='mmap'"
                )
            if self.buffer_bytes is not None:
                raise PlanningError(
                    "buffer_bytes is only meaningful with persistence='mmap'"
                )
        if self.buffer_bytes is not None and self.buffer_bytes < 1:
            raise PlanningError("buffer_bytes must be at least 1 (or None)")
