"""The AdaptDB optimizer (Sections 5.4 and 6).

Per query the optimizer does two things:

1. **Adaptation** — it lets the adaptive repartitioner migrate blocks (smooth
   repartitioning for join attributes, Amoeba refinement for selections) and
   records how much work that was; those are the paper's Type 2 blocks.
2. **Join-method choice** — for every join clause it estimates ``Cost-SJ``
   and ``Cost-HyJ`` from the relevant block sets (using the bottom-up
   grouping algorithm to estimate ``C_HyJ``) and picks the cheaper method,
   unless the configuration forces one.

The result is a :class:`QueryPlan` that the executor can run without making
further decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adaptive.repartitioner import AdaptiveRepartitioner, RepartitionReport
from ..cluster.cluster import Cluster
from ..common.epochs import epoch_keyed
from ..common.errors import PlanningError
from ..common.query import JoinClause, Query
from ..join.hyperjoin import HyperJoinPlan, HyperPlanCache, plan_hyper_join
from ..storage.catalog import Catalog
from .config import AdaptDBConfig
from .planner import JoinClassification, JoinMethod, classify_join


@dataclass
class JoinDecision:
    """The optimizer's decision for one join clause.

    Attributes:
        clause: The join clause.
        method: Chosen join algorithm.
        classification: The planner's structural classification.
        build_table / probe_table: Sides of the hyper-join (build side holds
            the hash tables); for shuffle joins the labels are kept for
            reporting symmetry.
        build_blocks / probe_blocks: Relevant block ids per side.
        hyper_plan: The hyper-join schedule (``None`` for shuffle joins).
        estimated_shuffle_cost / estimated_hyper_cost: Cost-model estimates
            used to make the decision.
    """

    clause: JoinClause
    method: JoinMethod
    classification: JoinClassification
    build_table: str
    probe_table: str
    build_blocks: list[int]
    probe_blocks: list[int]
    hyper_plan: HyperJoinPlan | None
    estimated_shuffle_cost: float
    estimated_hyper_cost: float


@dataclass
class QueryPlan:
    """Everything the executor needs to run one query."""

    query: Query
    scan_tables: list[str]
    scan_blocks: dict[str, list[int]]
    join_decisions: list[JoinDecision]
    adaptation: RepartitionReport = field(default_factory=RepartitionReport)


@dataclass
class Optimizer:
    """Cost-based join-method selection plus adaptation orchestration.

    When ``hyper_cache`` is set, hyper-join schedules (overlap matrix +
    grouping) are memoized across queries keyed on both tables' partition-
    state epochs — repeated-template workloads re-cost the same block sets
    every query and hit the cache once adaptation converges.
    """

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig
    repartitioner: AdaptiveRepartitioner | None = None
    hyper_cache: HyperPlanCache | None = None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def plan_query(self, query: Query, adapt: bool = True) -> QueryPlan:
        """Adapt the layout (optionally) and produce an executable plan."""
        adaptation = RepartitionReport()
        if adapt and self.repartitioner is not None:
            adaptation = self.repartitioner.on_query(self.catalog, query)

        joined_tables = {table for clause in query.joins for table in (clause.left_table, clause.right_table)}
        scan_tables = [table for table in query.tables if table not in joined_tables]
        scan_blocks = {
            table: self._relevant_blocks(table, query) for table in scan_tables
        }
        decisions = [self._decide_join(query, clause) for clause in query.joins]
        return QueryPlan(
            query=query,
            scan_tables=scan_tables,
            scan_blocks=scan_blocks,
            join_decisions=decisions,
            adaptation=adaptation,
        )

    # ------------------------------------------------------------------ #
    # Join decisions
    # ------------------------------------------------------------------ #
    def _decide_join(self, query: Query, clause: JoinClause) -> JoinDecision:
        classification = classify_join(self.catalog, clause)
        left_blocks = self._relevant_blocks(clause.left_table, query)
        right_blocks = self._relevant_blocks(clause.right_table, query)

        shuffle_cost = self.cluster.cost_model.shuffle_join_cost(
            len(left_blocks), len(right_blocks)
        )

        # Evaluate hyper-join with either side as the build side and keep the
        # cheaper schedule.  The build side is grouped into hash tables, the
        # probe side is re-read according to the grouping.
        candidates: list[tuple[float, str, str, list[int], list[int], HyperJoinPlan]] = []
        for build_table, probe_table, build_blocks, probe_blocks, build_col, probe_col in (
            (clause.left_table, clause.right_table, left_blocks, right_blocks,
             clause.left_column, clause.right_column),
            (clause.right_table, clause.left_table, right_blocks, left_blocks,
             clause.right_column, clause.left_column),
        ):
            plan = self._hyper_plan(
                build_table, probe_table, build_blocks, probe_blocks, build_col, probe_col
            )
            cost = self.cluster.cost_model.hyper_join_cost(
                len(plan.build_block_ids), plan.estimated_probe_reads
            )
            candidates.append((cost, build_table, probe_table, build_blocks, probe_blocks, plan))

        hyper_cost, build_table, probe_table, build_blocks, probe_blocks, hyper_plan = min(
            candidates, key=lambda candidate: candidate[0]
        )

        method = self._choose_method(shuffle_cost, hyper_cost)
        return JoinDecision(
            clause=clause,
            method=method,
            classification=classification,
            build_table=build_table,
            probe_table=probe_table,
            build_blocks=build_blocks,
            probe_blocks=probe_blocks,
            hyper_plan=hyper_plan,
            estimated_shuffle_cost=shuffle_cost,
            estimated_hyper_cost=hyper_cost,
        )

    @epoch_keyed(reads=("epoch", "delta_between"))
    def _hyper_plan(
        self,
        build_table: str,
        probe_table: str,
        build_blocks: list[int],
        probe_blocks: list[int],
        build_col: str,
        probe_col: str,
    ) -> HyperJoinPlan:
        """Plan one hyper-join direction, through the epoch-keyed cache if set."""
        dfs = self.catalog.get(build_table).dfs
        if self.hyper_cache is None:
            return plan_hyper_join(
                dfs,
                build_blocks,
                probe_blocks,
                build_col,
                probe_col,
                self.config.buffer_blocks,
                self.config.grouping_algorithm,
            )
        state_token = (
            build_table,
            self.catalog.get(build_table).epoch,
            probe_table,
            self.catalog.get(probe_table).epoch,
        )
        delta_source = None
        if self.config.incremental_planning:
            delta_source = lambda name, start, end: self.catalog.get(  # noqa: E731
                name
            ).delta_between(start, end)
        return self.hyper_cache.get_or_plan(
            dfs,
            build_blocks,
            probe_blocks,
            build_col,
            probe_col,
            self.config.buffer_blocks,
            self.config.grouping_algorithm,
            state_token,
            delta_source=delta_source,
        )

    def _choose_method(self, shuffle_cost: float, hyper_cost: float) -> JoinMethod:
        if self.config.force_join_method == "shuffle":
            return JoinMethod.SHUFFLE
        if self.config.force_join_method == "hyper":
            return JoinMethod.HYPER
        return JoinMethod.HYPER if hyper_cost <= shuffle_cost else JoinMethod.SHUFFLE

    # ------------------------------------------------------------------ #
    # Block relevance
    # ------------------------------------------------------------------ #
    def relevant_blocks(self, table_name: str, query: Query) -> list[int]:
        """Public view of the relevant-block computation.

        Used by the session's plan-cache revalidation to compare a cached
        plan's recorded block sets against the current partition state.
        """
        return self._relevant_blocks(table_name, query)

    @epoch_keyed(reads=("lookup", "non_empty_block_ids"))
    def _relevant_blocks(self, table_name: str, query: Query) -> list[int]:
        """Blocks of ``table_name`` that must be read for ``query``.

        With pruning enabled this is the union of the table's trees' lookups
        under the query's predicates; without pruning it is every non-empty
        block (the Full Scan baseline).
        """
        if table_name not in self.catalog:
            raise PlanningError(f"query references unknown table {table_name!r}")
        table = self.catalog.get(table_name)
        if not self.config.enable_pruning:
            return table.non_empty_block_ids()
        return table.lookup(query.predicates_on(table_name))
