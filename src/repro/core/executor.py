"""Query executor (Section 6, "Query Executor") — compatibility shim.

The executor proper lives in :mod:`repro.exec`: query plans are compiled into
per-machine task lists (scan, shuffle map/reduce, hyper-join group and
repartition tasks), placed by a locality-aware scheduler and executed with
batched block reads.  This module re-exports the public names so existing
imports (``from repro.core.executor import Executor, QueryResult``) keep
working.
"""

from __future__ import annotations

from ..exec.engine import Executor
from ..exec.result import QueryResult

__all__ = ["Executor", "QueryResult"]
