"""Query executor (Section 6, "Query Executor").

The executor turns a :class:`QueryPlan` into block reads: scan tasks for
single-table access, shuffle-join or hyper-join tasks per join decision, plus
the repartitioning work the optimizer scheduled for this query (Type 2
blocks).  All I/O is accounted through the cost model so every query run
yields the block counts and modelled runtime the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import Cluster
from ..common.query import Query
from ..join.hyperjoin import execute_hyper_join, plan_hyper_join
from ..join.shuffle import JoinStats, shuffle_join
from ..storage.catalog import Catalog
from .config import AdaptDBConfig
from .optimizer import JoinDecision, QueryPlan
from .planner import JoinMethod


@dataclass
class QueryResult:
    """Outcome and accounting of one executed query.

    Attributes:
        query: The executed query.
        output_rows: Join output cardinality (or matching row count for pure
            scans).
        blocks_read: Total blocks read by scans and joins (first-pass reads).
        blocks_repartitioned: Blocks rewritten by adaptation during this query.
        shuffled_blocks: Blocks that went through a shuffle.
        cost_units: Total modelled cost in block accesses.
        runtime_seconds: Cost converted to modelled seconds.
        join_methods: Join algorithm used per join clause.
        join_stats: Detailed per-join statistics.
        trees_created: New partitioning trees created while adapting.
    """

    query: Query
    output_rows: int = 0
    blocks_read: int = 0
    blocks_repartitioned: int = 0
    shuffled_blocks: int = 0
    cost_units: float = 0.0
    runtime_seconds: float = 0.0
    join_methods: list[str] = field(default_factory=list)
    join_stats: list[JoinStats] = field(default_factory=list)
    trees_created: int = 0

    @property
    def used_hyper_join(self) -> bool:
        """Whether any join of the query ran as a hyper-join."""
        return any(method == "hyper" for method in self.join_methods)


@dataclass
class Executor:
    """Executes query plans against the stored tables."""

    catalog: Catalog
    cluster: Cluster
    config: AdaptDBConfig

    def execute(self, plan: QueryPlan) -> QueryResult:
        """Run ``plan`` and return the accounted result."""
        cost_model = self.cluster.cost_model
        result = QueryResult(query=plan.query)

        # 1. Adaptation work scheduled by the optimizer (Type 2 blocks).
        result.blocks_repartitioned = plan.adaptation.blocks_repartitioned
        result.trees_created = plan.adaptation.trees_created
        result.cost_units += cost_model.repartition_cost(plan.adaptation.blocks_repartitioned)

        # 2. Pure scans (tables not participating in any join).
        for table_name in plan.scan_tables:
            table = self.catalog.get(table_name)
            predicates = plan.query.predicates_on(table_name)
            block_ids = plan.scan_blocks.get(table_name, [])
            matched = 0
            for block_id in block_ids:
                block = table.dfs.get_block(block_id)
                matched += block.matching_count(predicates)
            result.blocks_read += len(block_ids)
            result.cost_units += cost_model.scan_cost(len(block_ids))
            if not plan.join_decisions:
                result.output_rows += matched

        # 3. Joins.
        for index, decision in enumerate(plan.join_decisions):
            stats = self._execute_join(plan.query, decision)
            result.join_stats.append(stats)
            result.join_methods.append(stats.method)
            result.blocks_read += stats.total_blocks_read
            result.shuffled_blocks += stats.shuffled_blocks
            result.cost_units += stats.cost_units
            if index == 0:
                result.output_rows = stats.output_rows

        result.runtime_seconds = cost_model.to_seconds(result.cost_units)
        return result

    # ------------------------------------------------------------------ #
    # Join execution
    # ------------------------------------------------------------------ #
    def _execute_join(self, query: Query, decision: JoinDecision) -> JoinStats:
        dfs = self.catalog.get(decision.build_table).dfs
        cost_model = self.cluster.cost_model
        build_column = decision.clause.column_for(decision.build_table)
        probe_column = decision.clause.column_for(decision.probe_table)
        build_predicates = query.predicates_on(decision.build_table)
        probe_predicates = query.predicates_on(decision.probe_table)

        if decision.method is JoinMethod.SHUFFLE:
            return shuffle_join(
                dfs,
                decision.build_blocks,
                decision.probe_blocks,
                build_column,
                probe_column,
                build_predicates,
                probe_predicates,
                cost_model,
                num_partitions=self.cluster.num_machines,
            )

        hyper_plan = decision.hyper_plan
        if hyper_plan is None:
            hyper_plan = plan_hyper_join(
                dfs,
                decision.build_blocks,
                decision.probe_blocks,
                build_column,
                probe_column,
                self.config.buffer_blocks,
                self.config.grouping_algorithm,
            )
        return execute_hyper_join(
            dfs,
            hyper_plan,
            build_column,
            probe_column,
            build_predicates,
            probe_predicates,
            cost_model,
        )
