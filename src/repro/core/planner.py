"""Query planner (Section 6, "Query Planner").

The planner classifies each join of a query into the paper's three cases —
pure hyper-join, mixed hyper/shuffle during smooth repartitioning, or shuffle
join — based on how the two tables' partitioning trees relate to the join
attribute.  The final algorithm choice is cost-based (Section 5.4) and made
by the optimizer; the classification is kept for reporting and testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..common.query import JoinClause
from ..storage.catalog import Catalog


class JoinCase(Enum):
    """The paper's three planner cases for a two-table join."""

    CO_PARTITIONED = "co_partitioned"   # both tables: one tree, on the join attribute
    MIXED = "mixed"                     # one side mid-migration (multiple trees)
    NOT_PARTITIONED = "not_partitioned"  # neither side organized on the join attribute


class JoinMethod(Enum):
    """The join algorithm actually executed."""

    HYPER = "hyper"
    SHUFFLE = "shuffle"


@dataclass
class JoinClassification:
    """How a join clause relates to the current partitioning state."""

    clause: JoinClause
    case: JoinCase
    left_on_join_attribute: bool
    right_on_join_attribute: bool
    left_trees: int
    right_trees: int


def classify_join(catalog: Catalog, clause: JoinClause) -> JoinClassification:
    """Classify a join clause into one of the planner's three cases."""
    left = catalog.get(clause.left_table)
    right = catalog.get(clause.right_table)

    left_tree = left.tree_for_join_attribute(clause.left_column)
    right_tree = right.tree_for_join_attribute(clause.right_column)
    left_single = left.num_trees == 1 and left_tree is not None
    right_single = right.num_trees == 1 and right_tree is not None

    if left_single and right_single:
        case = JoinCase.CO_PARTITIONED
    elif left_tree is not None or right_tree is not None:
        case = JoinCase.MIXED
    else:
        case = JoinCase.NOT_PARTITIONED

    return JoinClassification(
        clause=clause,
        case=case,
        left_on_join_attribute=left_tree is not None,
        right_on_join_attribute=right_tree is not None,
        left_trees=left.num_trees,
        right_trees=right.num_trees,
    )
