"""Whole-program static analysis for the repro codebase's invariants.

Seven checkers enforce contracts that the type system cannot.  They share a
project-wide call graph (:class:`~repro.analysis.framework.ProjectGraph`)
that resolves calls across files and computes fixpoint function summaries,
so the rules reason interprocedurally rather than one file at a time:

* **epoch** — every partition-state mutation reaches ``bump_epoch()``
  before returning, and nothing outside the storage/partitioning layers
  writes partition state directly (rules ``epoch-discipline``,
  ``epoch-direct-write``).
* **determinism** — the fingerprinted layers use no stdlib/global
  randomness, no wall clock, and no unstable set iteration (rules
  ``no-stdlib-random``, ``no-global-numpy-rng``, ``no-wall-clock``,
  ``unsorted-set-iter``, ``unseeded-rng``).
* **cache-keys** — ``@epoch_keyed`` functions read only mutable state
  their key covers (rules ``cache-key-read``, ``cache-key-registration``).
* **task-purity** — compiled tasks carry ids, never live storage objects
  (rules ``task-purity-field``, ``task-purity-capture``).
* **deltas** — every mutated block/tree id flows into the
  ``PartitionDelta`` handed to ``bump_epoch()``; under-description is a
  gating error, over-description a warning (rules ``delta-completeness``,
  ``delta-over-description``).
* **shmem** — code reachable from worker-process entry points never
  writes attached shared-memory arrays, never touches parent-only state,
  and cross-process payloads are frozen dataclasses (rules
  ``shmem-attached-write``, ``shmem-parent-state``,
  ``shmem-payload-frozen``).
* **persist** — catalog mutations in ``repro.storage.persist`` go
  through the transactional write path: no bare ``execute`` outside a
  ``transaction()`` block (rule ``catalog-transaction``).

Run ``python -m repro.analysis [paths...]`` (defaults to the installed
``repro`` package tree; ``--rules`` lists every rule, ``--format
json|sarif`` emits machine-readable reports, ``--baseline`` accepts
audited legacy findings) or call :func:`analyze_paths` /
:func:`analyze_source` programmatically.  Suppress a finding with a
justified ``# repro: allow[rule-id]`` comment on or above its line;
``# repro: allow[a, b]`` covers several rules at once.  The runtime twins
of these contracts live in :mod:`repro.common.sanitize`
(``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

from pathlib import Path

from . import cache_keys, deltas, determinism, epoch, persist, purity, shmem
from .framework import (
    AnalysisContext,
    Checker,
    ProjectGraph,
    SourceFile,
    Violation,
    analyze_files,
    collect_files,
)

ALL_CHECKERS: tuple[Checker, ...] = (
    epoch.CHECKER,
    determinism.CHECKER,
    cache_keys.CHECKER,
    purity.CHECKER,
    deltas.CHECKER,
    shmem.CHECKER,
    persist.CHECKER,
)

ALL_RULES: frozenset[str] = frozenset(
    rule for checker in ALL_CHECKERS for rule in checker.rules
)


def analyze_paths(
    paths: list[Path], rules: frozenset[str] | None = None
) -> tuple[list[Violation], int]:
    """Analyze files/directories; return (violations, files analyzed)."""
    files = [SourceFile.load(path) for path in collect_files(paths)]
    return analyze_files(files, ALL_CHECKERS, rules=rules), len(files)


def analyze_source(
    text: str,
    *,
    module: str = "repro._snippet",
    path: str = "<snippet>",
    rules: frozenset[str] | None = None,
) -> list[Violation]:
    """Analyze one in-memory snippet (test fixtures)."""
    source = SourceFile.from_text(text, path=path, module=module)
    return analyze_files([source], ALL_CHECKERS, rules=rules)


__all__ = [
    "ALL_CHECKERS",
    "ALL_RULES",
    "AnalysisContext",
    "Checker",
    "ProjectGraph",
    "SourceFile",
    "Violation",
    "analyze_files",
    "analyze_paths",
    "analyze_source",
]
