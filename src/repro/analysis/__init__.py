"""Static analysis for the repro codebase's cross-cutting invariants.

Four checkers enforce contracts that the type system cannot:

* **epoch** — every partition-state mutation reaches ``bump_epoch()``
  before returning, and nothing outside the storage/partitioning layers
  writes partition state directly (rules ``epoch-discipline``,
  ``epoch-direct-write``).
* **determinism** — the fingerprinted layers use no stdlib/global
  randomness, no wall clock, and no unstable set iteration (rules
  ``no-stdlib-random``, ``no-global-numpy-rng``, ``no-wall-clock``,
  ``unsorted-set-iter``, ``unseeded-rng``).
* **cache-keys** — ``@epoch_keyed`` functions read only mutable state
  their key covers (rules ``cache-key-read``, ``cache-key-registration``).
* **task-purity** — compiled tasks carry ids, never live storage objects
  (rules ``task-purity-field``, ``task-purity-capture``).

Run ``python -m repro.analysis [paths...]`` (defaults to the installed
``repro`` package tree) or call :func:`analyze_paths` /
:func:`analyze_source` programmatically.  Suppress a finding with a
justified ``# repro: allow[rule-id]`` comment on or above its line.
"""

from __future__ import annotations

from pathlib import Path

from . import cache_keys, determinism, epoch, purity
from .framework import (
    AnalysisContext,
    Checker,
    SourceFile,
    Violation,
    analyze_files,
    collect_files,
)

ALL_CHECKERS: tuple[Checker, ...] = (
    epoch.CHECKER,
    determinism.CHECKER,
    cache_keys.CHECKER,
    purity.CHECKER,
)

ALL_RULES: frozenset[str] = frozenset(
    rule for checker in ALL_CHECKERS for rule in checker.rules
)


def analyze_paths(
    paths: list[Path], rules: frozenset[str] | None = None
) -> tuple[list[Violation], int]:
    """Analyze files/directories; return (violations, files analyzed)."""
    files = [SourceFile.load(path) for path in collect_files(paths)]
    return analyze_files(files, ALL_CHECKERS, rules=rules), len(files)


def analyze_source(
    text: str,
    *,
    module: str = "repro._snippet",
    path: str = "<snippet>",
    rules: frozenset[str] | None = None,
) -> list[Violation]:
    """Analyze one in-memory snippet (test fixtures)."""
    source = SourceFile.from_text(text, path=path, module=module)
    return analyze_files([source], ALL_CHECKERS, rules=rules)


__all__ = [
    "ALL_CHECKERS",
    "ALL_RULES",
    "AnalysisContext",
    "Checker",
    "SourceFile",
    "Violation",
    "analyze_files",
    "analyze_paths",
    "analyze_source",
]
