"""Catalog-transaction checker for the durable storage tier.

The persistence catalog (:mod:`repro.storage.persist.catalog`) is the
commit point of the spill-to-disk tier: crash consistency holds only
because every catalog *mutation* is one atomic ``BEGIN IMMEDIATE`` ..
``COMMIT`` span issued by ``PersistentCatalog.transaction()``.  A bare
write ``execute`` outside that span autocommits immediately — a crash
between two such writes would leave the catalog describing a state no
checkpoint ever produced, which the recovery path cannot roll back.

``catalog-transaction`` (error)
    In ``repro.storage.persist``, every ``execute`` / ``executemany`` /
    ``executescript`` call must be lexically inside a ``with
    *.transaction(...)`` block, with three sanctioned exceptions decided
    by the statement's *literal* SQL prefix:

    * reads (``SELECT``) — always safe against the last committed state;
    * ``PRAGMA`` — connection configuration, not catalog state;
    * the transaction machinery itself (``BEGIN`` / ``COMMIT`` /
      ``ROLLBACK``), which is what ``transaction()`` is made of.

    A non-literal SQL argument gets no benefit of the doubt: it must run
    inside a transaction block, because the checker cannot prove it is a
    read.
"""

from __future__ import annotations

import ast

from .framework import AnalysisContext, Checker, SourceFile, Violation

RULE_TRANSACTION = "catalog-transaction"

#: The cursor/connection methods that submit SQL.
EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})

#: Literal SQL prefixes allowed outside a transaction block.
SAFE_PREFIXES = ("SELECT", "PRAGMA", "BEGIN", "COMMIT", "ROLLBACK")

SCOPE_PREFIX = "repro.storage.persist"


def _literal_sql(call: ast.Call) -> str | None:
    """The SQL string when the first argument is a literal, else ``None``."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        if isinstance(first, ast.JoinedStr):
            # An f-string's literal head still reveals the verb.
            parts = []
            for value in first.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    parts.append(value.value)
                else:
                    break
            return "".join(parts) if parts else None
    return None


def _is_safe_sql(sql: str) -> bool:
    return sql.lstrip().upper().startswith(SAFE_PREFIXES)


def _opens_transaction(item: ast.withitem) -> bool:
    """Whether a with-item is a ``*.transaction(...)`` call."""
    expr = item.context_expr
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "transaction"
    )


def _execute_calls(
    node: ast.AST, in_transaction: bool
) -> list[tuple[ast.Call, bool]]:
    """Every ``.execute*`` call under ``node`` with its enclosing-with state."""
    found: list[tuple[ast.Call, bool]] = []
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in EXECUTE_METHODS
        ):
            found.append((node, in_transaction))
    inside = in_transaction
    if isinstance(node, (ast.With, ast.AsyncWith)) and any(
        _opens_transaction(item) for item in node.items
    ):
        inside = True
    for child in ast.iter_child_nodes(node):
        found.extend(_execute_calls(child, inside))
    return found


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    if not source.module.startswith(SCOPE_PREFIX):
        return []
    violations: list[Violation] = []
    for call, in_transaction in _execute_calls(source.tree, False):
        if in_transaction:
            continue
        sql = _literal_sql(call)
        if sql is not None and _is_safe_sql(sql):
            continue
        assert isinstance(call.func, ast.Attribute)
        described = (
            f"{call.func.attr}({sql.lstrip().split(None, 1)[0]!r} ...)"
            if sql
            else f"{call.func.attr}(<non-literal SQL>)"
        )
        violations.append(
            Violation(
                rule=RULE_TRANSACTION,
                path=source.path,
                line=call.lineno,
                message=(
                    f"catalog mutation {described} outside the transactional "
                    "write path"
                ),
                hint=(
                    "run catalog writes on the cursor yielded by "
                    "`with catalog.transaction() as cur:` so the update "
                    "commits atomically; only literal SELECT/PRAGMA/"
                    "BEGIN/COMMIT/ROLLBACK statements may run bare"
                ),
            )
        )
    return violations


CHECKER = Checker(
    name="persist",
    rules=(RULE_TRANSACTION,),
    check=check,
    descriptions={
        RULE_TRANSACTION: (
            "catalog mutations in repro.storage.persist go through the "
            "transactional write path (no bare execute outside a "
            "transaction() block)"
        ),
    },
)
