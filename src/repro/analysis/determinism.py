"""Determinism checker.

The adaptation benchmarks fingerprint query results and schedules, so
the executing/simulating/adapting/planning layers (``repro.exec``,
``repro.sim``, ``repro.adaptive``, ``repro.join``) must be bit-stable
run to run.  Rules:

``no-stdlib-random``
    ``random`` (the stdlib module) is banned in scoped modules; the only
    sanctioned randomness source is ``repro.common.rng.make_rng``.

``no-global-numpy-rng``
    Calls through the module-level ``np.random.*`` API are banned in
    scoped modules (annotations like ``np.random.Generator`` are fine —
    only calls are flagged).

``no-wall-clock``
    ``time.time`` / ``time.perf_counter`` / ``time.monotonic`` /
    ``time.process_time`` are banned in scoped modules; wall-clock
    timing belongs to the session harness (``repro.api``), which is out
    of scope.  Suppress with justification where a measured wall time is
    reported but never feeds a decision or a fingerprint.

``unsorted-set-iter``
    Iterating a ``set`` in a ``for`` statement, a list/generator
    comprehension, or a ``list(...)``/``tuple(...)`` call produces an
    unstable order.  Wrap the set in ``sorted(...)`` — iteration that
    feeds an order-free consumer (``sum``, ``min``, ``set``, another set
    comprehension, ...) is allowed.  Plain dict iteration is *not*
    flagged: dicts are insertion-ordered, so determinism reduces to the
    order their keys were inserted, which these rules already police.

``unseeded-rng``
    Applies everywhere (including benchmarks and examples): argless
    ``default_rng()`` and the legacy global draws (``np.random.rand``,
    ``np.random.seed``, ...) are banned; derive generators from
    ``make_rng(seed)`` so runs are reproducible.

Set-ness is inferred per function from literals, ``set()`` calls, set
annotations, and calls to functions whose return annotation is
``set[...]`` or ``dict[..., set[...]]`` (the ``dict_set`` shape
propagates through ``.items()`` / ``.values()`` unpacking and
subscripts).  The inference is deliberately shallow — it exists to catch
the real patterns in this codebase, not to be a type checker.
"""

from __future__ import annotations

import ast

from .framework import (
    AnalysisContext,
    Checker,
    FunctionNode,
    SourceFile,
    Violation,
    dotted_name,
)

RULE_STDLIB_RANDOM = "no-stdlib-random"
RULE_GLOBAL_NUMPY = "no-global-numpy-rng"
RULE_WALL_CLOCK = "no-wall-clock"
RULE_SET_ITER = "unsorted-set-iter"
RULE_UNSEEDED = "unseeded-rng"

#: Modules whose behaviour is fingerprinted and must be deterministic.
#: ``repro.parallel`` is in scope because its results must stay
#: bit-identical to the in-process engine; its one sanctioned wall-clock
#: helper (reporting-only timings) carries a ``# repro: allow``.
#: ``repro.storage.persist`` is in scope because a checkpoint/restore
#: round trip must reproduce bit-identical fingerprints — any hidden
#: randomness or unstable iteration in the spill/restore paths would
#: diverge the reopened session from the original.
SCOPE_PREFIXES = (
    "repro.exec",
    "repro.sim",
    "repro.adaptive",
    "repro.join",
    "repro.parallel",
    "repro.storage.persist",
)

WALL_CLOCK_CALLS = frozenset(
    {"time.time", "time.perf_counter", "time.monotonic", "time.process_time"}
)
WALL_CLOCK_NAMES = frozenset({"time", "perf_counter", "monotonic", "process_time"})

#: Consumers whose result does not depend on iteration order.
ORDER_FREE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "set", "frozenset", "len"}
)

#: Sequence builders that *do* freeze iteration order.
ORDER_SENSITIVE_BUILDERS = frozenset({"list", "tuple"})

#: Legacy module-level numpy draws (non-exhaustive, the common ones).
LEGACY_NUMPY_DRAWS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "random",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
    }
)

_SET = "set"
_DICT_OF_SETS = "dict_set"


def _in_scope(module: str) -> bool:
    return module.startswith(SCOPE_PREFIXES)


# --------------------------------------------------------------------- #
# Set-type inference
# --------------------------------------------------------------------- #
def _annotation_kind(node: ast.expr) -> str | None:
    """Classify an annotation as ``set`` / ``dict_set`` / other."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return _SET if node.id in {"set", "frozenset", "Set", "FrozenSet"} else None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in {"set", "frozenset", "Set", "FrozenSet"}:
                return _SET
            if base.id in {"dict", "Dict", "defaultdict", "DefaultDict", "Mapping"}:
                value_slice = node.slice
                if isinstance(value_slice, ast.Tuple) and len(value_slice.elts) == 2:
                    if _annotation_kind(value_slice.elts[1]) == _SET:
                        return _DICT_OF_SETS
    return None


class _SetEnv:
    """Name -> inferred kind, for one function (or the module top level)."""

    def __init__(self, return_annotations: dict[str, ast.expr]) -> None:
        self._returns = return_annotations
        self.kinds: dict[str, str] = {}

    def expr_kind(self, node: ast.expr) -> str | None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _SET
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self.expr_kind(node.left)
            right = self.expr_kind(node.right)
            if _SET in (left, right):
                return _SET
        if isinstance(node, ast.Subscript):
            if self.expr_kind(node.value) == _DICT_OF_SETS:
                return _SET
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in {"set", "frozenset"}:
                    return _SET
                annotation = self._returns.get(func.id)
                if annotation is not None:
                    return _annotation_kind(annotation)
            if isinstance(func, ast.Attribute):
                if func.attr == "copy":
                    return self.expr_kind(func.value)
                annotation = self._returns.get(func.attr)
                if annotation is not None:
                    return _annotation_kind(annotation)
        return None

    def learn_assign(self, target: ast.expr, kind: str | None) -> None:
        if kind is not None and isinstance(target, ast.Name):
            self.kinds[target.id] = kind

    def learn_for_target(self, target: ast.expr, iter_expr: ast.expr) -> None:
        """Propagate dict-of-sets element kinds into loop targets."""
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and self.expr_kind(iter_expr.func.value) == _DICT_OF_SETS
        ):
            method = iter_expr.func.attr
            if (
                method == "items"
                and isinstance(target, ast.Tuple)
                and len(target.elts) == 2
                and isinstance(target.elts[1], ast.Name)
            ):
                self.kinds[target.elts[1].id] = _SET
            elif method == "values" and isinstance(target, ast.Name):
                self.kinds[target.id] = _SET

    def seed_scope(self, func: FunctionNode | None) -> None:
        if func is None:
            return
        args = list(func.args.posonlyargs) + list(func.args.args) + list(
            func.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is not None:
                kind = _annotation_kind(arg.annotation)
                if kind is not None:
                    self.kinds[arg.arg] = kind


def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
    """All nodes of a scope in document order, excluding nested scopes."""
    nodes: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            nodes.append(child)
            visit(child)

    visit(scope)
    return nodes


def _scope_statements(scope: ast.AST) -> list[ast.stmt]:
    """Statements belonging to a scope, excluding nested scope bodies."""
    return [node for node in _scope_nodes(scope) if isinstance(node, ast.stmt)]


def _build_env(
    scope: ast.AST, context: AnalysisContext
) -> _SetEnv:
    env = _SetEnv(context.return_annotations)
    env.seed_scope(
        scope if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
    )
    for stmt in _scope_statements(scope):
        if isinstance(stmt, ast.Assign):
            kind = env.expr_kind(stmt.value)
            for target in stmt.targets:
                env.learn_assign(target, kind)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            kind = _annotation_kind(stmt.annotation)
            if kind is None and stmt.value is not None:
                kind = env.expr_kind(stmt.value)
            env.learn_assign(stmt.target, kind)
        elif isinstance(stmt, ast.AugAssign):
            kind = env.expr_kind(stmt.value)
            env.learn_assign(stmt.target, kind)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            env.learn_for_target(stmt.target, stmt.iter)
    return env


def _iter_scopes(tree: ast.Module) -> list[ast.AST]:
    scopes: list[ast.AST] = [tree]
    scopes.extend(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return scopes


def _is_sorted_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _check_set_iteration(
    source: SourceFile, context: AnalysisContext
) -> list[Violation]:
    violations: list[Violation] = []
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(source.tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent

    def order_free_context(node: ast.expr) -> bool:
        """Whether ``node``'s value flows into an order-free consumer."""
        parent = parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            name = dotted_name(parent.func)
            if name is not None and name.split(".")[-1] in ORDER_FREE_CONSUMERS:
                return True
        return False

    for scope in _iter_scopes(source.tree):
        env = _build_env(scope, context)
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_sorted_call(node.iter) and env.expr_kind(node.iter) == _SET:
                    violations.append(
                        Violation(
                            rule=RULE_SET_ITER,
                            path=source.path,
                            line=node.iter.lineno,
                            message="for-loop iterates a set in unstable order",
                            hint="wrap the iterable in sorted(...)",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if order_free_context(node):
                    continue
                for generator in node.generators:
                    if _is_sorted_call(generator.iter):
                        continue
                    if env.expr_kind(generator.iter) == _SET:
                        violations.append(
                            Violation(
                                rule=RULE_SET_ITER,
                                path=source.path,
                                line=generator.iter.lineno,
                                message=(
                                    "comprehension iterates a set into an "
                                    "order-sensitive sequence"
                                ),
                                hint="wrap the iterable in sorted(...)",
                            )
                        )
            elif isinstance(node, ast.Call):
                func_name = dotted_name(node.func)
                if (
                    func_name in ORDER_SENSITIVE_BUILDERS
                    and node.args
                    and env.expr_kind(node.args[0]) == _SET
                ):
                    violations.append(
                        Violation(
                            rule=RULE_SET_ITER,
                            path=source.path,
                            line=node.lineno,
                            message=(
                                f"{func_name}(...) freezes a set's unstable "
                                "iteration order"
                            ),
                            hint="use sorted(...) instead",
                        )
                    )
    return violations


def _check_scoped_calls(source: SourceFile) -> list[Violation]:
    violations: list[Violation] = []
    from_time_names: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    violations.append(
                        Violation(
                            rule=RULE_STDLIB_RANDOM,
                            path=source.path,
                            line=node.lineno,
                            message="stdlib random imported in a deterministic module",
                            hint="use repro.common.rng.make_rng instead",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                violations.append(
                    Violation(
                        rule=RULE_STDLIB_RANDOM,
                        path=source.path,
                        line=node.lineno,
                        message="stdlib random imported in a deterministic module",
                        hint="use repro.common.rng.make_rng instead",
                    )
                )
            elif node.module == "time":
                imported = {alias.asname or alias.name for alias in node.names}
                if imported & WALL_CLOCK_NAMES:
                    from_time_names.update(imported & WALL_CLOCK_NAMES)
                    violations.append(
                        Violation(
                            rule=RULE_WALL_CLOCK,
                            path=source.path,
                            line=node.lineno,
                            message="wall-clock import in a deterministic module",
                            hint="timing belongs to the repro.api session harness",
                        )
                    )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.startswith(("random.",)):
                violations.append(
                    Violation(
                        rule=RULE_STDLIB_RANDOM,
                        path=source.path,
                        line=node.lineno,
                        message=f"{name}() in a deterministic module",
                        hint="use repro.common.rng.make_rng instead",
                    )
                )
            elif name.startswith(("np.random.", "numpy.random.")):
                violations.append(
                    Violation(
                        rule=RULE_GLOBAL_NUMPY,
                        path=source.path,
                        line=node.lineno,
                        message=f"{name}() uses the global numpy RNG",
                        hint="thread a Generator from repro.common.rng.make_rng",
                    )
                )
            elif name in WALL_CLOCK_CALLS or name in from_time_names:
                violations.append(
                    Violation(
                        rule=RULE_WALL_CLOCK,
                        path=source.path,
                        line=node.lineno,
                        message=f"{name}() reads the wall clock in a deterministic module",
                        hint="timing belongs to the repro.api session harness",
                    )
                )
    return violations


def _check_unseeded(source: SourceFile) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        leaf = name.split(".")[-1]
        if leaf == "default_rng" and not node.args and not node.keywords:
            violations.append(
                Violation(
                    rule=RULE_UNSEEDED,
                    path=source.path,
                    line=node.lineno,
                    message="default_rng() without a seed is irreproducible",
                    hint="pass an explicit seed, or use repro.common.rng.make_rng",
                )
            )
        elif (
            name.startswith(("np.random.", "numpy.random."))
            and leaf in LEGACY_NUMPY_DRAWS
        ):
            violations.append(
                Violation(
                    rule=RULE_UNSEEDED,
                    path=source.path,
                    line=node.lineno,
                    message=f"{name}() draws from the unseeded global numpy RNG",
                    hint="use a Generator from repro.common.rng.make_rng(seed)",
                )
            )
    return violations


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations = _check_unseeded(source)
    if _in_scope(source.module):
        violations.extend(_check_scoped_calls(source))
        violations.extend(_check_set_iteration(source, context))
    return violations


CHECKER = Checker(
    name="determinism",
    rules=(
        RULE_STDLIB_RANDOM,
        RULE_GLOBAL_NUMPY,
        RULE_WALL_CLOCK,
        RULE_SET_ITER,
        RULE_UNSEEDED,
    ),
    check=check,
    descriptions={
        RULE_STDLIB_RANDOM: (
            "fingerprinted layers never use the stdlib random module"
        ),
        RULE_GLOBAL_NUMPY: (
            "fingerprinted layers never use numpy's global RNG state"
        ),
        RULE_WALL_CLOCK: (
            "fingerprinted layers never read the wall clock; timing goes "
            "through the sanctioned repro.common.clock helper"
        ),
        RULE_SET_ITER: (
            "no iteration over sets/frozensets without sorted() in "
            "fingerprinted layers"
        ),
        RULE_UNSEEDED: (
            "every numpy Generator is constructed from an explicit seed"
        ),
    },
)
