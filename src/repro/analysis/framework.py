"""Shared machinery for the ``repro.analysis`` static checkers.

The checkers are plain functions over parsed source files; this module
owns everything they share so each checker file is only its rule logic:

* :class:`Violation` — one finding, with file:line, severity and a fix
  hint.
* :class:`SourceFile` — a parsed file plus its suppression comments.
* :class:`ProjectGraph` — the whole-program function index and resolved
  call graph (imports, ``self.method()``, annotation-typed receivers),
  with reachability and a generic summary-fixpoint driver on top.
* :class:`AnalysisContext` — cross-file facts gathered in one pre-pass
  (registered mutators, ``@epoch_keyed`` registrations, return
  annotations, the project graph) plus a per-run :meth:`cache
  <AnalysisContext.cache>` so whole-program passes compute their
  summaries once instead of per file.
* :class:`Checker` — name + rule ids + a check callable; the registry in
  ``repro.analysis.__init__`` is just a tuple of these.

Suppressions: a comment ``# repro: allow[rule-id]`` (comma-separated ids
allowed) silences those rules on its own line and on the following line,
so both trailing comments and a comment directly above the offending
statement work.  Suppressions are meant to carry a justification in the
surrounding comment text.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, TypeVar, cast

#: Comment syntax that silences rules: ``# repro: allow[rule-a, rule-b]``.
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True)
class Violation:
    """One finding of one rule at one source location."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    #: ``"error"`` findings gate CI; ``"warning"`` findings are advisory.
    severity: str = "error"

    def render(self) -> str:
        """Human-readable one-line form, ``path:line: [rule] message``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text = f"{text} ({self.hint})"
        return text


def _parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed by a comment on that line."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            if rules:
                line = token.start[0]
                suppressions[line] = suppressions.get(line, frozenset()) | rules
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return suppressions


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Looks for the last ``repro`` component and joins from there, so both
    ``src/repro/exec/tasks.py`` and an installed-layout path map to
    ``repro.exec.tasks``.  Files outside a ``repro`` tree keep their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else "<unknown>"


@dataclass
class SourceFile:
    """A parsed source file plus the metadata checkers need."""

    path: str
    module: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def from_text(
        cls, text: str, *, path: str = "<snippet>", module: str = "repro._snippet"
    ) -> "SourceFile":
        """Parse in-memory source (test fixtures, snippets)."""
        return cls(
            path=path,
            module=module,
            text=text,
            tree=ast.parse(text),
            suppressions=_parse_suppressions(text),
        )

    @classmethod
    def load(cls, file_path: Path) -> "SourceFile":
        """Parse a file from disk, deriving its module name from the path."""
        text = file_path.read_text(encoding="utf-8")
        return cls(
            path=str(file_path),
            module=module_name_for(file_path),
            text=text,
            tree=ast.parse(text, filename=str(file_path)),
            suppressions=_parse_suppressions(text),
        )


FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def iter_functions(
    tree: ast.AST, _class: str | None = None
) -> Iterator[tuple[FunctionNode, str | None]]:
    """Yield every function with the name of its innermost enclosing class.

    Nested functions are yielded too (with the class of the method that
    contains them); functions inside nested classes report the nested
    class.
    """
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _class
            yield from iter_functions(node, _class)
        elif isinstance(node, ast.ClassDef):
            yield from iter_functions(node, node.name)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            yield from iter_functions(node, _class)


def dotted_name(node: ast.expr) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def decorator_names(func: FunctionNode) -> list[str]:
    """Dotted names of a function's decorators (call decorators unwrapped)."""
    names: list[str] = []
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return names


def has_decorator(func: FunctionNode, name: str) -> bool:
    """Whether ``func`` carries decorator ``name`` (matched on last segment)."""
    return any(
        decorated == name or decorated.endswith(f".{name}")
        for decorated in decorator_names(func)
    )


def epoch_keyed_decorator(func: FunctionNode) -> tuple[str, ...] | None:
    """The literal ``reads=(...)`` of an ``@epoch_keyed`` decorator, if any.

    Returns ``None`` when the function is not decorated; an unparseable
    ``reads`` argument yields ``()`` (treat as "declares nothing").
    """
    for decorator in func.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.split(".")[-1] != "epoch_keyed":
            continue
        for keyword in decorator.keywords:
            if keyword.arg != "reads":
                continue
            value = keyword.value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                reads = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        reads.append(element.value)
                return tuple(reads)
            return ()
        return ()
    return None


#: Identity of one function in the project: ``(file path, qualname)``.
#: Module names can collide across analyzed trees (two ``conftest.py``),
#: file paths cannot.
FunctionKey = tuple[str, str]


def parameter_names(func: FunctionNode) -> list[str]:
    """Positional + keyword-only parameter names, in declaration order."""
    args = func.args
    return [arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """The class name an annotation pins its value to, if recoverable.

    Handles ``Foo``, ``pkg.Foo``, the string form ``"Foo"`` and the
    optional form ``Foo | None``; everything else (generics, unions of
    two real types) returns ``None``.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("|")[0].strip().split(".")[-1] or None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_class(annotation.left)
        right = _annotation_class(annotation.right)
        if left == "None":
            return right
        if right == "None":
            return left
        return None
    name = dotted_name(annotation)
    if name is not None:
        return name.split(".")[-1]
    return None


@dataclass
class FunctionInfo:
    """One function (or method) in the project graph."""

    key: FunctionKey
    module: str
    path: str
    qualname: str
    name: str
    class_name: str | None
    node: FunctionNode

    def annotation_of(self, param: str) -> str | None:
        """Class name a parameter's annotation pins it to, if any."""
        args = self.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == param:
                return _annotation_class(arg.annotation)
        return None


def map_call_arguments(call: ast.Call, callee: "FunctionInfo") -> dict[str, ast.expr]:
    """Map callee parameter names to argument expressions at a call site.

    Bound-method calls (``obj.m(...)`` against a callee whose first
    parameter is ``self``/``cls``) shift positional arguments by one;
    starred arguments are skipped.
    """
    params = parameter_names(callee.node)
    offset = 0
    if params and params[0] in {"self", "cls"} and isinstance(call.func, ast.Attribute):
        offset = 1
    mapping: dict[str, ast.expr] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        position = index + offset
        if position < len(params):
            mapping[params[position]] = arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            mapping[keyword.arg] = keyword.value
    return mapping


_S = TypeVar("_S")


@dataclass
class ProjectGraph:
    """Whole-program function index with a resolved call graph.

    Call resolution is deliberately conservative: a call resolves to a
    project function only through an import binding, a module-level name,
    ``self``/``cls`` within a class, a receiver whose parameter
    annotation names a known class, or — as a last resort — a method
    name defined exactly once in the whole project.  Anything ambiguous
    resolves to nothing, so graph clients over-approximate by treating
    unresolved calls as opaque.
    """

    #: Every indexed function, keyed by ``(path, qualname)``.
    functions: dict[FunctionKey, FunctionInfo] = field(default_factory=dict)
    #: module -> qualname -> key (first definition wins).
    by_module: dict[str, dict[str, FunctionKey]] = field(default_factory=dict)
    #: class name -> method name -> key (first definition wins).
    class_methods: dict[str, dict[str, FunctionKey]] = field(default_factory=dict)
    #: bare function/method name -> every key defining it.
    by_name: dict[str, list[FunctionKey]] = field(default_factory=dict)
    #: module -> local name -> (target module, attr or None for modules).
    imports: dict[str, dict[str, tuple[str, str | None]]] = field(default_factory=dict)
    _callees: dict[FunctionKey, frozenset[FunctionKey]] = field(default_factory=dict)

    @classmethod
    def build(cls, files: list[SourceFile]) -> "ProjectGraph":
        graph = cls()
        for source in files:
            graph.imports.setdefault(source.module, {}).update(
                _import_bindings(source)
            )
            module_index = graph.by_module.setdefault(source.module, {})
            for func, class_name in iter_functions(source.tree):
                qualname = f"{class_name}.{func.name}" if class_name else func.name
                key: FunctionKey = (source.path, qualname)
                info = FunctionInfo(
                    key=key,
                    module=source.module,
                    path=source.path,
                    qualname=qualname,
                    name=func.name,
                    class_name=class_name,
                    node=func,
                )
                graph.functions.setdefault(key, info)
                module_index.setdefault(qualname, key)
                graph.by_name.setdefault(func.name, []).append(key)
                if class_name is not None:
                    graph.class_methods.setdefault(class_name, {}).setdefault(
                        func.name, key
                    )
        return graph

    # ------------------------------------------------------------------ #
    def resolve_call(self, call: ast.Call, info: FunctionInfo) -> FunctionKey | None:
        """The project function a call resolves to, or ``None``."""
        func = call.func
        module_index = self.by_module.get(info.module, {})
        bindings = self.imports.get(info.module, {})
        if isinstance(func, ast.Name):
            local = module_index.get(func.id)
            if local is not None:
                return local
            bound = bindings.get(func.id)
            if bound is not None:
                target_module, attr = bound
                if attr is not None:
                    return self.by_module.get(target_module, {}).get(attr)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in {"self", "cls"} and info.class_name is not None:
                same_module = module_index.get(f"{info.class_name}.{attr}")
                if same_module is not None:
                    return same_module
                return self.class_methods.get(info.class_name, {}).get(attr)
            bound = bindings.get(receiver.id)
            if bound is not None:
                target_module, sub = bound
                if sub is not None:
                    target_module = f"{target_module}.{sub}"
                resolved = self.by_module.get(target_module, {}).get(attr)
                if resolved is not None:
                    return resolved
            annotated = info.annotation_of(receiver.id)
            if annotated is not None:
                resolved = self.class_methods.get(annotated, {}).get(attr)
                if resolved is not None:
                    return resolved
        candidates = self.by_name.get(attr, [])
        if len(candidates) == 1:
            candidate = self.functions[candidates[0]]
            if candidate.class_name is not None:
                return candidate.key
        return None

    def callees(self, key: FunctionKey) -> frozenset[FunctionKey]:
        """Resolved callees of one function (cached)."""
        cached = self._callees.get(key)
        if cached is not None:
            return cached
        info = self.functions.get(key)
        resolved: set[FunctionKey] = set()
        if info is not None:
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(node, info)
                    if callee is not None:
                        resolved.add(callee)
        result = frozenset(resolved)
        self._callees[key] = result
        return result

    def reachable(self, roots: Iterable[FunctionKey]) -> set[FunctionKey]:
        """Transitive closure of :meth:`callees` from ``roots``."""
        seen: set[FunctionKey] = set()
        stack = [key for key in roots if key in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.callees(key) - seen)
        return seen

    def fixpoint_summaries(
        self,
        compute: Callable[[FunctionInfo, Mapping[FunctionKey, _S]], _S],
    ) -> dict[FunctionKey, _S]:
        """Run ``compute`` over every function until summaries stabilize.

        ``compute`` sees the current summary map and must be monotone
        (summaries only grow); iteration order is deterministic and the
        loop stops at the first round with no change.
        """
        summaries: dict[FunctionKey, _S] = {}
        while True:
            changed = False
            for key, info in self.functions.items():
                summary = compute(info, summaries)
                if summaries.get(key) != summary:
                    summaries[key] = summary
                    changed = True
            if not changed:
                return summaries


def _import_bindings(source: SourceFile) -> dict[str, tuple[str, str | None]]:
    """Local name -> (module, attr) bindings from a module's imports."""
    bindings: dict[str, tuple[str, str | None]] = {}
    is_package = source.path.endswith("__init__.py")
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = (root, None)
        elif isinstance(node, ast.ImportFrom):
            base = node.module
            if node.level:
                parts = source.module.split(".")
                drop = node.level - 1 if is_package else node.level
                if drop > len(parts):
                    continue
                prefix = parts[: len(parts) - drop]
                if not prefix:
                    continue
                base = ".".join(prefix + ([node.module] if node.module else []))
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = (base, alias.name)
    return bindings


@dataclass
class AnalysisContext:
    """Cross-file facts shared by all checkers, built in one pre-pass."""

    files: list[SourceFile] = field(default_factory=list)
    #: Method names decorated ``@mutates_partition_state`` anywhere.
    mutator_names: frozenset[str] = frozenset()
    #: ``(module, qualname) -> declared reads`` for ``@epoch_keyed`` functions.
    epoch_keyed: dict[tuple[str, str], tuple[str, ...]] = field(default_factory=dict)
    #: Function name -> return annotation node (last definition wins).
    return_annotations: dict[str, ast.expr] = field(default_factory=dict)
    #: Whole-program call graph over ``files``.
    graph: ProjectGraph = field(default_factory=ProjectGraph)
    _cache: dict[str, object] = field(default_factory=dict)

    def cache(self, key: str, build: Callable[[], _S]) -> _S:
        """Compute-once storage for whole-program summaries.

        The first checker to ask under ``key`` pays for ``build``; every
        later per-file ``check`` call reuses the result, which is what
        keeps whole-program passes from re-walking the project once per
        analyzed file.
        """
        if key not in self._cache:
            self._cache[key] = build()
        return cast(_S, self._cache[key])

    @classmethod
    def build(cls, files: list[SourceFile]) -> "AnalysisContext":
        mutators: set[str] = set()
        epoch_keyed: dict[tuple[str, str], tuple[str, ...]] = {}
        returns: dict[str, ast.expr] = {}
        for source in files:
            for func, class_name in iter_functions(source.tree):
                if has_decorator(func, "mutates_partition_state"):
                    mutators.add(func.name)
                reads = epoch_keyed_decorator(func)
                if reads is not None:
                    qualname = f"{class_name}.{func.name}" if class_name else func.name
                    epoch_keyed[(source.module, qualname)] = reads
                if func.returns is not None:
                    returns[func.name] = func.returns
        return cls(
            files=files,
            mutator_names=frozenset(mutators),
            epoch_keyed=epoch_keyed,
            return_annotations=returns,
            graph=ProjectGraph.build(files),
        )


CheckFunction = Callable[[SourceFile, AnalysisContext], list[Violation]]


@dataclass(frozen=True)
class Checker:
    """A named checker: rule ids plus the function that applies them."""

    name: str
    rules: tuple[str, ...]
    check: CheckFunction
    #: rule id -> one-line description, surfaced by ``--rules`` and SARIF.
    descriptions: Mapping[str, str] = field(default_factory=dict)


def is_suppressed(violation: Violation, source: SourceFile) -> bool:
    """Whether a suppression comment covers ``violation``.

    A comment on line ``L`` covers violations on ``L`` (trailing comment)
    and ``L + 1`` (comment on its own line above the statement).
    """
    for line in (violation.line, violation.line - 1):
        if violation.rule in source.suppressions.get(line, frozenset()):
            return True
    return False


def analyze_files(
    files: list[SourceFile],
    checkers: Iterable[Checker],
    rules: frozenset[str] | None = None,
) -> list[Violation]:
    """Run ``checkers`` over ``files``, filter suppressions, sort findings."""
    context = AnalysisContext.build(files)
    violations: list[Violation] = []
    for source in files:
        for checker in checkers:
            if rules is not None and not (set(checker.rules) & rules):
                continue
            for violation in checker.check(source, context):
                if rules is not None and violation.rule not in rules:
                    continue
                if not is_suppressed(violation, source):
                    violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand directories to their ``*.py`` files, preserving order."""
    collected: list[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected
