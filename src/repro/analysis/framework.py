"""Shared machinery for the ``repro.analysis`` static checkers.

The checkers are plain functions over parsed source files; this module
owns everything they share so each checker file is only its rule logic:

* :class:`Violation` — one finding, with file:line and a fix hint.
* :class:`SourceFile` — a parsed file plus its suppression comments.
* :class:`AnalysisContext` — cross-file facts gathered in one pre-pass
  (registered mutators, ``@epoch_keyed`` registrations, return
  annotations), so individual checkers stay single-file visitors.
* :class:`Checker` — name + rule ids + a check callable; the registry in
  ``repro.analysis.__init__`` is just a tuple of these.

Suppressions: a comment ``# repro: allow[rule-id]`` (comma-separated ids
allowed) silences those rules on its own line and on the following line,
so both trailing comments and a comment directly above the offending
statement work.  Suppressions are meant to carry a justification in the
surrounding comment text.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Comment syntax that silences rules: ``# repro: allow[rule-a, rule-b]``.
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True)
class Violation:
    """One finding of one rule at one source location."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def render(self) -> str:
        """Human-readable one-line form, ``path:line: [rule] message``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text = f"{text} ({self.hint})"
        return text


def _parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed by a comment on that line."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            if rules:
                line = token.start[0]
                suppressions[line] = suppressions.get(line, frozenset()) | rules
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return suppressions


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Looks for the last ``repro`` component and joins from there, so both
    ``src/repro/exec/tasks.py`` and an installed-layout path map to
    ``repro.exec.tasks``.  Files outside a ``repro`` tree keep their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else "<unknown>"


@dataclass
class SourceFile:
    """A parsed source file plus the metadata checkers need."""

    path: str
    module: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def from_text(
        cls, text: str, *, path: str = "<snippet>", module: str = "repro._snippet"
    ) -> "SourceFile":
        """Parse in-memory source (test fixtures, snippets)."""
        return cls(
            path=path,
            module=module,
            text=text,
            tree=ast.parse(text),
            suppressions=_parse_suppressions(text),
        )

    @classmethod
    def load(cls, file_path: Path) -> "SourceFile":
        """Parse a file from disk, deriving its module name from the path."""
        text = file_path.read_text(encoding="utf-8")
        return cls(
            path=str(file_path),
            module=module_name_for(file_path),
            text=text,
            tree=ast.parse(text, filename=str(file_path)),
            suppressions=_parse_suppressions(text),
        )


FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def iter_functions(
    tree: ast.AST, _class: str | None = None
) -> Iterator[tuple[FunctionNode, str | None]]:
    """Yield every function with the name of its innermost enclosing class.

    Nested functions are yielded too (with the class of the method that
    contains them); functions inside nested classes report the nested
    class.
    """
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _class
            yield from iter_functions(node, _class)
        elif isinstance(node, ast.ClassDef):
            yield from iter_functions(node, node.name)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            yield from iter_functions(node, _class)


def dotted_name(node: ast.expr) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def decorator_names(func: FunctionNode) -> list[str]:
    """Dotted names of a function's decorators (call decorators unwrapped)."""
    names: list[str] = []
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return names


def has_decorator(func: FunctionNode, name: str) -> bool:
    """Whether ``func`` carries decorator ``name`` (matched on last segment)."""
    return any(
        decorated == name or decorated.endswith(f".{name}")
        for decorated in decorator_names(func)
    )


def epoch_keyed_decorator(func: FunctionNode) -> tuple[str, ...] | None:
    """The literal ``reads=(...)`` of an ``@epoch_keyed`` decorator, if any.

    Returns ``None`` when the function is not decorated; an unparseable
    ``reads`` argument yields ``()`` (treat as "declares nothing").
    """
    for decorator in func.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.split(".")[-1] != "epoch_keyed":
            continue
        for keyword in decorator.keywords:
            if keyword.arg != "reads":
                continue
            value = keyword.value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                reads = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        reads.append(element.value)
                return tuple(reads)
            return ()
        return ()
    return None


@dataclass
class AnalysisContext:
    """Cross-file facts shared by all checkers, built in one pre-pass."""

    files: list[SourceFile] = field(default_factory=list)
    #: Method names decorated ``@mutates_partition_state`` anywhere.
    mutator_names: frozenset[str] = frozenset()
    #: ``(module, qualname) -> declared reads`` for ``@epoch_keyed`` functions.
    epoch_keyed: dict[tuple[str, str], tuple[str, ...]] = field(default_factory=dict)
    #: Function name -> return annotation node (last definition wins).
    return_annotations: dict[str, ast.expr] = field(default_factory=dict)

    @classmethod
    def build(cls, files: list[SourceFile]) -> "AnalysisContext":
        mutators: set[str] = set()
        epoch_keyed: dict[tuple[str, str], tuple[str, ...]] = {}
        returns: dict[str, ast.expr] = {}
        for source in files:
            for func, class_name in iter_functions(source.tree):
                if has_decorator(func, "mutates_partition_state"):
                    mutators.add(func.name)
                reads = epoch_keyed_decorator(func)
                if reads is not None:
                    qualname = f"{class_name}.{func.name}" if class_name else func.name
                    epoch_keyed[(source.module, qualname)] = reads
                if func.returns is not None:
                    returns[func.name] = func.returns
        return cls(
            files=files,
            mutator_names=frozenset(mutators),
            epoch_keyed=epoch_keyed,
            return_annotations=returns,
        )


CheckFunction = Callable[[SourceFile, AnalysisContext], list[Violation]]


@dataclass(frozen=True)
class Checker:
    """A named checker: rule ids plus the function that applies them."""

    name: str
    rules: tuple[str, ...]
    check: CheckFunction


def is_suppressed(violation: Violation, source: SourceFile) -> bool:
    """Whether a suppression comment covers ``violation``.

    A comment on line ``L`` covers violations on ``L`` (trailing comment)
    and ``L + 1`` (comment on its own line above the statement).
    """
    for line in (violation.line, violation.line - 1):
        if violation.rule in source.suppressions.get(line, frozenset()):
            return True
    return False


def analyze_files(
    files: list[SourceFile],
    checkers: Iterable[Checker],
    rules: frozenset[str] | None = None,
) -> list[Violation]:
    """Run ``checkers`` over ``files``, filter suppressions, sort findings."""
    context = AnalysisContext.build(files)
    violations: list[Violation] = []
    for source in files:
        for checker in checkers:
            if rules is not None and not (set(checker.rules) & rules):
                continue
            for violation in checker.check(source, context):
                if rules is not None and violation.rule not in rules:
                    continue
                if not is_suppressed(violation, source):
                    violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand directories to their ``*.py`` files, preserving order."""
    collected: list[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected
