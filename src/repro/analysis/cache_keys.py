"""Cache-key soundness checker.

Epoch-keyed functions (the plan cache, the hyper-plan memo, the Amoeba
cutpoint/benefit tables) are replayed whenever the key — which embeds
the owning tables' epochs — matches.  That is only sound if everything
mutable the function reads is *covered* by the epoch: changing it bumps
the epoch and therefore changes the key.  Two rules:

``cache-key-read``
    A function decorated ``@epoch_keyed(reads=(...))`` may not read a
    known mutable table/tree/DFS attribute outside its declared
    ``reads`` tuple.  The attribute list below is the closed set of
    partition-state-dependent accessors in this codebase; immutable
    attributes (schemas, configs, ids) are not tracked.

``cache-key-registration``
    The modules that own epoch-keyed caches must actually register
    their cached functions — a new cache added without a declaration
    escapes the read check, so the expected registrations are pinned
    here per module.
"""

from __future__ import annotations

import ast

from .framework import (
    AnalysisContext,
    Checker,
    SourceFile,
    Violation,
    epoch_keyed_decorator,
    iter_functions,
)

RULE_READ = "cache-key-read"
RULE_REGISTRATION = "cache-key-registration"

#: Attributes whose value depends on mutable partition state.  Reading
#: one inside an epoch-keyed function is sound only when declared.
MUTABLE_ATTRS = frozenset(
    {
        "lookup",
        "lookup_contains",
        "lookup_block",
        "non_empty_block_ids",
        "block_ids",
        "peek_block",
        "get_block",
        "get_blocks",
        "num_rows",
        "ranges",
        "range_of",
        "rows_under_tree",
        "total_rows",
        "tree_row_fractions",
        "sample",
        "epoch",
        "trees",
        "num_trees",
        "tree_of_block",
        "join_range_of_block",
        "delta_between",
        "columns",
        "num_blocks",
        "blocks_of_table",
        "total_bytes",
        "leaves",
        "leaf_bounds",
        "bottom_internal_nodes",
    }
)

#: module -> qualnames that must carry ``@epoch_keyed`` there.
REQUIRED_REGISTRATIONS: dict[str, tuple[str, ...]] = {
    "repro.join.hyperjoin": ("plan_hyper_join", "HyperPlanCache.get_or_plan"),
    "repro.core.optimizer": ("Optimizer._relevant_blocks", "Optimizer._hyper_plan"),
    "repro.adaptive.amoeba": (
        "AmoebaAdaptor._cutpoint_for",
        "AmoebaAdaptor._blocks_touched",
    ),
}


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations: list[Violation] = []
    registered: set[str] = set()
    for func, class_name in iter_functions(source.tree):
        reads = epoch_keyed_decorator(func)
        if reads is None:
            continue
        qualname = f"{class_name}.{func.name}" if class_name else func.name
        registered.add(qualname)
        declared = frozenset(reads)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in MUTABLE_ATTRS
                and node.attr not in declared
            ):
                violations.append(
                    Violation(
                        rule=RULE_READ,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"epoch-keyed {qualname} reads mutable attribute "
                            f".{node.attr} not covered by its declared key"
                        ),
                        hint=(
                            f"add {node.attr!r} to @epoch_keyed(reads=...) if the "
                            "cache key's epoch covers it, or stop reading it"
                        ),
                    )
                )
    for qualname in REQUIRED_REGISTRATIONS.get(source.module, ()):
        if qualname not in registered:
            violations.append(
                Violation(
                    rule=RULE_REGISTRATION,
                    path=source.path,
                    line=1,
                    message=(
                        f"{source.module} must register {qualname} with "
                        "@epoch_keyed(reads=...)"
                    ),
                    hint="decorate the function so its reads are checkable",
                )
            )
    return violations


CHECKER = Checker(
    name="cache-keys",
    rules=(RULE_READ, RULE_REGISTRATION),
    check=check,
    descriptions={
        RULE_READ: (
            "@epoch_keyed functions read only the mutable state their "
            "declared key covers"
        ),
        RULE_REGISTRATION: (
            "modules with epoch-keyed caches register them for invalidation"
        ),
    },
)
