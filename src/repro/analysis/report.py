"""Report rendering (JSON / SARIF 2.1.0) and the violation baseline.

The baseline is a committed JSON file (``analysis_baseline.json`` at the
repo root) listing *accepted* legacy findings as ``(rule, path, message)``
triples.  CI runs the checkers with ``--baseline``: a finding matching a
baseline triple is reported but does not fail the build, so legacy
suppressions stay auditable in one reviewable file while any *new*
violation (different rule, file, or message) still gates.  Matching is
deliberately count-insensitive — two identical findings on different
lines of the same file match one triple — because line numbers churn with
unrelated edits; tightening a file past its baseline is done by
regenerating the file with ``--write-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from .framework import Checker, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def violations_to_json(
    violations: Sequence[Violation], *, file_count: int
) -> dict[str, Any]:
    """Stable machine-readable form: one object per finding."""
    return {
        "files_analyzed": file_count,
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "severity": violation.severity,
                "message": violation.message,
                "hint": violation.hint,
            }
            for violation in violations
        ],
    }


def _sarif_rules(checkers: Iterable[Checker]) -> list[dict[str, Any]]:
    rules: list[dict[str, Any]] = []
    for checker in checkers:
        for rule in checker.rules:
            descriptor: dict[str, Any] = {"id": rule}
            description = checker.descriptions.get(rule)
            if description:
                descriptor["shortDescription"] = {"text": description}
            rules.append(descriptor)
    return rules


def violations_to_sarif(
    violations: Sequence[Violation], checkers: Iterable[Checker]
) -> dict[str, Any]:
    """Minimal SARIF 2.1.0 log: one run, one result per finding."""
    results: list[dict[str, Any]] = []
    for violation in violations:
        message = violation.message
        if violation.hint:
            message = f"{message} ({violation.hint})"
        results.append(
            {
                "ruleId": violation.rule,
                "level": "error" if violation.severity == "error" else "warning",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": violation.path},
                            "region": {"startLine": violation.line},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": _sarif_rules(checkers),
                    }
                },
                "results": results,
            }
        ],
    }


@dataclass(frozen=True)
class Baseline:
    """Accepted legacy findings, matched on ``(rule, path, message)``."""

    entries: frozenset[tuple[str, str, str]]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = frozenset(
            (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            for entry in data.get("violations", [])
        )
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        return cls(
            entries=frozenset(
                (violation.rule, violation.path, violation.message)
                for violation in violations
            )
        )

    def contains(self, violation: Violation) -> bool:
        key = (violation.rule, violation.path, violation.message)
        return key in self.entries

    def split(
        self, violations: Sequence[Violation]
    ) -> tuple[list[Violation], list[Violation]]:
        """Partition into (new, baselined) findings."""
        new: list[Violation] = []
        baselined: list[Violation] = []
        for violation in violations:
            (baselined if self.contains(violation) else new).append(violation)
        return new, baselined

    def to_json(self) -> dict[str, Any]:
        return {
            "comment": (
                "Accepted legacy findings; matched count-insensitively on "
                "(rule, path, message). Regenerate with "
                "python -m repro.analysis --write-baseline after an "
                "intentional change."
            ),
            "violations": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in sorted(self.entries)
            ],
        }

    def write(self, path: Path) -> None:
        path.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )


def render_rules(checkers: Iterable[Checker]) -> str:
    """The ``--rules`` listing: every rule id with its one-line contract."""
    lines: list[str] = []
    for checker in checkers:
        lines.append(f"{checker.name}:")
        for rule in checker.rules:
            description = checker.descriptions.get(rule, "")
            if description:
                lines.append(f"  {rule}: {description}")
            else:
                lines.append(f"  {rule}")
    return "\n".join(lines)


def render_report(
    fmt: str,
    violations: Sequence[Violation],
    *,
    file_count: int,
    checkers: Iterable[Checker],
) -> str:
    """Render findings in ``text`` / ``json`` / ``sarif`` form."""
    if fmt == "json":
        return json.dumps(
            violations_to_json(violations, file_count=file_count), indent=2
        )
    if fmt == "sarif":
        return json.dumps(violations_to_sarif(violations, checkers), indent=2)
    lines = [violation.render() for violation in violations]
    if violations:
        lines.append(f"{len(violations)} violation(s) across {file_count} file(s)")
    else:
        lines.append(f"OK: {file_count} file(s), 0 violations")
    return "\n".join(lines)


__all__ = [
    "Baseline",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "render_report",
    "render_rules",
    "violations_to_json",
    "violations_to_sarif",
]
