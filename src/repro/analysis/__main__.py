"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exits 1 when any checker reports an unsuppressed, non-baselined *error*
— this is the same gate CI's ``static-analysis`` job runs.  Warnings and
baselined legacy findings are reported but do not fail the build.

Output formats (``--format``): ``text`` (default, one line per finding),
``json`` (stable machine-readable), and ``sarif`` (SARIF 2.1.0, suitable
for CI artifact upload / code-scanning ingestion).  ``--out`` writes the
report to a file instead of stdout; wall time always goes to stderr so
CI job logs record checker cost without polluting parseable output.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import ALL_CHECKERS, ALL_RULES, analyze_paths
from .report import Baseline, render_report, render_rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro invariant checkers over source paths.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        nargs="?",
        const="",
        default=None,
        help=(
            "comma-separated rule ids to run (default: all); with no value, "
            "list every rule and its contract, then exit"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "accepted-findings file; matching findings are reported but do "
            "not fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write all current findings to this baseline file and exit 0",
    )
    args = parser.parse_args(argv)

    if args.rules == "":
        print(render_rules(ALL_CHECKERS))
        return 0
    if args.rules is not None:
        requested = frozenset(
            rule.strip() for rule in args.rules.split(",") if rule.strip()
        )
        unknown = requested - ALL_RULES
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules: frozenset[str] | None = requested
    else:
        rules = None

    paths = list(args.paths) or [Path(__file__).resolve().parents[1]]
    started = time.perf_counter()
    violations, file_count = analyze_paths(paths, rules=rules)
    elapsed = time.perf_counter() - started

    if args.write_baseline is not None:
        Baseline.from_violations(violations).write(args.write_baseline)
        print(
            f"wrote {len(violations)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        baseline = Baseline.load(args.baseline)
        new, baselined = baseline.split(violations)
    else:
        new, baselined = list(violations), []

    report = render_report(
        args.format, violations, file_count=file_count, checkers=ALL_CHECKERS
    )
    if args.out is not None:
        args.out.write_text(report + "\n", encoding="utf-8")
    else:
        print(report)

    gating = [violation for violation in new if violation.severity == "error"]
    print(
        f"repro.analysis: {file_count} file(s) in {elapsed:.2f}s — "
        f"{len(gating)} gating, {len(new) - len(gating)} warning(s), "
        f"{len(baselined)} baselined",
        file=sys.stderr,
    )
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
