"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exits 1 when any checker reports an unsuppressed violation, 0 otherwise
— this is the same gate CI's ``static-analysis`` job runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import ALL_RULES, analyze_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro invariant checkers over source paths.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    args = parser.parse_args(argv)

    if args.rules is not None:
        requested = frozenset(
            rule.strip() for rule in args.rules.split(",") if rule.strip()
        )
        unknown = requested - ALL_RULES
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules: frozenset[str] | None = requested
    else:
        rules = None

    paths = list(args.paths) or [Path(__file__).resolve().parents[1]]
    violations, file_count = analyze_paths(paths, rules=rules)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s) across {file_count} file(s)")
        return 1
    print(f"OK: {file_count} file(s), 0 violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
