"""Process-boundary race checker for the shared-memory transport.

The parallel backend pins consolidated blocks into
``multiprocessing.shared_memory`` segments; workers attach them and wrap
the bytes in zero-copy numpy views.  The segments are the *parent's*
blocks — a worker-side write corrupts partition state across the process
boundary with no exception anywhere.  Three rules, applied
interprocedurally to everything reachable from the worker entry points
(``_worker_main`` / ``_execute_payload`` in ``repro.parallel.pool``, the
``run_*`` kernels in ``repro.exec.kernels_tasks``, and the
``SharedSegmentCache`` / ``SharedBlockView`` consumers) via the project
call graph, so a helper called from a kernel is checked too:

``shmem-attached-write`` (error)
    Worker-reachable code must never write an attached array: no
    subscript stores or in-place operators on values derived from
    ``.columns`` / ``.column_parts()`` / ``get_blocks()`` /
    ``np.frombuffer``, no mutating ndarray methods (``fill``, ``sort``,
    ``put``, ...), and no ``.setflags(...)`` that could re-enable
    writes (``setflags(write=False)`` — the sanitizer's own hook — is
    allowed).  Taint flows through local assignments, loops and resolved
    calls (a tainted argument taints the callee's parameter).

``shmem-parent-state`` (error)
    Worker-reachable code must not touch parent-only state: no
    references to the pool/store/session types and no calls into the
    parent-side storage API (``pin_table``, ``peek_block``,
    ``create_block``, ``unlink``, ...).  Workers receive ids, pins and
    flat arrays; everything else stays on the parent side of the queue.

``shmem-payload-frozen`` (error)
    Payload classes crossing the queue (the ``purity`` checker's payload
    set) must be ``@dataclass(frozen=True)`` — a mutable payload invites
    parent-side mutation after submit, which the worker never observes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    AnalysisContext,
    Checker,
    FunctionInfo,
    FunctionKey,
    SourceFile,
    Violation,
    dotted_name,
    map_call_arguments,
)
from .purity import PAYLOAD_CLASSES

RULE_WRITE = "shmem-attached-write"
RULE_PARENT = "shmem-parent-state"
RULE_FROZEN = "shmem-payload-frozen"

#: Attribute loads that yield attached arrays (or containers of them).
SOURCE_ATTRS = frozenset({"columns", "_columns"})
#: Method calls that yield attached arrays / views.
SOURCE_CALLS = frozenset({"column_parts", "get_blocks"})
#: Dict-view methods that pass taint through (``cols.values()[...]``).
PASS_THROUGH_CALLS = frozenset({"values", "items", "get", "copy"})
#: ndarray methods that mutate their receiver in place.
INPLACE_NDARRAY_METHODS = frozenset(
    {"fill", "sort", "partition", "resize", "itemset", "put", "byteswap"}
)
#: numpy module-level functions whose first argument is written in place.
INPLACE_NDARRAY_FUNCS = frozenset({"put", "copyto", "place", "putmask", "at"})

#: Types a worker must never reference (parent-side state).
PARENT_TYPES = frozenset(
    {
        "SharedBlockStore",
        "WorkerPool",
        "StoredTable",
        "Catalog",
        "Session",
        "DistributedFileSystem",
        "Cluster",
        "Optimizer",
        "Executor",
    }
)
#: Calls that only the parent side may make.
PARENT_CALLS = frozenset(
    {
        "unlink",
        "pin_table",
        "unpin_table",
        "peek_block",
        "create_block",
        "delete_block",
        "put_block",
        "submit",
    }
)

#: Worker entry points: (module, predicate on function name / class).
WORKER_CLASS_ROOTS = frozenset({"SharedSegmentCache", "SharedBlockView"})


def _walk_body(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements, skipping nested function/class definitions."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _is_root(info: FunctionInfo) -> bool:
    if info.class_name in WORKER_CLASS_ROOTS:
        return True
    if info.module == "repro.parallel.pool" and info.name in {
        "_worker_main",
        "_execute_payload",
    }:
        return True
    if info.module == "repro.exec.kernels_tasks" and info.name.startswith("run_"):
        return True
    return False


def _expr_tainted(expr: ast.expr, names: set[str]) -> bool:
    """Whether an expression yields an attached array or a container of them."""
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Attribute):
        if expr.attr in SOURCE_ATTRS:
            return True
        return _expr_tainted(expr.value, names)
    if isinstance(expr, ast.Subscript):
        return _expr_tainted(expr.value, names)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            if func.attr in SOURCE_CALLS:
                return True
            if func.attr in PASS_THROUGH_CALLS:
                return _expr_tainted(func.value, names)
            if func.attr == "frombuffer":
                return True
        elif isinstance(func, ast.Name) and func.id == "frombuffer":
            return True
        return False
    if isinstance(expr, ast.Starred):
        return _expr_tainted(expr.value, names)
    return False


def _local_taint(info: FunctionInfo, initial: set[str]) -> set[str]:
    """Propagate attached-ness through local names to a fixpoint."""
    names = set(initial)
    while True:
        added = False
        for node in _walk_body(info.node.body):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id not in names
                and _expr_tainted(node.value, names)
            ):
                names.add(node.targets[0].id)
                added = True
            elif isinstance(node, (ast.For, ast.AsyncFor)) and _expr_tainted(
                node.iter, names
            ):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        added = True
        if not added:
            return names


def _setflags_enables_write(call: ast.Call) -> bool:
    """True unless the call is exactly the sanctioned ``setflags(write=False)``."""
    if call.args:
        return True
    for keyword in call.keywords:
        if keyword.arg == "write":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is False:
                continue
            return True
        else:
            return True
    return False


def _check_function(
    info: FunctionInfo, tainted_params: frozenset[str]
) -> list[Violation]:
    violations: list[Violation] = []
    names = _local_taint(info, set(tainted_params))
    label = info.qualname

    def flag(rule: str, line: int, message: str, hint: str) -> None:
        violations.append(
            Violation(rule=rule, path=info.path, line=line, message=message, hint=hint)
        )

    for node in _walk_body(info.node.body):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            if isinstance(node, ast.Assign):
                targets: list[ast.expr] = list(node.targets)
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Starred):
                    target = target.value
                hit = False
                if isinstance(target, ast.Subscript):
                    hit = _expr_tainted(target.value, names)
                elif isinstance(target, ast.Name) and isinstance(node, ast.AugAssign):
                    hit = target.id in names
                if hit:
                    flag(
                        RULE_WRITE,
                        node.lineno,
                        f"worker-side {label} writes an attached shared-memory "
                        "array",
                        "attached views are the parent's blocks; copy before "
                        "mutating (np.array(view)) or move the write parent-side",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if attr == "setflags" and _expr_tainted(receiver, names):
                if _setflags_enables_write(node):
                    flag(
                        RULE_WRITE,
                        node.lineno,
                        f"worker-side {label} re-enables writes on an attached "
                        "array via setflags",
                        "only setflags(write=False) is allowed worker-side",
                    )
            elif attr in INPLACE_NDARRAY_METHODS and _expr_tainted(receiver, names):
                flag(
                    RULE_WRITE,
                    node.lineno,
                    f"worker-side {label} calls in-place ndarray method "
                    f".{attr}() on an attached array",
                    "operate on a copy (np.array(view)) instead",
                )
            elif (
                attr in INPLACE_NDARRAY_FUNCS
                and node.args
                and _expr_tainted(node.args[0], names)
            ):
                name = dotted_name(node.func)
                if name is not None and name.split(".", 1)[0] in {"np", "numpy"}:
                    flag(
                        RULE_WRITE,
                        node.lineno,
                        f"worker-side {label} writes an attached array via "
                        f"numpy {name}",
                        "operate on a copy (np.array(view)) instead",
                    )
            if attr in PARENT_CALLS:
                flag(
                    RULE_PARENT,
                    node.lineno,
                    f"worker-side {label} calls parent-only API .{attr}()",
                    "workers receive ids/pins and attach segments; parent-side "
                    "storage calls must stay in the parent process",
                )
        if isinstance(node, ast.Name) and node.id in PARENT_TYPES:
            flag(
                RULE_PARENT,
                node.lineno,
                f"worker-side {label} references parent-only type {node.id}",
                "pass ids or pins across the process boundary instead",
            )
    return violations


def _worker_violations(context: AnalysisContext) -> dict[str, list[Violation]]:
    """path -> violations, over everything worker-reachable (cached)."""

    def build() -> dict[str, list[Violation]]:
        graph = context.graph
        taint: dict[FunctionKey, frozenset[str]] = {
            key: frozenset()
            for key, info in graph.functions.items()
            if _is_root(info)
        }
        while True:
            changed = False
            for key in list(taint):
                info = graph.functions[key]
                names = _local_taint(info, set(taint[key]))
                for node in _walk_body(info.node.body):
                    if not isinstance(node, ast.Call):
                        continue
                    callee_key = graph.resolve_call(node, info)
                    if callee_key is None or callee_key == key:
                        continue
                    callee = graph.functions[callee_key]
                    arg_map = map_call_arguments(node, callee)
                    tainted_params = frozenset(
                        param
                        for param, arg in arg_map.items()
                        if _expr_tainted(arg, names)
                    )
                    merged = taint.get(callee_key, frozenset()) | tainted_params
                    if taint.get(callee_key) != merged:
                        taint[callee_key] = merged
                        changed = True
            if not changed:
                break
        by_path: dict[str, list[Violation]] = {}
        for key, params in taint.items():
            info = graph.functions[key]
            for violation in _check_function(info, params):
                by_path.setdefault(violation.path, []).append(violation)
        return by_path

    return context.cache("shmem.worker-violations", build)


def _check_payload_frozen(source: SourceFile) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in PAYLOAD_CLASSES:
            continue
        frozen = False
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = dotted_name(decorator.func)
                if name is not None and name.split(".")[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if keyword.arg == "frozen" and isinstance(
                            keyword.value, ast.Constant
                        ):
                            frozen = bool(keyword.value.value)
        if not frozen:
            violations.append(
                Violation(
                    rule=RULE_FROZEN,
                    path=source.path,
                    line=node.lineno,
                    message=(
                        f"payload class {node.name} must be @dataclass(frozen=True) "
                        "to cross the process boundary"
                    ),
                    hint="freeze it so submitted payloads cannot drift from what "
                    "the worker unpickled",
                )
            )
    return violations


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations = list(_worker_violations(context).get(source.path, ()))
    if source.module.startswith("repro.parallel"):
        violations.extend(_check_payload_frozen(source))
    return violations


CHECKER = Checker(
    name="shmem",
    rules=(RULE_WRITE, RULE_PARENT, RULE_FROZEN),
    check=check,
    descriptions={
        RULE_WRITE: (
            "worker-reachable code never writes attached shared-memory "
            "arrays (subscript stores, in-place ops, setflags)"
        ),
        RULE_PARENT: (
            "worker-reachable code never touches parent-only state "
            "(pool, store, session, DFS, parent storage calls)"
        ),
        RULE_FROZEN: (
            "payload classes crossing the worker queue are "
            "@dataclass(frozen=True)"
        ),
    },
)
