"""Task-purity checker.

Compiled :class:`~repro.exec.tasks.Task` objects are the unit the
scheduler, the simulator, and the ROADMAP's future process-pool backend
move around.  They stay cheap to copy/pickle and safe to replay only if
they carry ids and flat arrays — never live storage objects.  Rules:

``task-purity-field``
    ``Task``/``TaskSchedule`` dataclass fields may not be annotated with
    storage/runtime types (``Block``, ``StoredTable``, ``Catalog``, ...).

``task-purity-capture``
    In ``repro.exec``, a value obtained from block storage (``peek_block``,
    ``get_block(s)``, or a ``Block``/``StoredTable`` constructor) may not
    be passed into a ``Task(...)``/``new_task(...)`` construction — tasks
    must re-fetch blocks by id at execution time.  The taint tracking is
    shallow by design: direct calls, names assigned from them, and list
    comprehensions over them.
"""

from __future__ import annotations

import ast

from .framework import AnalysisContext, Checker, SourceFile, Violation, dotted_name

RULE_FIELD = "task-purity-field"
RULE_CAPTURE = "task-purity-capture"

#: Types a task may never reference.
BANNED_TYPES = frozenset(
    {
        "Block",
        "StoredTable",
        "Catalog",
        "DistributedFileSystem",
        "Cluster",
        "TreeNode",
        "PartitioningTree",
        "ColumnTable",
    }
)

#: Parallel-backend payloads obey the same purity discipline as tasks:
#: they cross a process boundary, so only ids, pins and flat data may ride.
PAYLOAD_CLASSES = frozenset(
    {
        "ScanPayload",
        "ShuffleMapPayload",
        "ShuffleReducePayload",
        "HyperGroupPayload",
        "TaskOutcome",
    }
)

TASK_CLASSES = frozenset({"Task", "TaskSchedule"}) | PAYLOAD_CLASSES
TASK_CONSTRUCTORS = frozenset({"Task", "new_task"}) | PAYLOAD_CLASSES
TAINT_METHODS = frozenset({"peek_block", "get_block", "get_blocks"})
TAINT_CONSTRUCTORS = frozenset({"Block", "StoredTable"})

#: ``repro.storage.persist`` is in scope so that any future payload/task
#: class in the durable tier obeys the same ids-and-flat-arrays
#: discipline as the execution and parallel layers.
SCOPE_PREFIXES = ("repro.exec", "repro.parallel", "repro.storage.persist")


def _annotation_mentions_banned(annotation: ast.expr) -> str | None:
    """The first banned type named in an annotation, if any."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in BANNED_TYPES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in BANNED_TYPES:
            return node.attr
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Nested string annotation, e.g. list["Block"].
            if node.value in BANNED_TYPES:
                return node.value
    return None


def _check_task_fields(source: SourceFile) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in TASK_CLASSES:
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            banned = _annotation_mentions_banned(stmt.annotation)
            if banned is not None:
                violations.append(
                    Violation(
                        rule=RULE_FIELD,
                        path=source.path,
                        line=stmt.lineno,
                        message=(
                            f"{node.name} field references {banned}; tasks must "
                            "hold only ids and flat data"
                        ),
                        hint="store the object's id and look it up at run time",
                    )
                )
    return violations


def _is_taint_source(node: ast.expr, tainted: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in TAINT_METHODS:
            return True
        name = dotted_name(func)
        if name is not None and name.split(".")[-1] in TAINT_CONSTRUCTORS:
            return True
        return False
    if isinstance(node, ast.ListComp):
        return _is_taint_source(node.elt, tainted)
    return False


def _check_captures(source: SourceFile) -> list[Violation]:
    violations: list[Violation] = []
    for scope in [source.tree, *(
        node
        for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )]:
        tainted: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_taint_source(node.value, tainted):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] not in TASK_CONSTRUCTORS:
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if _is_taint_source(argument, tainted):
                    violations.append(
                        Violation(
                            rule=RULE_CAPTURE,
                            path=source.path,
                            line=node.lineno,
                            message=(
                                "task construction captures a live storage "
                                "object (Block/StoredTable)"
                            ),
                            hint="pass block/table ids; fetch blocks inside the task",
                        )
                    )
                    break
    # Module- and function-level walks overlap; keep one finding per line.
    unique = {violation.line: violation for violation in violations}
    return [unique[line] for line in sorted(unique)]


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    if not source.module.startswith(SCOPE_PREFIXES):
        return []
    violations = _check_task_fields(source)
    violations.extend(_check_captures(source))
    return violations


CHECKER = Checker(
    name="task-purity",
    rules=(RULE_FIELD, RULE_CAPTURE),
    check=check,
    descriptions={
        RULE_FIELD: (
            "compiled task payload fields carry ids and plain data, never "
            "live storage objects"
        ),
        RULE_CAPTURE: (
            "task-building code never closes over live storage objects"
        ),
    },
)
