"""Epoch-discipline checker.

The plan cache and the hyper-plan memo key on table epochs, so every
partition-state mutation must reach ``bump_epoch()`` before control
returns to a caller.  Two rules enforce that:

``epoch-discipline``
    Inside methods of the partition-state owners (``StoredTable``,
    ``DistributedFileSystem``, ``PartitioningTree``): if a method mutates
    protected state — by assigning a protected field, calling a mutating
    container method on one, or calling a ``@mutates_partition_state``
    helper — then every non-raising exit of the method must have passed
    through ``bump_epoch()`` (or a method proven to always bump).
    Methods decorated ``@mutates_partition_state`` are exempt — the
    obligation moves to their call sites.  Outside the storage and
    partitioning layers, a call to a registered mutator is flagged
    unless a call to a method proven (project-wide) to always bump
    follows on every non-raising exit of the enclosing function — the
    same dataflow that checks the owner classes, now fed by whole-program
    always-bump summaries from the :class:`~.framework.ProjectGraph`
    pre-pass instead of per-file re-walks.

``epoch-direct-write``
    No code outside the owning module may assign a protected field
    directly (``table._tree_rows[x] = ...`` from the optimizer, say).
    Constructors writing ``self.<field>`` are exempt.

``epoch-descriptor``
    Every ``bump_epoch()`` call must pass a change descriptor
    (:class:`repro.common.epochs.PartitionDelta`).  The incremental
    planner patches cached overlap matrices, groupings and plans from
    these descriptors; a bare bump would silently record "nothing we
    can describe" as an empty delta and let stale state survive.  A
    site that genuinely cannot describe its change must say so with
    ``PartitionDelta.full_change()`` — there is no argument-free escape
    hatch.

The per-method analysis is a small path-sensitive dataflow over three
states — no mutation yet, mutated-unbumped, bumped — tracking the *set*
of possible states per program point.  A bump in a statement wins over a
mutation in the same statement (``self._epoch += 1`` lives inside
``bump_epoch`` itself); ``raise`` exits are exempt (failed operations
surface as exceptions, not stale caches); loops run to a fixpoint; and
``try`` bodies over-approximate what their handlers may observe.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    AnalysisContext,
    Checker,
    FunctionNode,
    SourceFile,
    Violation,
    has_decorator,
    iter_functions,
)

RULE_DISCIPLINE = "epoch-discipline"
RULE_DIRECT_WRITE = "epoch-direct-write"
RULE_DESCRIPTOR = "epoch-descriptor"

#: Partition-state fields per owning class.  Derived caches that are
#: recomputed on demand (compiled trees, ``_empty_template``) and pure
#: accounting (read stats) are deliberately absent.
STORED_TABLE_FIELDS = frozenset(
    {
        "trees",
        "_block_to_tree",
        "_next_tree_id",
        "_block_rows",
        "_tree_rows",
        "_tree_blocks",
        "_non_empty",
        "_total_rows",
        "_epoch",
    }
)
DFS_FIELDS = frozenset({"_blocks", "_placement", "_table_blocks", "_next_block_id"})
TREE_FIELDS = frozenset({"attribute", "cutpoint", "left", "right", "block_id", "root"})

PROTECTED_BY_CLASS: dict[str, frozenset[str]] = {
    "StoredTable": STORED_TABLE_FIELDS,
    "DistributedFileSystem": DFS_FIELDS,
    "PartitioningTree": TREE_FIELDS,
}

#: Modules allowed to write each field group directly (prefix match).
ALLOWED_WRITERS: tuple[tuple[frozenset[str], tuple[str, ...]], ...] = (
    (STORED_TABLE_FIELDS, ("repro.storage.table",)),
    (DFS_FIELDS, ("repro.storage.dfs",)),
    (TREE_FIELDS, ("repro.partitioning", "repro.storage.table")),
)

#: Container methods that mutate their receiver in place.
MUTATING_CONTAINER_METHODS = frozenset(
    {
        "add",
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "update",
        "setdefault",
        "clear",
    }
)

#: Layers that own partition state; mutator calls are legal only here.
MUTATOR_CALLER_PREFIXES = ("repro.storage", "repro.partitioning", "repro.analysis")

#: Methods never subject to the bump-on-every-path obligation.
EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "bump_epoch"})

# Possible states at a program point.
_EMPTY = "no-mutation"
_MUT = "mutated-unbumped"
_BUMP = "bumped"

States = frozenset[str]


def _self_field(node: ast.expr) -> str | None:
    """The first attribute off ``self`` in a chain like ``self.f[k].g``."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(current, ast.Attribute)
            and isinstance(current.value, ast.Name)
            and current.value.id == "self"
        ):
            return current.attr
        current = current.value
    return None


def _target_field(target: ast.expr) -> str | None:
    """The ``self`` field a store target writes, if any."""
    if isinstance(target, ast.Starred):
        target = target.value
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return _self_field(target)
    return None


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _events(
    node: ast.AST,
    fields: frozenset[str],
    mutator_names: frozenset[str],
    bump_names: frozenset[str],
    any_receiver_bump: bool = False,
) -> tuple[bool, bool]:
    """Scan one statement/expression for (bump, mutation) events.

    Nested function/class definitions are skipped — their bodies run
    later, not here.  ``any_receiver_bump`` accepts a bumping call on any
    receiver (``table.resplit_leaf_pair(...)``), which is what external
    callers look like; the owner-class analysis keeps the strict
    ``self.``-receiver form.
    """
    bump = False
    mutate = False
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(current, ast.Call) and isinstance(current.func, ast.Attribute):
            attr = current.func.attr
            receiver = current.func.value
            if attr in bump_names and (
                any_receiver_bump
                or (isinstance(receiver, ast.Name) and receiver.id == "self")
            ):
                bump = True
            elif attr in mutator_names:
                mutate = True
            elif attr in MUTATING_CONTAINER_METHODS and _self_field(receiver) in fields:
                mutate = True
        elif isinstance(current, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                current.targets if isinstance(current, ast.Assign) else [current.target]
            )
            for target in targets:
                for leaf in _flatten_targets(target):
                    if _target_field(leaf) in fields:
                        mutate = True
        elif isinstance(current, ast.Delete):
            for target in current.targets:
                if _target_field(target) in fields:
                    mutate = True
        stack.extend(ast.iter_child_nodes(current))
    return bump, mutate


class _MethodFlow:
    """Path-sensitive walk of one method body, collecting exit states."""

    def __init__(
        self,
        fields: frozenset[str],
        mutator_names: frozenset[str],
        bump_names: frozenset[str],
        any_receiver_bump: bool = False,
    ) -> None:
        self._fields = fields
        self._mutators = mutator_names
        self._bumps = bump_names
        self._any_receiver_bump = any_receiver_bump
        #: (line, possible states) at each return / fall-off exit.
        self.exits: list[tuple[int, States]] = []

    def run(self, func: FunctionNode) -> list[tuple[int, States]]:
        fall, _, _ = self._block(func.body, frozenset({_EMPTY}))
        if fall:
            last = func.body[-1]
            self.exits.append((last.end_lineno or last.lineno, fall))
        return self.exits

    # ---------------------------------------------------------------- #
    def _apply(self, node: ast.AST, states: States) -> States:
        bump, mutate = _events(
            node, self._fields, self._mutators, self._bumps, self._any_receiver_bump
        )
        if bump:
            return frozenset({_BUMP})
        if mutate:
            return frozenset(_BUMP if state == _BUMP else _MUT for state in states)
        return states

    def _block(
        self, stmts: list[ast.stmt], states: States
    ) -> tuple[States, States, States]:
        """Run a statement list; return (fall-through, break, continue) states."""
        breaks: States = frozenset()
        continues: States = frozenset()
        current = states
        for stmt in stmts:
            if not current:
                break
            fall, brk, cont = self._stmt(stmt, current)
            breaks |= brk
            continues |= cont
            current = fall
        return current, breaks, continues

    def _stmt(self, stmt: ast.stmt, states: States) -> tuple[States, States, States]:
        empty: States = frozenset()
        if isinstance(stmt, ast.Return):
            self.exits.append((stmt.lineno, self._apply(stmt, states)))
            return empty, empty, empty
        if isinstance(stmt, ast.Raise):
            return empty, empty, empty
        if isinstance(stmt, ast.Break):
            return empty, states, empty
        if isinstance(stmt, ast.Continue):
            return empty, empty, states
        if isinstance(stmt, ast.If):
            after_test = self._apply(stmt.test, states)
            then_fall, then_brk, then_cont = self._block(stmt.body, after_test)
            else_fall, else_brk, else_cont = self._block(stmt.orelse, after_test)
            return (
                then_fall | else_fall,
                then_brk | else_brk,
                then_cont | else_cont,
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head: ast.AST = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            in_states = states
            while True:
                at_head = self._apply(head, in_states)
                body_fall, body_brk, body_cont = self._block(stmt.body, at_head)
                widened = states | body_fall | body_cont
                if widened == in_states:
                    break
                in_states = widened
            else_fall, else_brk, else_cont = self._block(stmt.orelse, at_head)
            return else_fall | body_brk, else_brk, else_cont
        if isinstance(stmt, ast.Try):
            body_fall, breaks, continues = self._block(stmt.body, states)
            bump, mutate = _events_in_block(
                stmt.body, self._fields, self._mutators, self._bumps,
                self._any_receiver_bump,
            )
            handler_in = states | body_fall
            if mutate:
                handler_in |= frozenset({_MUT})
            if bump:
                handler_in |= frozenset({_BUMP})
            handler_falls: States = frozenset()
            for handler in stmt.handlers:
                fall, brk, cont = self._block(handler.body, handler_in)
                handler_falls |= fall
                breaks |= brk
                continues |= cont
            else_fall, else_brk, else_cont = self._block(stmt.orelse, body_fall)
            breaks |= else_brk
            continues |= else_cont
            before_final = else_fall | handler_falls
            if stmt.finalbody:
                final_fall, final_brk, final_cont = self._block(
                    stmt.finalbody, before_final
                )
                return final_fall, breaks | final_brk, continues | final_cont
            return before_final, breaks, continues
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current = states
            for item in stmt.items:
                current = self._apply(item.context_expr, current)
            return self._block(stmt.body, current)
        if isinstance(stmt, ast.Match):
            after_subject = self._apply(stmt.subject, states)
            match_fall = after_subject  # conservatively: no case may match
            match_breaks: States = frozenset()
            match_continues: States = frozenset()
            for case in stmt.cases:
                case_fall, case_brk, case_cont = self._block(case.body, after_subject)
                match_fall |= case_fall
                match_breaks |= case_brk
                match_continues |= case_cont
            return match_fall, match_breaks, match_continues
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states, frozenset(), frozenset()
        return self._apply(stmt, states), frozenset(), frozenset()


def _events_in_block(
    stmts: list[ast.stmt],
    fields: frozenset[str],
    mutator_names: frozenset[str],
    bump_names: frozenset[str],
    any_receiver_bump: bool = False,
) -> tuple[bool, bool]:
    bump = False
    mutate = False
    for stmt in stmts:
        stmt_bump, stmt_mutate = _events(
            stmt, fields, mutator_names, bump_names, any_receiver_bump
        )
        bump = bump or stmt_bump
        mutate = mutate or stmt_mutate
    return bump, mutate


def _class_methods(class_node: ast.ClassDef) -> list[FunctionNode]:
    return [
        node
        for node in class_node.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _always_bumps(
    class_node: ast.ClassDef, fields: frozenset[str], mutator_names: frozenset[str]
) -> frozenset[str]:
    """Method names proven to bump on every non-raising exit (fixpoint)."""
    proven: set[str] = set()
    methods = _class_methods(class_node)
    while True:
        changed = False
        for method in methods:
            if method.name in proven or method.name in EXEMPT_METHODS:
                continue
            bump_names = frozenset({"bump_epoch"}) | frozenset(proven)
            flow = _MethodFlow(fields, mutator_names, bump_names)
            exits = flow.run(method)
            if exits and all(states == frozenset({_BUMP}) for _, states in exits):
                proven.add(method.name)
                changed = True
        if not changed:
            return frozenset(proven)


#: Per-class-definition always-bump sets plus their project-wide union.
BumpSummaries = tuple[dict[tuple[str, int], frozenset[str]], frozenset[str]]


def _bump_summaries(context: AnalysisContext) -> BumpSummaries:
    """Whole-program always-bump summaries, computed once per analysis run.

    Every protected class definition in the project gets its fixpoint
    computed exactly once (keyed by ``(path, lineno)``); the union of all
    proven method names feeds the external-caller flow check, so a method
    like ``StoredTable.resplit_leaf_pair`` counts as a bump event in any
    module without re-walking ``table.py`` per analyzed file.
    """

    def build() -> BumpSummaries:
        per_class: dict[tuple[str, int], frozenset[str]] = {}
        union: set[str] = set()
        for source in context.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef) and node.name in PROTECTED_BY_CLASS:
                    proven = _always_bumps(
                        node, PROTECTED_BY_CLASS[node.name], context.mutator_names
                    )
                    per_class[(source.path, node.lineno)] = proven
                    union |= proven
        return per_class, frozenset(union)

    return context.cache("epoch.bump-summaries", build)


def _check_owner_classes(
    source: SourceFile, context: AnalysisContext
) -> list[Violation]:
    violations: list[Violation] = []
    per_class, _ = _bump_summaries(context)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in PROTECTED_BY_CLASS:
            continue
        fields = PROTECTED_BY_CLASS[node.name]
        bump_names = frozenset({"bump_epoch"}) | per_class.get(
            (source.path, node.lineno), frozenset()
        )
        for method in _class_methods(node):
            if method.name in EXEMPT_METHODS:
                continue
            if has_decorator(method, "mutates_partition_state"):
                continue
            flow = _MethodFlow(fields, context.mutator_names, bump_names)
            for line, states in flow.run(method):
                if _MUT in states:
                    violations.append(
                        Violation(
                            rule=RULE_DISCIPLINE,
                            path=source.path,
                            line=method.lineno,
                            message=(
                                f"{node.name}.{method.name} can exit (line {line}) "
                                "with partition state mutated but the epoch not "
                                "bumped"
                            ),
                            hint=(
                                "call self.bump_epoch() on every mutating path, "
                                "or mark the method @mutates_partition_state and "
                                "bump at its call sites"
                            ),
                        )
                    )
                    break
    return violations


def _mutator_calls(body: list[ast.stmt], mutator_names: frozenset[str]) -> list[tuple[int, str]]:
    """(line, name) of each mutator call in ``body``, skipping nested defs."""
    calls: list[tuple[int, str]] = []
    stack: list[ast.AST] = list(body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if (
            isinstance(current, ast.Call)
            and isinstance(current.func, ast.Attribute)
            and current.func.attr in mutator_names
        ):
            calls.append((current.lineno, current.func.attr))
        stack.extend(ast.iter_child_nodes(current))
    return sorted(calls)


def _external_mutator_violation(source: SourceFile, line: int, name: str) -> Violation:
    return Violation(
        rule=RULE_DISCIPLINE,
        path=source.path,
        line=line,
        message=(
            f"call to partition-state mutator .{name}() "
            "outside the storage/partitioning layers"
        ),
        hint=(
            "follow it with a call to a bumping StoredTable method on every "
            "path, or suppress with a justification"
        ),
    )


def _check_external_mutator_calls(
    source: SourceFile, context: AnalysisContext
) -> list[Violation]:
    """Mutator calls outside the owning layers must be followed by a bump.

    A registered ``@mutates_partition_state`` call in, say, the adaptive
    layer is accepted only when a call to a method proven project-wide to
    always bump (or ``bump_epoch`` itself) follows on every non-raising
    exit of the enclosing function — the Amoeba resplit pattern.  Mutator
    calls at module level have no enclosing flow and are always flagged.
    """
    if source.module.startswith(MUTATOR_CALLER_PREFIXES):
        return []
    violations: list[Violation] = []
    _, proven_names = _bump_summaries(context)
    bump_names = frozenset({"bump_epoch"}) | proven_names
    function_lines: set[int] = set()
    for func, _class in iter_functions(source.tree):
        if func.end_lineno is not None:
            function_lines.update(range(func.lineno, func.end_lineno + 1))
        calls = _mutator_calls(func.body, context.mutator_names)
        if not calls:
            continue
        flow = _MethodFlow(
            frozenset(), context.mutator_names, bump_names, any_receiver_bump=True
        )
        exits = flow.run(func)
        if any(_MUT in states for _, states in exits):
            for line, name in calls:
                violations.append(_external_mutator_violation(source, line, name))
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in context.mutator_names
            and node.lineno not in function_lines
        ):
            violations.append(
                _external_mutator_violation(source, node.lineno, node.func.attr)
            )
    return violations


def _field_of_store_target(target: ast.expr) -> str | None:
    """The attribute a store/delete target ultimately writes, any receiver."""
    if isinstance(target, ast.Starred):
        target = target.value
    current: ast.expr = target
    while isinstance(current, ast.Subscript):
        current = current.value
    if isinstance(current, ast.Attribute):
        return current.attr
    return None


def _enclosing_constructors(tree: ast.Module) -> set[int]:
    """Line spans (as a set of lines) covered by ``__init__``-like methods."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in {"__init__", "__post_init__"}
            and node.end_lineno is not None
        ):
            lines.update(range(node.lineno, node.end_lineno + 1))
    return lines


def _check_direct_writes(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations: list[Violation] = []
    constructor_lines: set[int] | None = None
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            raw_targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            targets = [
                leaf for target in raw_targets for leaf in _flatten_targets(target)
            ]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        else:
            continue
        for target in targets:
            field = _field_of_store_target(target)
            if field is None:
                continue
            for fields, writers in ALLOWED_WRITERS:
                if field not in fields:
                    continue
                if source.module.startswith(writers):
                    continue
                is_self = (
                    _target_field(target) == field
                )  # write through ``self``
                if is_self:
                    if constructor_lines is None:
                        constructor_lines = _enclosing_constructors(source.tree)
                    if node.lineno in constructor_lines:
                        continue
                violations.append(
                    Violation(
                        rule=RULE_DIRECT_WRITE,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"direct write to partition-state field .{field} "
                            "outside its owning module"
                        ),
                        hint="use the owning class's mutating API so the epoch bumps",
                    )
                )
    return violations


def _check_bump_descriptors(
    source: SourceFile, context: AnalysisContext
) -> list[Violation]:
    """Flag ``bump_epoch()`` calls that carry no change descriptor."""
    violations: list[Violation] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "bump_epoch":
            continue
        if node.args or node.keywords:
            continue
        violations.append(
            Violation(
                rule=RULE_DESCRIPTOR,
                path=source.path,
                line=node.lineno,
                message="bump_epoch() called without a change descriptor",
                hint=(
                    "pass a PartitionDelta describing what changed, or "
                    "PartitionDelta.full_change() if the change cannot be "
                    "described"
                ),
            )
        )
    return violations


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations = _check_owner_classes(source, context)
    violations.extend(_check_external_mutator_calls(source, context))
    violations.extend(_check_direct_writes(source, context))
    violations.extend(_check_bump_descriptors(source, context))
    return violations


CHECKER = Checker(
    name="epoch",
    rules=(RULE_DISCIPLINE, RULE_DIRECT_WRITE, RULE_DESCRIPTOR),
    check=check,
    descriptions={
        RULE_DISCIPLINE: (
            "every partition-state mutation reaches bump_epoch() before "
            "control returns to a caller"
        ),
        RULE_DIRECT_WRITE: (
            "no code outside the owning module assigns a protected "
            "partition-state field directly"
        ),
        RULE_DESCRIPTOR: (
            "every bump_epoch() call passes a PartitionDelta change descriptor"
        ),
    },
)
