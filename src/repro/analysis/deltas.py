"""Delta-completeness checker.

``PartitionDelta`` descriptors drive the incremental planner: a cached
plan is patched (not recomputed) from the merged descriptors between two
epochs, so a ``bump_epoch()`` whose descriptor *under-describes* the
mutation lets stale plan state survive silently.  This checker
abstract-interprets every function that builds a descriptor over the
sets of block/tree ids it mutates and proves each mutated id flows into
the delta:

``delta-completeness`` (error)
    Every block/tree id mutated in a descriptor-building function —
    through a direct write to an id-keyed field, a call to an id-mutating
    helper (``_append_rows``, ``_clear_block``, ``_forget_tree``,
    ``dfs.delete_block``, block-content writes through a ``peek_block``
    alias, ``tree(x).resplit_node``), including transitively through
    helpers summarized to a fixpoint over the project graph — must appear
    in the delta (constructor sets, ``.add``/``.update``/``|=``, loop
    variables of described collections), unless the delta is
    ``full_change()``.

``delta-over-description`` (warning)
    A plain id name described by the delta but never mutated in the
    function suggests descriptor drift (a removed mutation whose
    description stayed behind).  Restricted to bare names — computed
    descriptions like ``self.tree_of_block(left_id)`` legitimately cover
    mutations performed by the caller.

Scope notes.  The analysis unit is a function whose ``bump_epoch()``
call (direct, or through a helper whose parameter provably forwards to
``bump_epoch`` — summarized to fixpoint) receives a descriptor *built
here*: an inline ``PartitionDelta(...)``, a local name assigned one, or
``PartitionDelta.full_change()``.  A delta received as a parameter is
the caller's obligation (the bump-before-mutate discipline fills it in
the callee; its additions are checked where mutation ids are local), so
such functions are skipped.  Mutations of ids that are callee-local
(derived inside a helper, like the tree id a row-count update resolves)
are not attributable to caller arguments and are deliberately out of
scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from .framework import (
    AnalysisContext,
    Checker,
    FunctionInfo,
    FunctionKey,
    FunctionNode,
    SourceFile,
    Violation,
    iter_functions,
    map_call_arguments,
    parameter_names,
)

RULE_COMPLETENESS = "delta-completeness"
RULE_OVER = "delta-over-description"

#: id-keyed partition-state fields, by the kind of id that keys them.
BLOCK_KEYED_FIELDS = frozenset(
    {"_block_rows", "_block_to_tree", "_blocks", "_placement"}
)
TREE_KEYED_FIELDS = frozenset({"trees", "_tree_rows", "_tree_blocks", "_non_empty"})

#: PartitionDelta attributes, by id kind.
DELTA_BLOCK_ATTRS = frozenset({"blocks_changed", "blocks_dropped"})
DELTA_TREE_ATTRS = frozenset({"trees_resplit", "trees_added", "trees_dropped"})

#: Method calls whose first argument is a mutated block id.
BLOCK_ID_CALLS = frozenset({"delete_block"})

#: Block-content mutators reached through a ``peek_block`` alias.
BLOCK_CONTENT_MUTATORS = frozenset({"append_rows", "clear", "replace_columns"})

#: Container methods that mutate an id-keyed field in place.
CONTAINER_MUTATORS = frozenset(
    {"add", "append", "extend", "insert", "pop", "popitem", "remove", "discard",
     "update", "setdefault", "clear"}
)


def _field_kind(attr: str) -> str | None:
    if attr in BLOCK_KEYED_FIELDS:
        return "block"
    if attr in TREE_KEYED_FIELDS:
        return "tree"
    return None


def _delta_attr_kind(attr: str) -> str | None:
    if attr in DELTA_BLOCK_ATTRS:
        return "block"
    if attr in DELTA_TREE_ATTRS:
        return "tree"
    return None


def _walk_body(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements, skipping nested function/class definitions."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _is_full_change(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "full_change"
    )


def _is_delta_constructor(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name == "PartitionDelta"


def _bump_delta_arg(call: ast.Call) -> ast.expr | None:
    """The descriptor argument of a ``bump_epoch(...)`` call, if this is one."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "bump_epoch":
        return None
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "delta":
            return keyword.value
    return None


# ---------------------------------------------------------------------- #
# Whole-program summaries
# ---------------------------------------------------------------------- #

#: (parameter name, id kind) pairs a function mutates.
MutationSummary = frozenset[tuple[str, str]]
#: Parameter names a function forwards into ``bump_epoch()``.
ForwardSummary = frozenset[str]

#: A mutation site: (id expression source, id kind, line).  ``expr`` is
#: ``None`` for unattributable whole-container mutations.
Site = tuple[str | None, str, int]


def _peek_aliases(body: list[ast.stmt]) -> dict[str, str]:
    """Local names bound to ``*.peek_block(<id>)`` -> the id expression."""
    aliases: dict[str, str] = {}
    for node in _walk_body(body):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "peek_block"
            and node.value.args
        ):
            aliases[node.targets[0].id] = ast.unparse(node.value.args[0])
    return aliases


def _subscript_field_site(target: ast.expr, line: int) -> Site | None:
    """A store/delete through ``<recv>.<id_field>[<id>]``, as a site."""
    if isinstance(target, ast.Starred):
        target = target.value
    if not isinstance(target, ast.Subscript):
        return None
    base = target.value
    if isinstance(base, ast.Attribute):
        kind = _field_kind(base.attr)
        if kind is not None:
            return (ast.unparse(target.slice), kind, line)
    return None


def _mutation_sites(
    info: FunctionInfo,
    context: AnalysisContext,
    summaries: Mapping[FunctionKey, MutationSummary],
) -> list[Site]:
    """Every id-mutation site in one function body."""
    sites: list[Site] = []
    aliases = _peek_aliases(info.node.body)
    for node in _walk_body(info.node.body):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                site = _subscript_field_site(target, node.lineno)
                if site is not None:
                    sites.append(site)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                site = _subscript_field_site(target, node.lineno)
                if site is not None:
                    sites.append(site)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if attr in BLOCK_ID_CALLS and node.args:
                sites.append((ast.unparse(node.args[0]), "block", node.lineno))
                continue
            if (
                attr == "resplit_node"
                and isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Attribute)
                and receiver.func.attr == "tree"
                and receiver.args
            ):
                sites.append((ast.unparse(receiver.args[0]), "tree", node.lineno))
                continue
            if (
                attr in BLOCK_CONTENT_MUTATORS
                and isinstance(receiver, ast.Name)
                and receiver.id in aliases
            ):
                sites.append((aliases[receiver.id], "block", node.lineno))
                continue
            if attr in CONTAINER_MUTATORS:
                # ``self._tree_blocks[tid].append(...)`` mutates tree tid;
                # ``self._tree_blocks.pop(tid)`` mutates tree tid;
                # ``self.trees.clear()`` mutates every id (unattributable).
                if isinstance(receiver, ast.Subscript) and isinstance(
                    receiver.value, ast.Attribute
                ):
                    kind = _field_kind(receiver.value.attr)
                    if kind is not None:
                        sites.append(
                            (ast.unparse(receiver.slice), kind, node.lineno)
                        )
                        continue
                if isinstance(receiver, ast.Attribute):
                    kind = _field_kind(receiver.attr)
                    if kind is not None:
                        if node.args and not isinstance(node.args[0], ast.Starred):
                            sites.append(
                                (ast.unparse(node.args[0]), kind, node.lineno)
                            )
                        else:
                            sites.append((None, kind, node.lineno))
                        continue
            callee_key = context.graph.resolve_call(node, info)
            if callee_key is not None:
                summary = summaries.get(callee_key)
                if summary:
                    callee = context.graph.functions[callee_key]
                    arg_map = map_call_arguments(node, callee)
                    for param, kind in sorted(summary):
                        arg = arg_map.get(param)
                        if arg is not None:
                            sites.append((ast.unparse(arg), kind, node.lineno))
    return sites


def _mutation_summaries(
    context: AnalysisContext,
) -> dict[FunctionKey, MutationSummary]:
    """Per-function (param, kind) mutation summaries, to a fixpoint."""

    def build() -> dict[FunctionKey, MutationSummary]:
        def compute(
            info: FunctionInfo, current: Mapping[FunctionKey, MutationSummary]
        ) -> MutationSummary:
            params = set(parameter_names(info.node))
            return frozenset(
                (expr, kind)
                for expr, kind, _ in _mutation_sites(info, context, current)
                if expr is not None and expr in params
            )

        return context.graph.fixpoint_summaries(compute)

    return context.cache("deltas.mutation-summaries", build)


def _forward_summaries(context: AnalysisContext) -> dict[FunctionKey, ForwardSummary]:
    """Parameter names each function provably forwards into ``bump_epoch``."""

    def build() -> dict[FunctionKey, ForwardSummary]:
        def compute(
            info: FunctionInfo, current: Mapping[FunctionKey, ForwardSummary]
        ) -> ForwardSummary:
            params = set(parameter_names(info.node))
            forwarded: set[str] = set()
            for node in _walk_body(info.node.body):
                if not isinstance(node, ast.Call):
                    continue
                delta = _bump_delta_arg(node)
                if delta is not None:
                    if isinstance(delta, ast.Name) and delta.id in params:
                        forwarded.add(delta.id)
                    continue
                callee_key = context.graph.resolve_call(node, info)
                if callee_key is None:
                    continue
                summary = current.get(callee_key)
                if not summary:
                    continue
                callee = context.graph.functions[callee_key]
                arg_map = map_call_arguments(node, callee)
                for param in summary:
                    arg = arg_map.get(param)
                    if isinstance(arg, ast.Name) and arg.id in params:
                        forwarded.add(arg.id)
            return frozenset(forwarded)

        return context.graph.fixpoint_summaries(compute)

    return context.cache("deltas.forward-summaries", build)


# ---------------------------------------------------------------------- #
# Descriptor extraction
# ---------------------------------------------------------------------- #


class _Description:
    """What one function's descriptor(s) declare as changed."""

    def __init__(self) -> None:
        self.full = False
        self.described: dict[str, set[str]] = {"block": set(), "tree": set()}
        #: plain-name descriptions, for the over-description warning.
        self.plain: dict[str, list[tuple[str, int]]] = {"block": [], "tree": []}
        #: described collection expressions whose *elements* are covered.
        self.collections: dict[str, set[str]] = {"block": set(), "tree": set()}

    def add_element(self, kind: str, expr: ast.expr, plain_ok: bool = True) -> None:
        self.described[kind].add(ast.unparse(expr))
        if plain_ok and isinstance(expr, ast.Name):
            self.plain[kind].append((expr.id, expr.lineno))

    def add_collection(self, kind: str, expr: ast.expr) -> None:
        if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
            for element in expr.elts:
                self.add_element(kind, element)
        elif isinstance(expr, (ast.SetComp, ast.GeneratorExp, ast.ListComp)):
            self.described[kind].add(ast.unparse(expr.elt))
        else:
            self.collections[kind].add(ast.unparse(expr))

    def absorb_loops(self, body: list[ast.stmt]) -> None:
        """Loop variables over a described collection are described ids."""
        for node in _walk_body(body):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iterated = ast.unparse(node.iter)
            for kind in ("block", "tree"):
                if iterated in self.collections[kind]:
                    for target in ast.walk(node.target):
                        if isinstance(target, ast.Name):
                            self.described[kind].add(target.id)


def _parse_constructor(description: _Description, call: ast.Call) -> None:
    for keyword in call.keywords:
        if keyword.arg == "full":
            if isinstance(keyword.value, ast.Constant) and keyword.value.value:
                description.full = True
            continue
        kind = _delta_attr_kind(keyword.arg or "")
        if kind is not None:
            description.add_collection(kind, keyword.value)


def _collect_descriptor(
    func: FunctionNode, delta_exprs: list[ast.expr]
) -> _Description | None:
    """Build the described-id sets; ``None`` means skip this function.

    Skipped cases: a delta received as a parameter (the caller's
    obligation) and delta expressions too dynamic to see through.
    """
    description = _Description()
    params = set(parameter_names(func))
    local_names: set[str] = set()
    for expr in delta_exprs:
        if _is_full_change(expr):
            description.full = True
        elif _is_delta_constructor(expr):
            _parse_constructor(description, expr)
        elif isinstance(expr, ast.Name):
            if expr.id in params:
                return None
            assigned = _local_delta_assignment(func, expr.id)
            if assigned is None:
                return None
            if _is_full_change(assigned):
                description.full = True
            else:
                _parse_constructor(description, assigned)
            local_names.add(expr.id)
        else:
            return None
    _absorb_local_ops(description, func, local_names)
    description.absorb_loops(func.body)
    return description


def _local_delta_assignment(func: FunctionNode, name: str) -> ast.Call | None:
    """The ``<name> = PartitionDelta...`` assignment in ``func``, if any."""
    for node in _walk_body(func.body):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Call)
            and (_is_delta_constructor(node.value) or _is_full_change(node.value))
        ):
            return node.value
    return None


def _absorb_local_ops(
    description: _Description, func: FunctionNode, names: set[str]
) -> None:
    """Fold ``delta.<attr>.add/update`` and ``delta.<attr> |= ...`` in."""
    for node in _walk_body(func.body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"add", "update"}
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id in names
        ):
            kind = _delta_attr_kind(node.func.value.attr)
            if kind is None or not node.args:
                continue
            if node.func.attr == "add":
                description.add_element(kind, node.args[0])
            else:
                description.add_collection(kind, node.args[0])
        elif (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.BitOr)
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id in names
        ):
            kind = _delta_attr_kind(node.target.attr)
            if kind is not None:
                description.add_collection(kind, node.value)


# ---------------------------------------------------------------------- #
# The checker
# ---------------------------------------------------------------------- #


def _delta_exprs(
    info: FunctionInfo,
    context: AnalysisContext,
    forwards: Mapping[FunctionKey, ForwardSummary],
) -> list[ast.expr]:
    """Descriptor expressions this function hands to ``bump_epoch``."""
    exprs: list[ast.expr] = []
    for node in _walk_body(info.node.body):
        if not isinstance(node, ast.Call):
            continue
        delta = _bump_delta_arg(node)
        if delta is not None:
            exprs.append(delta)
            continue
        callee_key = context.graph.resolve_call(node, info)
        if callee_key is None:
            continue
        summary = forwards.get(callee_key)
        if not summary:
            continue
        callee = context.graph.functions[callee_key]
        arg_map = map_call_arguments(node, callee)
        for param in sorted(summary):
            arg = arg_map.get(param)
            if arg is not None:
                exprs.append(arg)
    return exprs


_KIND_HINTS = {
    "block": "blocks_changed / blocks_dropped",
    "tree": "trees_added / trees_dropped / trees_resplit",
}


def check(source: SourceFile, context: AnalysisContext) -> list[Violation]:
    violations: list[Violation] = []
    forwards = _forward_summaries(context)
    summaries = _mutation_summaries(context)
    for func, class_name in iter_functions(source.tree):
        if func.name == "bump_epoch":
            continue
        qualname = f"{class_name}.{func.name}" if class_name else func.name
        info = context.graph.functions.get((source.path, qualname))
        if info is None or info.node is not func:
            continue
        delta_exprs = _delta_exprs(info, context, forwards)
        if not delta_exprs:
            continue
        description = _collect_descriptor(func, delta_exprs)
        if description is None or description.full:
            continue
        sites = _mutation_sites(info, context, summaries)
        seen: set[tuple[str | None, str, int]] = set()
        mutated: dict[str, set[str]] = {"block": set(), "tree": set()}
        for expr, kind, line in sites:
            if expr is not None:
                mutated[kind].add(expr)
            if (expr, kind, line) in seen:
                continue
            seen.add((expr, kind, line))
            if expr is None:
                violations.append(
                    Violation(
                        rule=RULE_COMPLETENESS,
                        path=source.path,
                        line=line,
                        message=(
                            f"{qualname} mutates a whole id-keyed container but "
                            "its PartitionDelta cannot describe that"
                        ),
                        hint="use PartitionDelta.full_change() for bulk mutations",
                    )
                )
            elif expr not in description.described[kind]:
                violations.append(
                    Violation(
                        rule=RULE_COMPLETENESS,
                        path=source.path,
                        line=line,
                        message=(
                            f"{qualname} mutates {kind} id `{expr}` but its "
                            "PartitionDelta never describes it"
                        ),
                        hint=(
                            f"add it to {_KIND_HINTS[kind]} on the descriptor "
                            "passed to bump_epoch(), or use full_change()"
                        ),
                    )
                )
        for kind in ("block", "tree"):
            for name, line in description.plain[kind]:
                if name not in mutated[kind]:
                    violations.append(
                        Violation(
                            rule=RULE_OVER,
                            path=source.path,
                            line=line,
                            message=(
                                f"{qualname} describes {kind} id `{name}` in its "
                                "PartitionDelta but never mutates it"
                            ),
                            hint=(
                                "drop the stale description, or leave a comment "
                                "suppression if the caller mutates it"
                            ),
                            severity="warning",
                        )
                    )
    return violations


CHECKER = Checker(
    name="deltas",
    rules=(RULE_COMPLETENESS, RULE_OVER),
    check=check,
    descriptions={
        RULE_COMPLETENESS: (
            "every block/tree id a descriptor-building function mutates "
            "flows into the PartitionDelta passed to bump_epoch()"
        ),
        RULE_OVER: (
            "a plain id described by a PartitionDelta but never mutated "
            "in the function suggests descriptor drift (warning)"
        ),
    },
)
