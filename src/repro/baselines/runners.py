"""Workload runners for AdaptDB and the configuration-only baselines.

All comparison systems in the paper's evaluation execute the same query
sequences; they differ in how data is partitioned, whether the layout adapts,
and which join algorithm is used.  Every runner in this package exposes the
same two-method interface::

    runner = FullScanBaseline(tables)
    results = runner.run_workload(queries)    # list[QueryResult]

Runners in this module are thin configuration presets over one
:class:`repro.api.Session` each — the preset is a dict of
:class:`~repro.core.config.AdaptDBConfig` overrides plus an "adapt" flag, so
the engine wiring lives in exactly one place (the session):

* :class:`AdaptDBRunner` — the full system (smooth repartitioning + Amoeba
  refinement + cost-based hyper/shuffle choice),
* :class:`AdaptDBShuffleOnlyRunner` — AdaptDB's partitioning but shuffle
  joins only ("AdaptDB w/ Shuffle Join" in Figure 12),
* :class:`FullScanBaseline` — no pruning, no adaptation, shuffle joins
  ("Full Scan" in Figures 13 and 18),
* :class:`AmoebaBaseline` — selection-only adaptation with shuffle joins
  (the prior system AdaptDB builds on, compared in Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, Protocol

from ..api.session import Session
from ..common.query import Query
from ..core.config import AdaptDBConfig
from ..core.executor import QueryResult
from ..storage.table import ColumnTable


class WorkloadRunner(Protocol):
    """Anything that can execute a list of queries and report per-query results."""

    name: str

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the queries in order and return one result per query."""
        ...  # pragma: no cover - protocol definition


def build_session(tables: list[ColumnTable], config: AdaptDBConfig) -> Session:
    """Create a session and load ``tables`` with upfront partitioning."""
    session = Session(config=config)
    for table in tables:
        session.load_table(table)
    return session


@dataclass
class ConfiguredRunner:
    """Base for runners that are a config preset over one session.

    Subclasses set ``config_overrides`` (applied with ``dataclasses.replace``
    on top of the caller's config) and ``adapt`` (whether the workload runs
    with per-query adaptation).
    """

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "AdaptDB"
    session: Session = field(init=False)
    config_overrides: ClassVar[dict] = {}
    adapt: ClassVar[bool] = True

    def __post_init__(self) -> None:
        config = (
            replace(self.config, **self.config_overrides)
            if self.config_overrides
            else self.config
        )
        self.session = build_session(self.tables, config)

    @property
    def db(self) -> Session:
        """The underlying engine (kept under the pre-session attribute name)."""
        return self.session

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload under this runner's configuration preset."""
        return self.session.run_workload(queries, adapt=self.adapt)


@dataclass
class AdaptDBRunner(ConfiguredRunner):
    """The full AdaptDB system."""

    name: str = "AdaptDB"


@dataclass
class AdaptDBShuffleOnlyRunner(ConfiguredRunner):
    """AdaptDB's adaptive partitioning, but every join runs as a shuffle join."""

    name: str = "AdaptDB w/ Shuffle Join"
    config_overrides: ClassVar[dict] = {"force_join_method": "shuffle"}


@dataclass
class FullScanBaseline(ConfiguredRunner):
    """No partition pruning, no adaptation, shuffle joins everywhere."""

    name: str = "Full Scan"
    config_overrides: ClassVar[dict] = {
        "enable_pruning": False,
        "enable_smooth": False,
        "enable_amoeba": False,
        "force_join_method": "shuffle",
    }
    adapt: ClassVar[bool] = False


@dataclass
class AmoebaBaseline(ConfiguredRunner):
    """Amoeba [21]: selection-driven adaptation only, joins always shuffle."""

    name: str = "Amoeba"
    config_overrides: ClassVar[dict] = {
        "enable_smooth": False,
        "enable_amoeba": True,
        "force_join_method": "shuffle",
    }
