"""Workload runners for AdaptDB and the configuration-only baselines.

All comparison systems in the paper's evaluation execute the same query
sequences; they differ in how data is partitioned, whether the layout adapts,
and which join algorithm is used.  Every runner in this package exposes the
same two-method interface::

    runner = FullScanBaseline(tables)
    results = runner.run_workload(queries)    # list[QueryResult]

Runners in this module are thin configurations of the AdaptDB engine itself:

* :class:`AdaptDBRunner` — the full system (smooth repartitioning + Amoeba
  refinement + cost-based hyper/shuffle choice),
* :class:`AdaptDBShuffleOnlyRunner` — AdaptDB's partitioning but shuffle
  joins only ("AdaptDB w/ Shuffle Join" in Figure 12),
* :class:`FullScanBaseline` — no pruning, no adaptation, shuffle joins
  ("Full Scan" in Figures 13 and 18),
* :class:`AmoebaBaseline` — selection-only adaptation with shuffle joins
  (the prior system AdaptDB builds on, compared in Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol

from ..common.query import Query
from ..core.adaptdb import AdaptDB
from ..core.config import AdaptDBConfig
from ..core.executor import QueryResult
from ..storage.table import ColumnTable


class WorkloadRunner(Protocol):
    """Anything that can execute a list of queries and report per-query results."""

    name: str

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the queries in order and return one result per query."""
        ...  # pragma: no cover - protocol definition


def build_adaptdb(tables: list[ColumnTable], config: AdaptDBConfig) -> AdaptDB:
    """Create an AdaptDB instance and load ``tables`` with upfront partitioning."""
    db = AdaptDB(config)
    for table in tables:
        db.load_table(table)
    return db


@dataclass
class AdaptDBRunner:
    """The full AdaptDB system."""

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "AdaptDB"
    db: AdaptDB = field(init=False)

    def __post_init__(self) -> None:
        self.db = build_adaptdb(self.tables, self.config)

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload with adaptation enabled."""
        return self.db.run_workload(queries)


@dataclass
class AdaptDBShuffleOnlyRunner:
    """AdaptDB's adaptive partitioning, but every join runs as a shuffle join."""

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "AdaptDB w/ Shuffle Join"
    db: AdaptDB = field(init=False)

    def __post_init__(self) -> None:
        self.db = build_adaptdb(self.tables, replace(self.config, force_join_method="shuffle"))

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload with adaptation enabled but shuffle joins forced."""
        return self.db.run_workload(queries)


@dataclass
class FullScanBaseline:
    """No partition pruning, no adaptation, shuffle joins everywhere."""

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "Full Scan"
    db: AdaptDB = field(init=False)

    def __post_init__(self) -> None:
        self.db = build_adaptdb(
            self.tables,
            replace(
                self.config,
                enable_pruning=False,
                enable_smooth=False,
                enable_amoeba=False,
                force_join_method="shuffle",
            ),
        )

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload without adapting the layout."""
        return self.db.run_workload(queries, adapt=False)


@dataclass
class AmoebaBaseline:
    """Amoeba [21]: selection-driven adaptation only, joins always shuffle."""

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "Amoeba"
    db: AdaptDB = field(init=False)

    def __post_init__(self) -> None:
        self.db = build_adaptdb(
            self.tables,
            replace(
                self.config,
                enable_smooth=False,
                enable_amoeba=True,
                force_join_method="shuffle",
            ),
        )

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload with Amoeba's selection-only adaptation."""
        return self.db.run_workload(queries)
