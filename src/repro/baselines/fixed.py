""""Best guess" hand-tuned fixed partitioning (Figure 18).

For the CMT experiment the paper compares AdaptDB against a partitioning tree
built *by hand* from the attributes appearing in the full 103-query trace:
each table's join attribute occupies the top tree levels and the most
frequent predicate attributes the lower levels, and the layout never changes
afterwards.  It represents the best a static, workload-aware partitioning can
do — AdaptDB is expected to converge towards (and occasionally beat) it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from collections import Counter

from ..api.session import Session
from ..common.query import Query
from ..core.config import AdaptDBConfig
from ..core.executor import QueryResult
from ..partitioning.two_phase import TwoPhasePartitioner
from ..partitioning.upfront import UpfrontPartitioner
from ..storage.table import ColumnTable


@dataclass
class BestGuessFixedBaseline:
    """A static layout tuned from the full query trace, with no adaptation.

    Attributes:
        tables: Raw input tables.
        workload: The full query trace used to choose each table's join
            attribute and hot selection attributes.
        config: Engine configuration.
    """

    tables: list[ColumnTable]
    workload: list[Query]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = '"Best Guess" Fixed Partitioning'
    session: Session = field(init=False)

    def __post_init__(self) -> None:
        self.session = Session(
            config=replace(self.config, enable_smooth=False, enable_amoeba=False)
        )
        for table in self.tables:
            tree = self._hand_tuned_tree(table)
            self.session.load_table(table, tree=tree)

    @property
    def db(self) -> Session:
        """The underlying engine (kept under the pre-session attribute name)."""
        return self.session

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload on the fixed, hand-tuned layout."""
        return self.session.run_workload(queries, adapt=False)

    # ------------------------------------------------------------------ #
    # Layout construction
    # ------------------------------------------------------------------ #
    def _hand_tuned_tree(self, table: ColumnTable):
        join_attribute = self._dominant_join_attribute(table.name)
        selection_attributes = self._hot_selection_attributes(table.name, table)
        sample = table.sample(self.config.sample_size)
        num_leaves = max(1, math.ceil(table.num_rows / self.config.rows_per_block))

        if join_attribute is None:
            attributes = selection_attributes or table.schema.column_names
            return UpfrontPartitioner(
                attributes=attributes, rows_per_block=self.config.rows_per_block
            ).build(sample, total_rows=table.num_rows, num_leaves=num_leaves)

        partitioner = TwoPhasePartitioner(
            join_attribute=join_attribute,
            selection_attributes=selection_attributes,
            rows_per_block=self.config.rows_per_block,
            join_level_fraction=self.config.join_level_fraction,
        )
        return partitioner.build(sample, total_rows=table.num_rows, num_leaves=num_leaves)

    def _dominant_join_attribute(self, table_name: str) -> str | None:
        counts: Counter[str] = Counter()
        for query in self.workload:
            attribute = query.join_attribute(table_name)
            if attribute is not None:
                counts[attribute] += 1
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    def _hot_selection_attributes(self, table_name: str, table: ColumnTable) -> list[str]:
        counts: Counter[str] = Counter()
        for query in self.workload:
            for attribute in query.predicate_attributes(table_name):
                counts[attribute] += 1
        return [
            attribute
            for attribute, _ in counts.most_common()
            if attribute in table.schema
        ]
