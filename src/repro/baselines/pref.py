"""Predicate-based reference partitioning (PREF [25]) baseline (Figure 12).

PREF is a *static*, workload-aware partitioner: given the join graph it
co-partitions chains of tables on their reference (join) keys and replicates
tuples that are reachable through several join paths so that every join can
run locally, without shuffling.  The trade-offs relative to AdaptDB that the
paper highlights are:

* no shuffle joins — every join is co-partitioned (good),
* data replication — the replicated copies inflate I/O (bad), and
* partitioning only on reference keys — selection predicates on other
  attributes cannot prune blocks (bad for selective queries).

The reproduction models exactly these three effects: each table is loaded
with a single tree partitioned *only* on its reference key (so joins are
co-partitioned and selections do not prune), joins are forced to the
co-partitioned hyper-join path, and the final I/O is inflated by a
replication factor derived from how many distinct join attributes reference
each table in the workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..api.session import Session
from ..common.query import Query
from ..core.config import AdaptDBConfig
from ..core.executor import QueryResult
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable

#: Default reference keys for the TPC-H join graph used in the evaluation.
TPCH_REFERENCE_KEYS = {
    "lineitem": "l_orderkey",
    "orders": "o_orderkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "supplier": "s_suppkey",
}


@dataclass
class PREFBaseline:
    """A simplified predicate-based reference partitioning comparator.

    Attributes:
        tables: Raw input tables.
        reference_keys: Partitioning (reference) key per table.  Tables
            without an entry fall back to their first column.
        workload_hint: Queries used to derive per-table replication factors
            (how many distinct join attributes reference each table).  When
            omitted, a factor of 1 is used for every table.
        config: Engine configuration.
    """

    tables: list[ColumnTable]
    reference_keys: dict[str, str] = field(default_factory=lambda: dict(TPCH_REFERENCE_KEYS))
    workload_hint: list[Query] = field(default_factory=list)
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    name: str = "PREF"
    session: Session = field(init=False)
    replication_factors: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.session = Session(
            config=replace(self.config, enable_smooth=False, enable_amoeba=False,
                           force_join_method="hyper")
        )
        for table in self.tables:
            key = self.reference_keys.get(table.name, table.schema.column_names[0])
            tree = self._reference_tree(table, key)
            self.session.load_table(table, tree=tree)
        self.replication_factors = self._derive_replication_factors()

    @property
    def db(self) -> Session:
        """The underlying engine (kept under the pre-session attribute name)."""
        return self.session

    # ------------------------------------------------------------------ #
    # Workload execution
    # ------------------------------------------------------------------ #
    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload on the static PREF layout."""
        return [self._run_query(query) for query in queries]

    def _run_query(self, query: Query) -> QueryResult:
        result = self.session.run(query, adapt=False)
        inflation = self._query_replication_factor(query)
        if inflation > 1.0:
            cost_model = self.session.cluster.cost_model
            result.cost_units *= inflation
            result.blocks_read = int(round(result.blocks_read * inflation))
            result.runtime_seconds = cost_model.to_seconds(result.cost_units)
        return result

    # ------------------------------------------------------------------ #
    # Layout construction
    # ------------------------------------------------------------------ #
    def _reference_tree(self, table: ColumnTable, key: str):
        """A tree partitioned exclusively on the table's reference key."""
        num_leaves = max(1, math.ceil(table.num_rows / self.config.rows_per_block))
        depth = max(1, math.ceil(math.log2(num_leaves))) if num_leaves > 1 else 0
        partitioner = TwoPhasePartitioner(
            join_attribute=key,
            selection_attributes=[],
            rows_per_block=self.config.rows_per_block,
        )
        sample = table.sample(self.config.sample_size)
        return partitioner.build(
            sample, total_rows=table.num_rows, num_leaves=num_leaves, join_levels=depth
        )

    def _derive_replication_factors(self) -> dict[str, float]:
        """Replication factor per table: distinct join attributes referencing it.

        A table joined through a single key needs no extra copies; every
        additional join path requires replicating its tuples along that path
        (predicate-based reference partitioning keeps one copy per path).
        """
        attributes: dict[str, set[str]] = {table.name: set() for table in self.tables}
        for query in self.workload_hint:
            for clause in query.joins:
                for table_name in (clause.left_table, clause.right_table):
                    if table_name in attributes:
                        attributes[table_name].add(clause.column_for(table_name))
        return {
            name: float(max(1, len(columns)))
            for name, columns in attributes.items()
        }

    def _query_replication_factor(self, query: Query) -> float:
        """I/O inflation for one query: mean replication of the tables it reads."""
        factors = [self.replication_factors.get(table, 1.0) for table in query.tables]
        if not factors:
            return 1.0
        return float(sum(factors) / len(factors))
