"""The "Repartitioning" baseline (Figures 13 and 18).

Instead of migrating a few blocks per query, this baseline performs a
*complete* repartitioning of a table as soon as half of the queries in the
query window use a new join attribute.  The full reorganization cost is
charged to the query that triggers it, producing the tall latency spikes the
paper reports; between reorganizations it benefits from hyper-joins just
like AdaptDB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..adaptive.window import QueryWindow
from ..api.session import Session
from ..common.query import Query
from ..core.config import AdaptDBConfig
from ..core.executor import QueryResult
from ..partitioning.two_phase import TwoPhasePartitioner
from ..storage.table import ColumnTable
from .runners import build_session


@dataclass
class FullRepartitioningBaseline:
    """Complete (non-incremental) repartitioning triggered by the query window.

    Attributes:
        tables: Raw input tables.
        config: Engine configuration (window size, block size, ...).
        trigger_fraction: Fraction of the window that must use a new join
            attribute before the full repartitioning is performed (paper: ½).
    """

    tables: list[ColumnTable]
    config: AdaptDBConfig = field(default_factory=AdaptDBConfig)
    trigger_fraction: float = 0.5
    name: str = "Repartitioning"
    session: Session = field(init=False)
    window: QueryWindow = field(init=False)

    def __post_init__(self) -> None:
        # Incremental adaptation is disabled: this runner does its own, abrupt
        # repartitioning and otherwise uses cost-based join selection.
        self.session = build_session(
            self.tables,
            replace(self.config, enable_smooth=False, enable_amoeba=False),
        )
        self.window = QueryWindow(size=self.config.window_size)

    @property
    def db(self) -> Session:
        """The underlying engine (kept under the pre-session attribute name)."""
        return self.session

    def run_workload(self, queries: list[Query]) -> list[QueryResult]:
        """Run the workload, fully repartitioning tables when triggered."""
        return [self._run_query(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_query(self, query: Query) -> QueryResult:
        self.window.add(query)
        repartitioned_blocks = self._maybe_repartition(query)
        result = self.session.run(query, adapt=False)
        if repartitioned_blocks:
            cost_model = self.session.cluster.cost_model
            extra_cost = cost_model.repartition_cost(repartitioned_blocks)
            result.blocks_repartitioned += repartitioned_blocks
            result.cost_units += extra_cost
            result.runtime_seconds = cost_model.to_seconds(result.cost_units)
        return result

    def _maybe_repartition(self, query: Query) -> int:
        """Fully repartition every joined table whose window majority demands it.

        Returns:
            The number of blocks rewritten (0 when nothing was triggered).
        """
        blocks_rewritten = 0
        threshold = self.trigger_fraction * max(len(self.window), 1)
        for table_name in query.tables:
            if table_name not in self.session.catalog:
                continue
            join_attribute = query.join_attribute(table_name)
            if join_attribute is None:
                continue
            table = self.session.catalog.get(table_name)
            already = (
                table.num_trees == 1
                and table.tree_for_join_attribute(join_attribute) is not None
            )
            if already:
                continue
            matching = self.window.count_join_attribute(table_name, join_attribute)
            if matching < threshold:
                continue

            selection_attributes = [
                name for name in table.sample if name != join_attribute
            ]
            partitioner = TwoPhasePartitioner(
                join_attribute=join_attribute,
                selection_attributes=selection_attributes,
                rows_per_block=self.config.rows_per_block,
                join_level_fraction=self.config.join_level_fraction,
            )
            num_leaves = max(1, math.ceil(max(table.total_rows, 1) / self.config.rows_per_block))
            tree = partitioner.build(
                table.sample, total_rows=table.total_rows, num_leaves=num_leaves
            )
            stats = table.replace_with_tree(tree)
            blocks_rewritten += stats.source_blocks + stats.target_blocks_touched
        return blocks_rewritten
