"""Comparison systems: Full Scan, Amoeba, full repartitioning, PREF, hand-tuned fixed."""

from .fixed import BestGuessFixedBaseline
from .full_repartitioning import FullRepartitioningBaseline
from .pref import PREFBaseline, TPCH_REFERENCE_KEYS
from .runners import (
    AdaptDBRunner,
    AdaptDBShuffleOnlyRunner,
    AmoebaBaseline,
    ConfiguredRunner,
    FullScanBaseline,
    WorkloadRunner,
    build_session,
)

__all__ = [
    "AdaptDBRunner",
    "AdaptDBShuffleOnlyRunner",
    "AmoebaBaseline",
    "BestGuessFixedBaseline",
    "ConfiguredRunner",
    "FullRepartitioningBaseline",
    "FullScanBaseline",
    "PREFBaseline",
    "TPCH_REFERENCE_KEYS",
    "WorkloadRunner",
    "build_session",
]
