"""Shared-memory block transport for the multi-core execution backend.

The parallel backend (``repro.parallel``) runs one worker process per
simulated machine.  Workers must read block columns without serialising
them through the task queue, so this module pins a table's consolidated
per-column arrays into named ``multiprocessing.shared_memory`` segments:

* :class:`SharedBlockStore` (parent side) sits under the
  :class:`~repro.storage.dfs.DistributedFileSystem`: ``pin_table`` copies
  every block's contiguous columns (the PR-2 chunk consolidation makes
  them contiguous already) into one segment per table and returns a
  :class:`TablePin` — a picklable catalog of ``(offset, dtype, length)``
  column specs.  Pins are **epoch-checked**: re-pinning a table whose
  partition-state epoch moved unlinks the stale segment and builds a
  fresh one, so a repartition can never leave workers reading old rows.
* :class:`SharedSegmentCache` (worker side) attaches segments by name and
  wraps them in read-only :class:`SharedBlockView` objects exposing the
  same ``num_rows`` / ``columns`` / ``column_parts()`` reader interface as
  :class:`~repro.storage.block.Block`, so the task kernels in
  ``repro.exec.kernels_tasks`` run unchanged in either process.

Lifecycle: the parent owns every segment (create + unlink); workers only
ever attach and detach.  ``SharedBlockStore.close()`` unlinks everything
and is additionally registered via ``atexit`` so segments cannot outlive
the session even on abnormal teardown (a crashed worker never owns a
segment, so it can leak nothing).
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from ..common.errors import StorageError
from ..common.sanitize import freeze_attached

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .table import StoredTable

#: Column start offsets are aligned so every numpy view is itemsize-aligned.
_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    A plain attach registers the segment with the attaching process's
    ``resource_tracker``, which then believes it owns cleanup — wrong for
    workers, which never own segments, and noisy at shutdown (the tracker
    warns about "leaked" objects the parent already unlinked).  Python
    3.13 grew a ``track=False`` parameter; on older interpreters we
    suppress the registration by swapping ``resource_tracker.register``
    for a no-op around the attach.  Workers are single-threaded, so the
    swap cannot race, and a register-then-unregister round trip (which
    can itself race the tracker's own lifecycle) is avoided entirely.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


# --------------------------------------------------------------------- #
# Picklable catalog records (these ride in task payloads — no live
# Block/StoredTable objects, per the repro.analysis purity rules)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnSpec:
    """Where one block column lives inside a pinned segment."""

    name: str
    offset: int
    dtype: str
    length: int


@dataclass(frozen=True)
class BlockSpec:
    """One block's layout inside a pinned segment."""

    block_id: int
    num_rows: int
    columns: tuple[ColumnSpec, ...]


@dataclass(frozen=True)
class TablePin:
    """A pinned table: segment name plus the per-block column catalog.

    The pin is what crosses the process boundary — it is a plain picklable
    record.  ``epoch`` is the table's partition-state epoch at pin time;
    the parent guarantees a pin is only shipped while it is current.
    """

    table: str
    epoch: int
    segment: str
    size_bytes: int
    blocks: dict[int, BlockSpec]

    def block(self, block_id: int) -> BlockSpec:
        try:
            return self.blocks[block_id]
        except KeyError:
            raise StorageError(
                f"block {block_id} is not pinned for table {self.table!r}"
            ) from None


# --------------------------------------------------------------------- #
# Worker-side read view
# --------------------------------------------------------------------- #
class SharedBlockView:
    """Read-only view of one pinned block, mimicking the Block reader API.

    Exposes exactly the surface the task kernels consume: ``num_rows``,
    ``columns`` and ``column_parts()``.  The arrays are zero-copy views
    into the shared segment and must be treated as read-only.
    """

    __slots__ = ("block_id", "num_rows", "_columns")

    def __init__(self, block_id: int, num_rows: int, columns: dict[str, np.ndarray]) -> None:
        self.block_id = block_id
        self.num_rows = num_rows
        self._columns = columns

    @property
    def columns(self) -> dict[str, np.ndarray]:
        return self._columns

    def column_parts(self) -> list[dict[str, np.ndarray]]:
        if self.num_rows == 0:
            return []
        return [self._columns]


def _views_of(buffer: memoryview, spec: BlockSpec) -> dict[str, np.ndarray]:
    columns: dict[str, np.ndarray] = {}
    for col in spec.columns:
        if col.length == 0:
            columns[col.name] = np.empty(0, dtype=np.dtype(col.dtype))
        else:
            columns[col.name] = np.frombuffer(
                buffer, dtype=np.dtype(col.dtype), count=col.length, offset=col.offset
            )
    # Under REPRO_SANITIZE=1 the views are actually read-only, so a worker
    # write raises at the write site instead of corrupting parent blocks.
    return freeze_attached(columns)


class SharedSegmentCache:
    """Worker-side cache of attached segments and block views.

    Keyed by table name; a pin with a new segment name (the parent only
    re-pins on an epoch bump) evicts and detaches the stale attachment, so
    a worker never reads rows from before a repartition.  Attachments are
    untracked (see :func:`_attach_untracked`) — the parent owns cleanup.
    """

    def __init__(self) -> None:
        self._attached: dict[str, tuple[str, shared_memory.SharedMemory, dict[int, SharedBlockView]]] = {}

    def get_blocks(self, pin: TablePin, block_ids: list[int]) -> list[SharedBlockView]:
        """Return views for ``block_ids``, attaching the segment if needed."""
        entry = self._attached.get(pin.table)
        if entry is None or entry[0] != pin.segment:
            if entry is not None:
                self._detach(entry)
            shm = _attach_untracked(pin.segment)
            entry = (pin.segment, shm, {})
            self._attached[pin.table] = entry
        _, shm, views = entry
        result: list[SharedBlockView] = []
        for block_id in block_ids:
            view = views.get(block_id)
            if view is None:
                spec = pin.block(block_id)
                view = SharedBlockView(block_id, spec.num_rows, _views_of(shm.buf, spec))
                views[block_id] = view
            result.append(view)
        return result

    def _detach(self, entry: tuple[str, shared_memory.SharedMemory, dict[int, SharedBlockView]]) -> None:
        _, shm, views = entry
        for view in views.values():
            view._columns = {}
        views.clear()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def close(self) -> None:
        """Detach every cached segment (never unlinks — workers don't own)."""
        for entry in self._attached.values():
            self._detach(entry)
        self._attached.clear()


# --------------------------------------------------------------------- #
# Parent-side store
# --------------------------------------------------------------------- #
class SharedBlockStore:
    """Pins tables' consolidated block columns into shared-memory segments.

    One segment per table per pin; segments use auto-generated names (short
    enough for macOS's 31-character POSIX limit).  The store is the sole
    owner: it closes **and unlinks** segments on unpin/close, and registers
    an ``atexit`` hook so a dropped store cannot leak segments.
    """

    def __init__(self) -> None:
        self._pins: dict[str, tuple[TablePin, shared_memory.SharedMemory]] = {}
        self._atexit = atexit.register(self.close)

    # -------------------------------------------------------------- #
    # Pinning
    # -------------------------------------------------------------- #
    def pin_table(self, table: "StoredTable") -> TablePin:
        """Pin ``table``'s blocks, reusing a current pin when the epoch matches.

        A stale pin (the table's epoch moved since pinning — e.g. a
        repartition or Amoeba re-split happened) is unlinked and rebuilt.
        """
        existing = self._pins.get(table.name)
        if existing is not None:
            if existing[0].epoch == table.epoch:
                return existing[0]
            self.unpin_table(table.name)
        pin = self._build_pin(table)
        return pin

    def _build_pin(self, table: "StoredTable") -> TablePin:
        block_ids = table.block_ids()
        layouts: dict[int, list[tuple[str, int, str, int, np.ndarray]]] = {}
        num_rows: dict[int, int] = {}
        offset = 0
        for block_id in block_ids:
            block = table.dfs.peek_block(block_id)
            num_rows[block_id] = block.num_rows
            cols: list[tuple[str, int, str, int, np.ndarray]] = []
            # .columns consolidates pending chunks → contiguous arrays.
            for name, array in block.columns.items():
                array = np.ascontiguousarray(array)
                offset = _aligned(offset)
                cols.append((name, offset, array.dtype.str, len(array), array))
                offset += array.nbytes
            layouts[block_id] = cols
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            blocks: dict[int, BlockSpec] = {}
            for block_id in block_ids:
                specs: list[ColumnSpec] = []
                for name, col_offset, dtype, length, array in layouts[block_id]:
                    if length:
                        target = np.frombuffer(
                            shm.buf, dtype=np.dtype(dtype), count=length, offset=col_offset
                        )
                        target[:] = array
                        del target  # drop the exported view before any close()
                    specs.append(ColumnSpec(name, col_offset, dtype, length))
                blocks[block_id] = BlockSpec(block_id, num_rows[block_id], tuple(specs))
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        pin = TablePin(
            table=table.name,
            epoch=table.epoch,
            segment=shm.name,
            size_bytes=max(offset, 1),
            blocks=blocks,
        )
        self._pins[table.name] = (pin, shm)
        return pin

    def current_pin(self, table_name: str) -> TablePin | None:
        """The live pin for ``table_name`` (no epoch check), or ``None``."""
        entry = self._pins.get(table_name)
        return entry[0] if entry else None

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def unpin_table(self, table_name: str) -> None:
        """Unlink a table's segment; a no-op if the table is not pinned."""
        entry = self._pins.pop(table_name, None)
        if entry is None:
            return
        _, shm = entry
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every pinned segment.  Idempotent."""
        for table_name in list(self._pins):
            self.unpin_table(table_name)

    @property
    def pinned_tables(self) -> list[str]:
        return sorted(self._pins)

    @property
    def pinned_bytes(self) -> int:
        return sum(pin.size_bytes for pin, _ in self._pins.values())
