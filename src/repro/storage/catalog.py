"""The table catalog: name -> stored table, shared by optimizer and executor."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from .table import StoredTable


@dataclass
class Catalog:
    """Registry of the tables managed by one AdaptDB instance."""

    _tables: dict[str, StoredTable] = field(default_factory=dict)

    def register(self, table: StoredTable) -> None:
        """Add a table to the catalog.

        Raises:
            StorageError: if a table with the same name already exists.
        """
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} is already registered")
        self._tables[table.name] = table

    def get(self, name: str) -> StoredTable:
        """Return the table named ``name``.

        Raises:
            StorageError: if the table is unknown.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown table {name!r}; registered: {self.table_names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables (sorted)."""
        return sorted(self._tables)

    def tables(self) -> list[StoredTable]:
        """All registered tables."""
        return [self._tables[name] for name in self.table_names]
