"""Tables: in-memory column tables and partitioned, block-backed stored tables.

A :class:`ColumnTable` is the raw input to the storage manager (what the
paper loads from raw files on HDFS).  A :class:`StoredTable` is the managed
form: its rows live in DFS blocks, and each block belongs to exactly one
*partitioning tree*.  During smooth repartitioning a table temporarily owns
several trees (one per popular join attribute) and blocks migrate between
them; the table tracks which blocks belong to which tree and exposes the
``lookup`` used by the optimizer's cost model.

Storage statistics are *incremental*: the table keeps per-block row counts,
per-tree row totals and per-tree non-empty block sets, updated on every
mutation (create / append / clear / delete / move / re-split), so
``total_rows``, ``rows_under_tree``, ``non_empty_block_ids`` and
``tree_row_fractions`` are O(1)/O(result) cache reads instead of O(blocks)
scans over ``dfs.peek_block`` — smooth repartitioning consults them several
times per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.epochs import PartitionDelta, mutates_partition_state
from ..common.errors import PartitioningError, StorageError
from ..common.sanitize import PartitionStateSnapshot, sanitize_enabled
from ..common.predicates import Predicate
from ..common.schema import Schema
from ..partitioning.tree import PartitioningTree
from .block import Block, compute_ranges, concatenate_columns
from .dfs import DistributedFileSystem
from .sampling import sample_columns


@dataclass
class ColumnTable:
    """A full table held in memory as one numpy array per column."""

    name: str
    schema: Schema
    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        self.schema.validate_columns(self.columns)

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def sample(self, sample_size: int = 10_000, rng: np.random.Generator | None = None) -> dict[str, np.ndarray]:
        """Draw a row sample (see :func:`repro.storage.sampling.sample_columns`)."""
        return sample_columns(self.columns, sample_size, rng)

    def select(self, columns: list[str]) -> dict[str, np.ndarray]:
        """Return a projection onto ``columns``."""
        return {name: self.columns[name] for name in columns}


@dataclass
class RepartitionStats:
    """Bookkeeping for one block-migration operation."""

    source_blocks: int = 0
    target_blocks_touched: int = 0
    rows_moved: int = 0

    def merge(self, other: "RepartitionStats") -> None:
        """Accumulate another operation's counters into this one."""
        self.source_blocks += other.source_blocks
        self.target_blocks_touched += other.target_blocks_touched
        self.rows_moved += other.rows_moved


@dataclass
class StoredTable:
    """A table managed by the AdaptDB storage engine.

    Attributes:
        name: Table name.
        schema: Table schema.
        dfs: The distributed file system holding the table's blocks.
        trees: tree_id -> partitioning tree.  Every leaf of every tree is
            bound to a DFS block (possibly empty).
        sample: Retained row sample used to build new trees later.
        rows_per_block: Target rows per block, used to size new trees.

    Every mutation of the table's partition state (loading a tree, smooth
    block migration, an Amoeba re-split, a full repartitioning, dropping a
    drained tree) bumps the table's :attr:`epoch` and records a
    :class:`~repro.common.epochs.PartitionDelta` describing exactly which
    blocks and trees changed.  Planning layers key their caches on
    ``(table, epoch)`` pairs: an unchanged epoch guarantees that block
    contents, block ranges and tree structure are all unchanged, so a cached
    plan replays bit-identically; on a changed epoch they consult
    :meth:`delta_between` to *patch* cached state in place when the delta
    chain still covers the gap, and recompute from scratch otherwise.
    """

    name: str
    schema: Schema
    dfs: DistributedFileSystem
    trees: dict[int, PartitioningTree] = field(default_factory=dict)
    sample: dict[str, np.ndarray] = field(default_factory=dict)
    rows_per_block: int = 4096
    _block_to_tree: dict[int, int] = field(default_factory=dict)
    _next_tree_id: int = 0
    _epoch: int = field(default=0, repr=False)
    #: Maximum recorded change descriptors; past it, old epochs merge into a
    #: blanket "full" sentinel and consumers fall back to a cold recompute.
    delta_chain_limit: int = 64
    _delta_chain: list[tuple[int, PartitionDelta]] = field(
        default_factory=list, repr=False
    )
    # Incremental statistics caches (see module docstring).
    _block_rows: dict[int, int] = field(default_factory=dict, repr=False)
    _tree_rows: dict[int, int] = field(default_factory=dict, repr=False)
    _tree_blocks: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _non_empty: dict[int, set[int]] = field(default_factory=dict, repr=False)
    _total_rows: int = field(default=0, repr=False)
    _empty_template: dict[str, np.ndarray] | None = field(default=None, repr=False)
    # Sanitizer state (REPRO_SANITIZE=1): the previous bump's snapshot,
    # verified against observed changes at the next bump.
    _sanitize_snapshot: PartitionStateSnapshot | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    @classmethod
    def load(
        cls,
        table: ColumnTable,
        dfs: DistributedFileSystem,
        tree: PartitioningTree,
        rows_per_block: int = 4096,
        sample_size: int = 10_000,
        rng: np.random.Generator | None = None,
    ) -> "StoredTable":
        """Partition ``table`` with ``tree`` and store its blocks in ``dfs``.

        The tree's leaves must be unbound; they are bound to freshly created
        blocks during loading.
        """
        stored = cls(
            name=table.name,
            schema=table.schema,
            dfs=dfs,
            sample=table.sample(sample_size, rng),
            rows_per_block=rows_per_block,
        )
        stored._materialize_tree(tree, table.columns, PartitionDelta.full_change())
        return stored

    def _materialize_tree(
        self,
        tree: PartitioningTree,
        columns: dict[str, np.ndarray],
        delta: PartitionDelta,
    ) -> int:
        """Bind ``tree``'s leaves to new blocks filled with ``columns``' rows."""
        self.bump_epoch(delta)
        tree_id = self._next_tree_id
        self._next_tree_id += 1
        tree.tree_id = tree_id
        delta.trees_added.add(tree_id)
        self._tree_blocks[tree_id] = []
        self._tree_rows[tree_id] = 0
        self._non_empty[tree_id] = set()

        leaf_indices = tree.route_rows(columns) if columns else np.zeros(0, dtype=np.int64)
        num_leaves = tree.num_leaves
        block_ids: list[int] = []
        for leaf in range(num_leaves):
            row_mask = leaf_indices == leaf
            leaf_columns = {
                name: np.asarray(array[row_mask]) for name, array in columns.items()
            } if columns else self._empty_columns()
            block = self.dfs.create_block(self.name, leaf_columns)
            block_ids.append(block.block_id)
            delta.blocks_changed.add(block.block_id)
            self._register_block(block.block_id, tree_id, block.num_rows)
        tree.assign_block_ids(block_ids)
        self.trees[tree_id] = tree
        return tree_id

    def _empty_columns(self) -> dict[str, np.ndarray]:
        """Zero-row column arrays matching the schema.

        The arrays are shared from a per-table template — zero-length arrays
        are never mutated in place (appends go to chunks, rewrites replace
        the dict), so block clears don't need fresh allocations.
        """
        if self._empty_template is None:
            self._empty_template = {
                column.name: np.empty(0, dtype=column.dtype.numpy_dtype)
                for column in self.schema.columns
            }
        return dict(self._empty_template)

    # ------------------------------------------------------------------ #
    # Partition-state epoch
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Monotonically increasing partition-state version of the table."""
        return self._epoch

    def bump_epoch(self, delta: PartitionDelta) -> int:
        """Advance the partition-state epoch, recording what changed.

        ``delta`` describes the mutation the caller is about to perform (the
        bump-before-mutate discipline means the descriptor may still be
        empty here — callers fill it in as the mutation proceeds, and the
        chain is only read after mutations complete).  The chain is bounded
        by :attr:`delta_chain_limit`; older entries are dropped, which makes
        :meth:`delta_between` return ``None`` (= recompute) for spans that
        reach past the retained window.

        Under ``REPRO_SANITIZE=1`` each bump first cross-checks the
        previous bump's descriptor against the partition-state changes
        actually observed since (by then its mutation has completed), then
        snapshots the current state for the next check.
        """
        if sanitize_enabled():
            self.verify_pending_delta(delta)
        self._epoch += 1
        self._delta_chain.append((self._epoch, delta))
        if len(self._delta_chain) > self.delta_chain_limit:
            del self._delta_chain[: -self.delta_chain_limit]
        if sanitize_enabled():
            self._sanitize_snapshot = PartitionStateSnapshot.capture(self, delta)
        return self._epoch

    def verify_pending_delta(self, incoming: PartitionDelta | None = None) -> None:
        """Sanitizer: check the last bump's descriptor against observed changes.

        A no-op when no snapshot is pending (sanitizer off, or no bump since
        the last verification).  ``incoming`` is the descriptor of the bump
        that triggered the check, if any.  Raises
        :class:`~repro.common.sanitize.SanitizeError` on an under-described
        descriptor.
        """
        snapshot = self._sanitize_snapshot
        self._sanitize_snapshot = None
        if snapshot is not None:
            snapshot.verify(self, incoming)

    def arm_sanitize_snapshot(self) -> None:
        """Snapshot the current state as the sanitizer baseline (restore path).

        A restored table has no pending bump, but under ``REPRO_SANITIZE=1``
        the *next* bump should still be cross-checked against the state the
        checkpoint reinstated — so restore arms an empty-delta snapshot,
        making change descriptors verified across a restart exactly as they
        are within one process.  A no-op when the sanitizer is off.
        """
        if sanitize_enabled():
            self._sanitize_snapshot = PartitionStateSnapshot.capture(
                self, PartitionDelta()
            )

    def delta_between(self, start_epoch: int, end_epoch: int) -> PartitionDelta | None:
        """Merged change descriptor covering ``(start_epoch, end_epoch]``.

        Returns:
            An (unshared, caller-owned) merged :class:`PartitionDelta` when
            the bounded chain still covers every bump in the span, or
            ``None`` when it does not (the span pre-dates the retained
            window, or the epochs are out of range) — callers must then
            recompute from scratch.  The result may itself be a *full*
            descriptor, which callers treat the same as ``None``.
        """
        if start_epoch > end_epoch or end_epoch > self._epoch:
            return None
        if start_epoch == end_epoch:
            return PartitionDelta()
        chain = self._delta_chain
        if not chain or chain[0][0] > start_epoch + 1:
            return None
        return PartitionDelta.merged(
            delta for epoch, delta in chain if start_epoch < epoch <= end_epoch
        )

    # ------------------------------------------------------------------ #
    # Statistics cache maintenance
    # ------------------------------------------------------------------ #
    @mutates_partition_state
    def _register_block(self, block_id: int, tree_id: int, num_rows: int) -> None:
        """Record a freshly created block in the statistics caches."""
        self._block_to_tree[block_id] = tree_id
        self._block_rows[block_id] = num_rows
        self._tree_blocks[tree_id].append(block_id)
        self._tree_rows[tree_id] += num_rows
        self._total_rows += num_rows
        if num_rows:
            self._non_empty[tree_id].add(block_id)

    @mutates_partition_state
    def _set_block_rows(self, block_id: int, num_rows: int) -> None:
        """Propagate a block's new row count through the caches."""
        previous = self._block_rows[block_id]
        if num_rows == previous:
            return
        tree_id = self._block_to_tree[block_id]
        delta = num_rows - previous
        self._block_rows[block_id] = num_rows
        self._tree_rows[tree_id] += delta
        self._total_rows += delta
        if num_rows:
            self._non_empty[tree_id].add(block_id)
        else:
            self._non_empty[tree_id].discard(block_id)

    @mutates_partition_state
    def _forget_tree(self, tree_id: int) -> None:
        """Drop a tree's cache entries, including its blocks' per-block stats.

        Blocks are only ever deleted together with their tree, so per-block
        eviction is handled here rather than by a standalone helper.
        """
        for block_id in self._tree_blocks.pop(tree_id):
            del self._block_to_tree[block_id]
            self._total_rows -= self._block_rows.pop(block_id)
        del self._tree_rows[tree_id]
        del self._non_empty[tree_id]

    def audit_cached_statistics(self) -> None:
        """Verify every cached statistic against a brute-force DFS scan.

        Raises:
            StorageError: if any cached counter disagrees with the blocks.

        Intended for tests and debugging; production paths never call it.
        """
        for block_id in self._block_to_tree:
            actual = self.dfs.peek_block(block_id).num_rows
            if self._block_rows.get(block_id) != actual:
                raise StorageError(
                    f"cached rows for block {block_id} = {self._block_rows.get(block_id)}, "
                    f"actual {actual}"
                )
        for tree_id in self.trees:
            actual_tree = sum(
                self.dfs.peek_block(b).num_rows for b in self.block_ids(tree_id)
            )
            if self._tree_rows.get(tree_id) != actual_tree:
                raise StorageError(
                    f"cached rows for tree {tree_id} = {self._tree_rows.get(tree_id)}, "
                    f"actual {actual_tree}"
                )
            actual_non_empty = {
                b for b in self.block_ids(tree_id) if self.dfs.peek_block(b).num_rows > 0
            }
            if self._non_empty.get(tree_id) != actual_non_empty:
                raise StorageError(f"cached non-empty set for tree {tree_id} is stale")
        actual_total = sum(
            self.dfs.peek_block(b).num_rows for b in self._block_to_tree
        )
        if self._total_rows != actual_total:
            raise StorageError(
                f"cached total rows {self._total_rows}, actual {actual_total}"
            )

    # ------------------------------------------------------------------ #
    # Tree management
    # ------------------------------------------------------------------ #
    def add_empty_tree(self, tree: PartitioningTree) -> int:
        """Register a new (initially empty) partitioning tree.

        Every leaf is bound to a freshly created empty block; rows arrive
        later via :meth:`move_blocks`.

        Returns:
            The id assigned to the new tree.
        """
        return self._materialize_tree(tree, {}, PartitionDelta())

    def tree(self, tree_id: int) -> PartitioningTree:
        """Return the tree with the given id."""
        try:
            return self.trees[tree_id]
        except KeyError:
            raise PartitioningError(f"table {self.name!r} has no tree {tree_id}") from None

    def tree_of_block(self, block_id: int) -> int:
        """Return the id of the tree owning ``block_id``."""
        try:
            return self._block_to_tree[block_id]
        except KeyError:
            raise StorageError(f"block {block_id} does not belong to table {self.name!r}") from None

    def tree_for_join_attribute(self, attribute: str) -> int | None:
        """Id of the tree whose join attribute is ``attribute`` (or ``None``)."""
        for tree_id, tree in self.trees.items():
            if tree.join_attribute == attribute:
                return tree_id
        return None

    @property
    def num_trees(self) -> int:
        """Number of partitioning trees currently maintained."""
        return len(self.trees)

    # ------------------------------------------------------------------ #
    # Block access
    # ------------------------------------------------------------------ #
    def block_ids(self, tree_id: int | None = None) -> list[int]:
        """All block ids of the table, optionally restricted to one tree."""
        if tree_id is None:
            return sorted(self._block_to_tree)
        return list(self._tree_blocks.get(tree_id, ()))

    def non_empty_block_ids(self, tree_id: int | None = None) -> list[int]:
        """Block ids that currently contain at least one row (cache-served)."""
        if tree_id is None:
            return sorted(
                block_id for blocks in self._non_empty.values() for block_id in blocks
            )
        return sorted(self._non_empty.get(tree_id, ()))

    def lookup(
        self,
        predicates: list[Predicate] | None = None,
        tree_id: int | None = None,
        include_empty: bool = False,
    ) -> list[int]:
        """Blocks that may contain rows matching ``predicates``.

        This is the cost model's ``lookup(T, q)``: the union over the table's
        trees (or a single tree) of the tree-pruned block sets.  Empty blocks
        are excluded by default since they incur no I/O.
        """
        tree_ids = [tree_id] if tree_id is not None else list(self.trees)
        matched: list[int] = []
        for tid in tree_ids:
            matched.extend(self.tree(tid).lookup(predicates))
        if include_empty:
            return matched
        block_rows = self._block_rows
        return [block_id for block_id in matched if block_rows.get(block_id, 0) > 0]

    def lookup_contains(
        self, block_id: int, predicates: list[Predicate] | None = None
    ) -> bool:
        """Whether :meth:`lookup` would include ``block_id`` — in O(depth).

        Per-block membership in the pruned set depends only on the block's
        own row count and its leaf's path bounds in the owning tree, so one
        parent-chain walk answers it without re-running the full lookup.
        Blocks no longer in the table (e.g. dropped by a repartition) return
        ``False``.
        """
        if self._block_rows.get(block_id, 0) <= 0:
            return False
        tree_id = self._block_to_tree.get(block_id)
        if tree_id is None:
            return False
        return self.trees[tree_id].lookup_block(block_id, predicates)

    def rows_under_tree(self, tree_id: int) -> int:
        """Total number of rows stored under a tree (cache-served)."""
        return self._tree_rows.get(tree_id, 0)

    @property
    def total_rows(self) -> int:
        """Total number of rows stored across all trees (cache-served)."""
        return self._total_rows

    def tree_row_fractions(self) -> dict[int, float]:
        """Fraction of the table's rows held by each tree."""
        total = self._total_rows
        if total == 0:
            return {tree_id: 0.0 for tree_id in self.trees}
        return {tree_id: self._tree_rows[tree_id] / total for tree_id in self.trees}

    # ------------------------------------------------------------------ #
    # Block migration (smooth repartitioning / full repartitioning)
    # ------------------------------------------------------------------ #
    def move_blocks(self, block_ids: list[int], target_tree_id: int) -> RepartitionStats:
        """Move the rows of ``block_ids`` into the blocks of ``target_tree_id``.

        Each source block is read, its rows are routed through the target
        tree and appended to the target tree's blocks (HDFS-append style, as
        in the paper), and the source block is emptied.  Source blocks
        already owned by the target tree are skipped.

        Returns:
            A :class:`RepartitionStats` describing the work performed.
        """
        target_tree = self.tree(target_tree_id)
        target_block_ids = target_tree.block_ids()
        stats = RepartitionStats()

        sources: list[tuple[int, Block]] = []
        for block_id in block_ids:
            if self.tree_of_block(block_id) == target_tree_id:
                continue
            source = self.dfs.peek_block(block_id)
            if source.num_rows == 0:
                continue
            sources.append((block_id, source))
        if not sources:
            return stats
        delta = PartitionDelta(blocks_changed={block_id for block_id, _ in sources})
        self.bump_epoch(delta)

        # Route the union of all source rows once, then group by target leaf
        # with one stable sort (rows keep source order, and their original
        # order within each source, inside every leaf) and compute every
        # leaf's per-column min/max with one reduceat per column.  This costs
        # O(moved rows) total instead of per-(source, leaf) python work.
        # Source blocks are streamed part-by-part (consolidated prefix plus
        # pending chunks) — they are about to be cleared, so consolidating
        # them first would copy every row twice.
        parts = [part for _, source in sources for part in source.column_parts()]
        names = list(parts[0])
        union_columns = {
            name: (
                np.concatenate([part[name] for part in parts])
                if len(parts) > 1
                else parts[0][name]
            )
            for name in names
        }
        leaf_indices = target_tree.route_rows(union_columns)
        stats.source_blocks = len(sources)
        stats.rows_moved = len(leaf_indices)

        order = np.argsort(leaf_indices, kind="stable")
        unique_leaves, starts = np.unique(leaf_indices[order], return_index=True)
        boundaries = np.append(starts, len(order))
        sorted_columns = {name: array[order] for name, array in union_columns.items()}
        leaf_mins = {
            name: np.minimum.reduceat(values, starts)
            for name, values in sorted_columns.items()
        }
        leaf_maxs = {
            name: np.maximum.reduceat(values, starts)
            for name, values in sorted_columns.items()
        }
        for position, leaf_position in enumerate(unique_leaves):
            delta.blocks_changed.add(target_block_ids[int(leaf_position)])
            segment = slice(boundaries[position], boundaries[position + 1])
            rows = {name: values[segment] for name, values in sorted_columns.items()}
            chunk_ranges = {
                name: (float(leaf_mins[name][position]), float(leaf_maxs[name][position]))
                for name in sorted_columns
            }
            self._append_rows(target_block_ids[int(leaf_position)], rows, chunk_ranges)
        for block_id, _ in sources:
            self._clear_block(block_id)

        stats.target_blocks_touched = len(unique_leaves)
        return stats

    @mutates_partition_state
    def _append_rows(
        self,
        block_id: int,
        rows: dict[str, np.ndarray],
        chunk_ranges: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        """Append ``rows`` to an existing block and update the cached stats."""
        block = self.dfs.peek_block(block_id)
        block.append_rows(rows, chunk_ranges)
        self._set_block_rows(block_id, block.num_rows)

    @mutates_partition_state
    def _clear_block(self, block_id: int) -> None:
        """Empty a block in place (its rows have been migrated elsewhere)."""
        block = self.dfs.peek_block(block_id)
        block.clear(self._empty_columns())
        self._set_block_rows(block_id, 0)

    def resplit_leaf_pair(
        self, left_id: int, right_id: int, attribute: str, cutpoint: float
    ) -> int:
        """Redistribute two sibling leaf blocks' rows across a new cutpoint.

        This is the storage half of an Amoeba transform (the tree half is
        :meth:`PartitioningTree.resplit_node`): the two blocks' rows are
        merged and re-split on ``attribute <= cutpoint``, block metadata is
        recomputed, and the cached statistics are updated.  If the blocks do
        not store ``attribute`` (or hold no rows) nothing is rewritten.

        Returns:
            The number of rows redistributed.
        """
        # The caller (the Amoeba adaptor) has already re-split the owning
        # tree's node, so lookups changed even when no rows end up moving —
        # the epoch must advance unconditionally.
        self.bump_epoch(
            PartitionDelta(
                blocks_changed={left_id, right_id},
                trees_resplit={self.tree_of_block(left_id)},
            )
        )
        left_block = self.dfs.peek_block(left_id)
        right_block = self.dfs.peek_block(right_id)
        merged = {
            name: np.concatenate([left_block.columns[name], right_block.columns[name]])
            for name in left_block.columns
        }
        rows_moved = len(next(iter(merged.values()))) if merged else 0
        values = merged.get(attribute)
        if values is None or rows_moved == 0:
            return 0
        goes_left = values <= cutpoint
        left_block.replace_columns({name: array[goes_left] for name, array in merged.items()})
        right_block.replace_columns({name: array[~goes_left] for name, array in merged.items()})
        self._set_block_rows(left_id, left_block.num_rows)
        self._set_block_rows(right_id, right_block.num_rows)
        return rows_moved

    def drop_empty_trees(self) -> list[int]:
        """Remove trees that no longer hold any rows (keeping at least one tree).

        Returns:
            The ids of the removed trees.
        """
        removable = [
            tree_id for tree_id in self.trees if self._tree_rows.get(tree_id, 0) == 0
        ]
        if len(removable) == len(self.trees):
            removable = removable[:-1]
        if not removable:
            return []
        # Bump before mutating: there is no early exit past this point, so
        # every path that touches the caches has already advanced the epoch.
        delta = PartitionDelta()
        self.bump_epoch(delta)
        removed: list[int] = []
        for tree_id in removable:
            delta.trees_dropped.add(tree_id)
            for block_id in self.block_ids(tree_id):
                delta.blocks_dropped.add(block_id)
                self.dfs.delete_block(block_id)
            self._forget_tree(tree_id)
            del self.trees[tree_id]
            removed.append(tree_id)
        return removed

    def replace_with_tree(self, tree: PartitioningTree) -> RepartitionStats:
        """Repartition the *entire* table under a single new tree.

        Used by the full-repartitioning baseline and by Amoeba-style tree
        refinement: all existing rows are read, routed through the new tree,
        and the old trees are dropped.
        """
        all_columns = concatenate_columns(
            [
                self.dfs.peek_block(block_id).columns
                for block_id in self.non_empty_block_ids()
            ],
            self.schema,
        )
        old_block_ids = self.block_ids()
        old_tree_ids = list(self.trees)
        num_source_blocks = len(self.non_empty_block_ids())

        for block_id in old_block_ids:
            self.dfs.delete_block(block_id)
        for tree_id in old_tree_ids:
            self._forget_tree(tree_id)
            del self.trees[tree_id]

        self._materialize_tree(tree, all_columns, PartitionDelta.full_change())
        rows_moved = len(next(iter(all_columns.values()))) if all_columns else 0
        return RepartitionStats(
            source_blocks=num_source_blocks,
            target_blocks_touched=tree.num_leaves,
            rows_moved=rows_moved,
        )

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def join_range_of_block(self, block_id: int, attribute: str) -> tuple[float, float] | None:
        """The (min, max) of ``attribute`` in ``block_id`` or ``None`` if empty."""
        block = self.dfs.peek_block(block_id)
        if block.num_rows == 0 or attribute not in block.ranges:
            return None
        return block.range_of(attribute)

    def describe(self) -> str:
        """Human-readable summary of the table's trees and block counts."""
        lines = [f"table {self.name}: {self.total_rows} rows, {len(self.trees)} tree(s)"]
        for tree_id, tree in self.trees.items():
            lines.append(
                f"  tree {tree_id}: join_attribute={tree.join_attribute!r} "
                f"join_levels={tree.join_levels} blocks={len(self.block_ids(tree_id))} "
                f"rows={self.rows_under_tree(tree_id)}"
            )
        return "\n".join(lines)
