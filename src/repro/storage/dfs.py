"""A simulated distributed file system (the paper's HDFS substrate).

The DFS owns every block in the system.  It assigns globally unique block
ids, places replicas on machines, and is the single point through which block
reads flow so that locality and I/O statistics can be accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..common.epochs import mutates_partition_state
from ..common.errors import StorageError
from ..common.rng import make_rng
from ..cluster.cluster import Cluster
from .block import Block

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .persist.buffer import BlockBuffer
    from .persist.store import PersistentBlockStore

DEFAULT_REPLICATION = 3


@dataclass
class ReadStats:
    """Accumulated read statistics since the last reset.

    The three ``buffer_*`` counters stay zero for purely in-memory sessions;
    under ``persistence="mmap"`` the block buffer mirrors its events here so
    every execution reports its own hit/fault/eviction traffic.
    """

    local_reads: int = 0
    remote_reads: int = 0
    buffer_hits: int = 0
    buffer_faults: int = 0
    buffer_evictions: int = 0

    @property
    def total_reads(self) -> int:
        """Total block reads."""
        return self.local_reads + self.remote_reads

    @property
    def locality_fraction(self) -> float:
        """Fraction of local reads (1.0 if nothing was read)."""
        if self.total_reads == 0:
            return 1.0
        return self.local_reads / self.total_reads


@dataclass
class DistributedFileSystem:
    """Block storage spread over the machines of a :class:`Cluster`.

    Attributes:
        cluster: The cluster whose machines hold block replicas.
        replication: Number of replicas per block (capped at cluster size).
        rng: Random generator used for replica placement.
    """

    cluster: Cluster
    replication: int = DEFAULT_REPLICATION
    rng: np.random.Generator = field(default_factory=make_rng)
    _blocks: dict[int, Block] = field(default_factory=dict)
    _placement: dict[int, list[int]] = field(default_factory=dict)
    _table_blocks: dict[str, set[int]] = field(default_factory=dict, repr=False)
    _next_block_id: int = 0
    read_stats: ReadStats = field(default_factory=ReadStats)
    #: Persistence hooks — ``None`` for in-memory sessions; attached by the
    #: PersistenceManager.  The buffer accounts reads/faults/evictions, the
    #: store tracks which machine directory each block spills to.
    buffer: "BlockBuffer | None" = field(default=None, repr=False)
    block_store: "PersistentBlockStore | None" = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Block lifecycle
    # ------------------------------------------------------------------ #
    @mutates_partition_state
    def allocate_block_id(self) -> int:
        """Reserve and return a fresh globally unique block id."""
        block_id = self._next_block_id
        self._next_block_id += 1
        return block_id

    @mutates_partition_state
    def put_block(self, block: Block, machine_ids: Sequence[int] | None = None) -> int:
        """Store ``block`` and place its replicas on machines.

        Args:
            block: The block to store.
            machine_ids: Explicit replica placement — the restore path passes
                the checkpointed placement so a reopened session reproduces
                the exact locality the original had.  ``None`` (the normal
                path) draws a fresh placement from the DFS RNG.

        Returns:
            The block id.
        """
        if block.block_id in self._blocks:
            raise StorageError(f"block {block.block_id} already exists")
        if machine_ids is None:
            replicas = min(self.replication, self.cluster.num_machines)
            machine_ids = list(
                self.rng.choice(self.cluster.num_machines, size=replicas, replace=False)
            )
        placement = [int(m) for m in machine_ids]
        self._blocks[block.block_id] = block
        self._placement[block.block_id] = placement
        self._table_blocks.setdefault(block.table, set()).add(block.block_id)
        for machine_id in placement:
            self.cluster.machine(machine_id).stored_blocks.add(block.block_id)
        if self.block_store is not None:
            # New blocks spill under their primary replica's machine dir.
            self.block_store.register_block(block.block_id, placement[0])
        if self.buffer is not None and block.is_resident:
            self.buffer.admit(block)
        return block.block_id

    @mutates_partition_state
    def create_block(self, table: str, columns: dict[str, np.ndarray]) -> Block:
        """Allocate an id, build a :class:`Block` for ``table`` and store it."""
        block = Block(block_id=self.allocate_block_id(), table=table, columns=columns)
        self.put_block(block)
        return block

    @mutates_partition_state
    def delete_block(self, block_id: int) -> None:
        """Remove a block and all its replicas."""
        if block_id not in self._blocks:
            raise StorageError(f"cannot delete unknown block {block_id}")
        for machine_id in self._placement.pop(block_id):
            self.cluster.machine(machine_id).stored_blocks.discard(block_id)
        self._table_blocks[self._blocks[block_id].table].discard(block_id)
        del self._blocks[block_id]
        if self.buffer is not None:
            self.buffer.discard(block_id)
        if self.block_store is not None:
            self.block_store.forget_block(block_id)

    @mutates_partition_state
    def restore_block_counter(self, next_block_id: int) -> None:
        """Resume id allocation where a checkpointed session left off."""
        if next_block_id < self._next_block_id:
            raise StorageError(
                f"cannot rewind block id counter from {self._next_block_id} "
                f"to {next_block_id}"
            )
        self._next_block_id = next_block_id

    @property
    def next_block_id(self) -> int:
        """The id the next allocation will hand out (checkpoint metadata)."""
        return self._next_block_id

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get_block(self, block_id: int, reader_machine: int | None = None) -> Block:
        """Read a block, accounting locality against ``reader_machine``.

        Args:
            block_id: The block to read.
            reader_machine: Machine performing the read.  ``None`` picks a
                machine round-robin, approximating the scheduler assigning
                tasks across the cluster.
        """
        block = self.peek_block(block_id)
        if reader_machine is None:
            reader_machine = block_id % self.cluster.num_machines
        machine = self.cluster.machine(reader_machine)
        if machine.record_read(block_id):
            self.read_stats.local_reads += 1
        else:
            self.read_stats.remote_reads += 1
        if self.buffer is not None:
            # Resident blocks count a hit and refresh recency; spilled blocks
            # fault lazily (and are then accounted) on first column access.
            self.buffer.touch(block)
        return block

    def get_blocks(
        self, block_ids: Sequence[int], reader_machine: int | None = None
    ) -> list[Block]:
        """Read a batch of blocks in one call, accounting locality per block.

        Tasks issue one ``get_blocks`` call for all blocks they touch instead
        of one ``get_block`` per block; the returned list preserves the order
        of ``block_ids``.

        Args:
            block_ids: Blocks to read.
            reader_machine: Machine performing the read.  ``None`` falls back
                to the per-block round-robin of :meth:`get_block`.
        """
        return [self.get_block(block_id, reader_machine) for block_id in block_ids]

    def peek_block(self, block_id: int) -> Block:
        """Return a block without recording a read (metadata access).

        Diagnostic peeks bypass the persistence tier entirely: no read is
        accounted, no buffer hit is counted and the block's recency is not
        refreshed, so planning probes and statistics audits cannot perturb
        eviction order.  (If a peek caller then reads a *spilled* block's
        column data, the lazy fault still charges the materialization — the
        bypass covers the peek, not the data it may pull in.)
        """
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(f"unknown block {block_id}") from None

    def has_block(self, block_id: int) -> bool:
        """Whether ``block_id`` exists."""
        return block_id in self._blocks

    def replicas_of(self, block_id: int) -> list[int]:
        """Machine ids holding replicas of ``block_id``."""
        try:
            return list(self._placement[block_id])
        except KeyError:
            raise StorageError(f"unknown block {block_id}") from None

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def reset_read_stats(self) -> None:
        """Zero the DFS and per-machine read counters."""
        self.read_stats = ReadStats()
        self.cluster.reset_read_counters()

    @property
    def num_blocks(self) -> int:
        """Number of blocks currently stored."""
        return len(self._blocks)

    def blocks_of_table(self, table: str) -> list[int]:
        """Ids of all blocks belonging to ``table`` (sorted, index-served)."""
        return sorted(self._table_blocks.get(table, ()))

    def total_bytes(self, table: str | None = None) -> int:
        """Total stored bytes, optionally restricted to one table."""
        if table is not None:
            return sum(
                self._blocks[block_id].size_bytes
                for block_id in self._table_blocks.get(table, ())
            )
        return sum(block.size_bytes for block in self._blocks.values())
