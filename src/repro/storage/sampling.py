"""Sampling utilities.

Amoeba and AdaptDB choose every cutpoint from a sample of the data rather
than the full table (Section 3.1); the sample is kept with the table's
metadata so that new trees (two-phase trees for new join attributes) can be
built later without rescanning the data.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import StorageError

DEFAULT_SAMPLE_SIZE = 10_000


def sample_columns(
    columns: dict[str, np.ndarray],
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    rng: np.random.Generator | None = None,
) -> dict[str, np.ndarray]:
    """Draw a uniform row sample from a set of column arrays.

    Args:
        columns: Column name -> value array (equal lengths).
        sample_size: Maximum number of rows in the sample.  When the table is
            smaller than this, the full table is returned (copied).
        rng: Random generator; ``None`` samples deterministically by taking
            an evenly spaced subset.

    Returns:
        A new column dictionary containing the sampled rows.

    Raises:
        StorageError: if the column arrays have differing lengths.
    """
    if not columns:
        return {}
    lengths = {len(array) for array in columns.values()}
    if len(lengths) > 1:
        raise StorageError(f"cannot sample columns with differing lengths: {lengths}")
    num_rows = lengths.pop()
    if num_rows <= sample_size:
        return {name: np.array(array, copy=True) for name, array in columns.items()}
    if rng is None:
        indices = np.linspace(0, num_rows - 1, sample_size).astype(np.int64)
    else:
        indices = np.sort(rng.choice(num_rows, size=sample_size, replace=False))
    return {name: array[indices] for name, array in columns.items()}
