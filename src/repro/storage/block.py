"""Data blocks.

A block is the unit of storage, placement, pruning and join scheduling —
the equivalent of a 64 MB HDFS block in the paper.  Blocks store real rows
(one numpy array per column) so joins can be executed and verified, and they
carry per-column min/max metadata, which is what the hyper-join overlap
computation and the partitioning-tree lookup consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import StorageError
from ..common.predicates import Predicate, rows_matching
from ..common.schema import Schema


def _estimate_bytes(columns: dict[str, np.ndarray]) -> int:
    """Approximate the on-disk size of a set of column arrays."""
    return int(sum(array.nbytes for array in columns.values()))


@dataclass
class Block:
    """A horizontal slice of a table.

    Attributes:
        block_id: Globally unique identifier assigned by the DFS.
        table: Name of the table the block belongs to.
        columns: Column name -> numpy array of values (all equal length).
        ranges: Column name -> (min, max) over the rows in the block.
        size_bytes: Approximate size of the block.
    """

    block_id: int
    table: str
    columns: dict[str, np.ndarray]
    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    size_bytes: int = 0

    def __post_init__(self) -> None:
        lengths = {len(array) for array in self.columns.values()}
        if len(lengths) > 1:
            raise StorageError(f"block {self.block_id}: column lengths differ ({lengths})")
        if not self.ranges:
            self.ranges = compute_ranges(self.columns)
        if not self.size_bytes:
            self.size_bytes = _estimate_bytes(self.columns)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows stored in the block."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        """Names of the stored columns."""
        return list(self.columns)

    def range_of(self, column: str) -> tuple[float, float]:
        """Return the (min, max) of ``column`` over the block's rows.

        Raises:
            StorageError: if the column is absent or the block is empty.
        """
        if column not in self.ranges:
            raise StorageError(f"block {self.block_id} has no range metadata for column {column!r}")
        return self.ranges[column]

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def filtered(self, predicates: list[Predicate]) -> dict[str, np.ndarray]:
        """Return the columns restricted to rows matching all ``predicates``."""
        if not predicates:
            return dict(self.columns)
        mask = rows_matching(self.columns, predicates)
        return {name: array[mask] for name, array in self.columns.items()}

    def matching_count(self, predicates: list[Predicate]) -> int:
        """Number of rows matching all ``predicates``."""
        if not predicates:
            return self.num_rows
        return int(rows_matching(self.columns, predicates).sum())

    def column(self, name: str) -> np.ndarray:
        """Return the array for column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(f"block {self.block_id} has no column {name!r}") from None


def compute_ranges(columns: dict[str, np.ndarray]) -> dict[str, tuple[float, float]]:
    """Compute per-column (min, max) metadata, skipping empty columns."""
    ranges: dict[str, tuple[float, float]] = {}
    for name, array in columns.items():
        if len(array) == 0:
            continue
        ranges[name] = (float(array.min()), float(array.max()))
    return ranges


def concatenate_columns(parts: list[dict[str, np.ndarray]], schema: Schema | None = None) -> dict[str, np.ndarray]:
    """Concatenate a list of column dictionaries row-wise.

    All parts must share the same column set.  An empty list yields empty
    arrays for the columns of ``schema`` (or an empty dict without a schema).
    """
    if not parts:
        if schema is None:
            return {}
        return {
            column.name: np.empty(0, dtype=column.dtype.numpy_dtype)
            for column in schema.columns
        }
    names = list(parts[0])
    for part in parts[1:]:
        if list(part) != names:
            raise StorageError("cannot concatenate column sets with differing columns")
    return {name: np.concatenate([part[name] for part in parts]) for name in names}
