"""Data blocks.

A block is the unit of storage, placement, pruning and join scheduling —
the equivalent of a 64 MB HDFS block in the paper.  Blocks store real rows
(one numpy array per column) so joins can be executed and verified, and they
carry per-column min/max metadata, which is what the hyper-join overlap
computation and the partitioning-tree lookup consume.

Storage is *chunked*: appends (the smooth-repartitioning write path) push the
incoming column arrays onto a chunk list and only update the per-column
min/max ranges and row/byte counters incrementally — O(appended rows)
instead of O(block rows).  The chunks are consolidated into contiguous
arrays lazily, on the first columnar read, mirroring an LSM-style write path
with deferred compaction.

Under the persistence tier a block can additionally be **unloaded**: its
consolidated columns are dropped (``_columns is None``) and fault back in
through a bound loader on the next columnar read.  Metadata — ranges,
``size_bytes``, ``num_rows`` — always stays resident, so planning peeks and
pruning never touch disk.  Appends to an unloaded block land on the chunk
list without faulting; the on-disk prefix is only read when something
actually consumes the rows.  ``dirty`` tracks whether the in-memory state
has diverged from the newest spill — only clean blocks may drop their
columns, dirty ones are written back first.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.epochs import mutates_partition_state
from ..common.errors import StorageError
from ..common.predicates import Predicate, rows_matching
from ..common.schema import Schema


def _estimate_bytes(columns: dict[str, np.ndarray]) -> int:
    """Approximate the on-disk size of a set of column arrays."""
    return int(sum(array.nbytes for array in columns.values()))


def _chunk_rows(columns: dict[str, np.ndarray], block_id: int) -> int:
    """Validate that all arrays share one length and return it."""
    lengths = {len(array) for array in columns.values()}
    if len(lengths) > 1:
        raise StorageError(f"block {block_id}: column lengths differ ({lengths})")
    return lengths.pop() if lengths else 0


class Block:
    """A horizontal slice of a table.

    Attributes:
        block_id: Globally unique identifier assigned by the DFS.
        table: Name of the table the block belongs to.
        ranges: Column name -> (min, max) over the rows in the block,
            maintained incrementally across appends.
        size_bytes: Approximate size of the block, also incremental.
    """

    __slots__ = (
        "block_id", "table", "ranges", "size_bytes",
        "_columns", "_chunks", "_num_rows", "_loader", "dirty",
    )

    def __init__(
        self,
        block_id: int,
        table: str,
        columns: dict[str, np.ndarray],
        ranges: dict[str, tuple[float, float]] | None = None,
        size_bytes: int = 0,
    ) -> None:
        self.block_id = block_id
        self.table = table
        self._columns: dict[str, np.ndarray] | None = dict(columns)
        self._chunks: list[dict[str, np.ndarray]] = []
        self._num_rows = _chunk_rows(self._columns, block_id)
        self.ranges = ranges if ranges else compute_ranges(self._columns)
        self.size_bytes = size_bytes if size_bytes else _estimate_bytes(self._columns)
        #: Faults the newest spilled version back in; bound by the buffer.
        self._loader: Callable[[], dict[str, np.ndarray]] | None = None
        #: Whether in-memory state has diverged from the newest spill.
        self.dirty = True

    @classmethod
    def restore(
        cls,
        block_id: int,
        table: str,
        ranges: dict[str, tuple[float, float]],
        size_bytes: int,
        num_rows: int,
    ) -> "Block":
        """Rebuild a *cold* block from checkpointed metadata.

        The block starts unloaded and clean; its columns fault in through
        the loader the restore path binds right after construction.
        """
        block = cls(
            block_id=block_id,
            table=table,
            columns={},
            ranges=dict(ranges),
            size_bytes=size_bytes,
        )
        block._columns = None
        block._num_rows = num_rows
        block.dirty = False
        return block

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows stored in the block (O(1), tracked incrementally)."""
        return self._num_rows

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """Column name -> contiguous value array.

        Faults an unloaded block's columns back in through the bound loader,
        then consolidates pending chunks.
        """
        if self._columns is None:
            self._fault()
        if self._chunks:
            self.consolidate()
        assert self._columns is not None
        return self._columns

    @property
    def num_pending_chunks(self) -> int:
        """How many appended chunks await consolidation (0 when contiguous)."""
        return len(self._chunks)

    @property
    def is_resident(self) -> bool:
        """Whether the consolidated columns are currently in memory."""
        return self._columns is not None

    @property
    def column_names(self) -> list[str]:
        """Names of the stored columns (faults if unloaded)."""
        return list(self.columns)

    def range_of(self, column: str) -> tuple[float, float]:
        """Return the (min, max) of ``column`` over the block's rows.

        Raises:
            StorageError: if the column is absent or the block is empty.
        """
        if column not in self.ranges:
            raise StorageError(f"block {self.block_id} has no range metadata for column {column!r}")
        return self.ranges[column]

    # ------------------------------------------------------------------ #
    # Mutation (append path)
    # ------------------------------------------------------------------ #
    @mutates_partition_state
    def append_rows(
        self,
        rows: dict[str, np.ndarray],
        chunk_ranges: dict[str, tuple[float, float]] | None = None,
    ) -> int:
        """Append ``rows`` as a chunk, updating metadata incrementally.

        Ranges merge via min/max against the incoming chunk only, the row and
        byte counters accumulate, and no data is copied until the next
        columnar read.

        Args:
            rows: Column name -> value array (all equal length).
            chunk_ranges: Optional precomputed per-column (min, max) of the
                chunk — the block-migration path derives them for every
                target leaf with one ``reduceat`` per column, which is much
                cheaper than one reduction per leaf here.

        Returns:
            The number of rows appended.
        """
        if chunk_ranges is None:
            added = _chunk_rows(rows, self.block_id)
            if added == 0:
                return 0
            # Validate against the *effective* column set — the consolidated
            # dict when present (even with zero rows, it is the schema), the
            # first chunk for an initially column-less block — so validation
            # always agrees with what consolidate() will produce.
            stored = self._columns if self._columns else (
                self._chunks[0] if self._chunks else None
            )
            if stored is not None and rows.keys() != stored.keys():
                raise StorageError(
                    f"block {self.block_id}: appended columns {sorted(rows)} do not match "
                    f"stored columns {sorted(stored)}"
                )
            rows = dict(rows)
        else:
            # Trusted internal path (block migration): the caller built the
            # chunk from equal-length slices and owns the dict.
            added = len(next(iter(rows.values()))) if rows else 0
            if added == 0:
                return 0
        self._chunks.append(rows)
        self.dirty = True
        self._num_rows += added
        self.size_bytes += _estimate_bytes(rows)
        ranges = self.ranges
        for name, array in rows.items():
            if chunk_ranges is not None:
                lo, hi = chunk_ranges[name]
            else:
                lo, hi = float(array.min()), float(array.max())
            existing = ranges.get(name)
            if existing is not None:
                lo, hi = min(existing[0], lo), max(existing[1], hi)
            ranges[name] = (lo, hi)
        return added

    @mutates_partition_state
    def replace_columns(self, columns: dict[str, np.ndarray]) -> None:
        """Replace the block's contents and recompute ranges and size exactly.

        This is the only wholesale-rewrite entry point: contents, ranges and
        ``size_bytes`` always change together, so stale range metadata can
        never silently prune a block with live rows.
        """
        self._columns = dict(columns)
        self._chunks = []
        self._num_rows = _chunk_rows(self._columns, self.block_id)
        self.ranges = compute_ranges(self._columns)
        self.size_bytes = _estimate_bytes(self._columns)
        self.dirty = True

    def clear(self, empty_columns: dict[str, np.ndarray]) -> None:
        """Empty the block in place (its rows have been migrated elsewhere)."""
        self._columns = dict(empty_columns)
        self._chunks = []
        self._num_rows = 0
        self.ranges = {}
        self.size_bytes = 0
        self.dirty = True

    def consolidate(self) -> None:
        """Merge pending chunks into contiguous per-column arrays.

        Row order is preserved: the original contents first, then every chunk
        in append order.  ``size_bytes`` is re-derived from the consolidated
        arrays so dtype promotions cannot leave it stale.  An unloaded block
        faults its on-disk prefix in first — it comes before the chunks.
        """
        if not self._chunks:
            return
        if self._columns is None:
            self._fault()
        chunks, self._chunks = self._chunks, []
        if self._columns and len(next(iter(self._columns.values()))):
            names = list(self._columns)
            parts: list[dict[str, np.ndarray]] = [self._columns, *chunks]
        else:
            names = list(chunks[0])
            parts = chunks
        self._columns = {
            name: np.concatenate([part[name] for part in parts]) for name in names
        }
        self.size_bytes = _estimate_bytes(self._columns)

    def column_parts(self) -> list[dict[str, np.ndarray]]:
        """The block's raw storage parts, in row order, without consolidating.

        Returns the consolidated prefix (if it holds rows) followed by every
        pending chunk in append order.  Batch readers that concatenate
        across blocks anyway (``gather_columns``, block migration) stream
        these directly instead of forcing a per-block consolidation copy.
        Empty blocks yield no parts.  Treat the dicts as read-only.
        """
        if self._num_rows == 0:
            return []
        if self._columns is None:
            self._fault()
        parts: list[dict[str, np.ndarray]] = []
        if self._columns and len(next(iter(self._columns.values()))):
            parts.append(self._columns)
        parts.extend(self._chunks)
        return parts

    # ------------------------------------------------------------------ #
    # Persistence protocol (spill store / block buffer)
    # ------------------------------------------------------------------ #
    def set_loader(self, loader: Callable[[], dict[str, np.ndarray]] | None) -> None:
        """Install the fault source for this block's spilled columns."""
        self._loader = loader

    def mark_clean(self, loader: Callable[[], dict[str, np.ndarray]]) -> None:
        """Record that the in-memory state was just spilled as ``loader``'s
        version; the block may now drop its columns via :meth:`unload`."""
        self.dirty = False
        self._loader = loader

    def unload(self) -> None:
        """Drop the in-memory columns of a clean block (metadata stays).

        Raises:
            StorageError: if the block is dirty, has pending chunks, or has
                no loader to fault the columns back in from.
        """
        if self.dirty or self._chunks:
            raise StorageError(
                f"block {self.block_id} has unspilled changes and cannot be unloaded"
            )
        if self._loader is None:
            raise StorageError(
                f"block {self.block_id} has no spill loader and cannot be unloaded"
            )
        self._columns = None

    def _fault(self) -> None:
        """Materialize the consolidated columns from the bound loader."""
        if self._loader is None:
            raise StorageError(
                f"block {self.block_id} is unloaded and has no loader to fault from"
            )
        self._columns = dict(self._loader())

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def filtered(self, predicates: list[Predicate]) -> dict[str, np.ndarray]:
        """Return the columns restricted to rows matching all ``predicates``."""
        if not predicates:
            return dict(self.columns)
        mask = rows_matching(self.columns, predicates)
        return {name: array[mask] for name, array in self.columns.items()}

    def matching_count(self, predicates: list[Predicate]) -> int:
        """Number of rows matching all ``predicates``."""
        if not predicates:
            return self.num_rows
        return int(rows_matching(self.columns, predicates).sum())

    def column(self, name: str) -> np.ndarray:
        """Return the array for column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(f"block {self.block_id} has no column {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Block(block_id={self.block_id}, table={self.table!r}, "
            f"num_rows={self._num_rows}, pending_chunks={len(self._chunks)})"
        )


def compute_ranges(columns: dict[str, np.ndarray]) -> dict[str, tuple[float, float]]:
    """Compute per-column (min, max) metadata, skipping empty columns."""
    ranges: dict[str, tuple[float, float]] = {}
    for name, array in columns.items():
        if len(array) == 0:
            continue
        ranges[name] = (float(array.min()), float(array.max()))
    return ranges


def concatenate_columns(parts: list[dict[str, np.ndarray]], schema: Schema | None = None) -> dict[str, np.ndarray]:
    """Concatenate a list of column dictionaries row-wise.

    All parts must share the same column set.  An empty list yields empty
    arrays for the columns of ``schema`` (or an empty dict without a schema).
    """
    if not parts:
        if schema is None:
            return {}
        return {
            column.name: np.empty(0, dtype=column.dtype.numpy_dtype)
            for column in schema.columns
        }
    names = list(parts[0])
    for part in parts[1:]:
        if list(part) != names:
            raise StorageError("cannot concatenate column sets with differing columns")
    return {name: np.concatenate([part[name] for part in parts]) for name in names}
