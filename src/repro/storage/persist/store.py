"""Memory-mapped spill files: one directory per simulated machine.

Layout under the storage root::

    catalog.sqlite
    machine-00/
        block-000017-v3/
            meta.json          # num_rows + [name, dtype, length] per column
            l_orderkey.bin     # raw little-endian column bytes
            ...
    machine-01/
        ...

A block's files live under its *primary replica's* machine directory (the
first entry of its DFS placement), mirroring the paper's HDFS substrate
where a block has a home node.  Spills are **versioned**: every spill of a
block writes a fresh ``block-<id>-v<n>`` directory (staged under a ``.tmp``
name and renamed into place, so a half-written version is never picked up),
and the version the catalog references only advances when a checkpoint
commits.  Between checkpoints the *live* version (what an eviction wrote)
and the *durable* version (what the catalog references) may differ; a crash
simply strands the live version, and :meth:`PersistentBlockStore.gc`
removes every directory the catalog does not reference on the next open.

Faulting a column back in returns a read-only ``np.memmap`` view — pages
stream in on demand and the OS may reclaim them under pressure, which is
what lets a working set larger than the buffer budget (or than RAM)
execute at all.  Read-only is deliberate: block contents may only change
through the epoch-bumped mutation paths, which replace arrays rather than
writing them in place.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ...common.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..block import Block

_VERSION_DIR = re.compile(r"^block-(\d+)-v(\d+)$")


def _machine_dir(root: Path, machine_id: int) -> Path:
    return root / f"machine-{machine_id:02d}"


def _version_dir(root: Path, machine_id: int, block_id: int, version: int) -> Path:
    return _machine_dir(root, machine_id) / f"block-{block_id:06d}-v{version}"


class PersistentBlockStore:
    """Writes and faults per-column spill files for one storage root."""

    def __init__(self, root: Path, num_machines: int) -> None:
        self.root = Path(root)
        self.num_machines = num_machines
        for machine_id in range(num_machines):
            _machine_dir(self.root, machine_id).mkdir(parents=True, exist_ok=True)
        #: block id -> machine directory holding its files.
        self._machine: dict[int, int] = {}
        #: block id -> newest version written to disk (0 = never spilled).
        self._live: dict[int, int] = {}
        #: block id -> version the catalog currently references.
        self._durable: dict[int, int] = {}
        #: Lifetime spill counters (bytes include only column payloads).
        self.spills = 0
        self.spilled_bytes = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_block(self, block_id: int, machine_id: int) -> None:
        """Track a freshly created block (nothing is written yet)."""
        self._machine[block_id] = machine_id
        self._live.setdefault(block_id, 0)

    def adopt_block(self, block_id: int, machine_id: int, version: int) -> None:
        """Track a block restored from the catalog (its files already exist)."""
        self._machine[block_id] = machine_id
        self._live[block_id] = version
        self._durable[block_id] = version

    def forget_block(self, block_id: int) -> None:
        """Stop tracking a deleted block and remove its *undurable* spill files.

        The version the catalog still references is deliberately kept: until
        the next checkpoint commits, a crash must be able to roll back to
        the previous catalog state — which includes this block.  The next
        post-commit :meth:`gc` (whose durable map no longer contains the
        block) removes the retained directory.
        """
        self._live.pop(block_id, None)
        machine_id = self._machine.get(block_id)
        durable = self._durable.get(block_id)
        if machine_id is None:
            return
        machine_dir = _machine_dir(self.root, machine_id)
        prefix = f"block-{block_id:06d}-v"
        keep_name = f"block-{block_id:06d}-v{durable}" if durable else None
        for entry in sorted(os.listdir(machine_dir)):
            if entry.startswith(prefix) and entry != keep_name:
                shutil.rmtree(machine_dir / entry, ignore_errors=True)
        if durable is None:
            self._machine.pop(block_id, None)

    def machine_of(self, block_id: int) -> int:
        """Machine directory a block spills to."""
        try:
            return self._machine[block_id]
        except KeyError:
            raise StorageError(f"block {block_id} is not registered with the store") from None

    def live_version(self, block_id: int) -> int:
        """Newest on-disk version of a block (0 when never spilled)."""
        return self._live.get(block_id, 0)

    # ------------------------------------------------------------------ #
    # Spilling
    # ------------------------------------------------------------------ #
    def spill(self, block: "Block") -> Callable[[], dict[str, np.ndarray]]:
        """Write ``block``'s consolidated columns as a new version on disk.

        Returns the loader for the freshly written version and marks the
        block clean with it.  The write is staged under a ``.tmp`` directory
        and renamed into place so a crash mid-write never produces a
        directory the fault path could pick up.
        """
        machine_id = self.machine_of(block.block_id)
        version = self._live.get(block.block_id, 0) + 1
        final_dir = _version_dir(self.root, machine_id, block.block_id, version)
        staging_dir = final_dir.with_name(final_dir.name + ".tmp")
        if staging_dir.exists():
            shutil.rmtree(staging_dir)
        staging_dir.mkdir(parents=True)

        columns = block.columns  # consolidates pending chunks
        meta_columns: list[list[Any]] = []
        payload_bytes = 0
        for name, array in columns.items():
            contiguous = np.ascontiguousarray(array)
            meta_columns.append([name, contiguous.dtype.str, len(contiguous)])
            if len(contiguous):
                (staging_dir / f"{name}.bin").write_bytes(contiguous.tobytes())
                payload_bytes += contiguous.nbytes
        meta = {"num_rows": block.num_rows, "columns": meta_columns}
        (staging_dir / "meta.json").write_text(json.dumps(meta))
        os.replace(staging_dir, final_dir)

        self._live[block.block_id] = version
        self.spills += 1
        self.spilled_bytes += payload_bytes
        loader = self.loader(block.block_id, version)
        block.mark_clean(loader)
        return loader

    def loader(self, block_id: int, version: int) -> Callable[[], dict[str, np.ndarray]]:
        """A closure faulting one on-disk version back in as read-only memmaps."""
        directory = _version_dir(self.root, self.machine_of(block_id), block_id, version)

        def fault() -> dict[str, np.ndarray]:
            try:
                meta = json.loads((directory / "meta.json").read_text())
            except FileNotFoundError:
                raise StorageError(
                    f"spill files for block {block_id} v{version} are missing "
                    f"under {str(directory)!r}"
                ) from None
            columns: dict[str, np.ndarray] = {}
            for name, dtype_str, length in meta["columns"]:
                dtype = np.dtype(dtype_str)
                if length == 0:
                    columns[name] = np.empty(0, dtype=dtype)
                else:
                    columns[name] = np.memmap(
                        directory / f"{name}.bin", dtype=dtype, mode="r", shape=(length,)
                    )
            return columns

        return fault

    # ------------------------------------------------------------------ #
    # Checkpoint bookkeeping and garbage collection
    # ------------------------------------------------------------------ #
    def mark_durable(self) -> dict[int, int]:
        """Promote every live version to durable (the catalog just committed).

        Returns the block id -> version map the caller recorded.
        """
        self._durable = dict(self._live)
        return dict(self._durable)

    def gc(self) -> int:
        """Remove every version directory the durable map does not reference.

        Called after a successful checkpoint (dropping superseded versions)
        and on open (dropping versions stranded by a crash between spilling
        and the catalog commit).  Returns the number of directories removed.
        """
        removed = 0
        for machine_id in range(self.num_machines):
            machine_dir = _machine_dir(self.root, machine_id)
            if not machine_dir.is_dir():
                continue
            for entry in sorted(os.listdir(machine_dir)):
                match = _VERSION_DIR.match(entry.removesuffix(".tmp"))
                if match is None:
                    continue
                block_id, version = int(match.group(1)), int(match.group(2))
                keep = (
                    not entry.endswith(".tmp")
                    and self._durable.get(block_id) == version
                    and self._machine.get(block_id) == machine_id
                )
                if not keep:
                    shutil.rmtree(machine_dir / entry, ignore_errors=True)
                    removed += 1
        # Live state follows the disk: after a GC only durable versions remain
        # (plus registered-but-never-spilled blocks, which own no files).
        # Machine entries kept solely for a deleted block's retained durable
        # directory are dropped along with it.
        self._machine = {
            block_id: machine_id
            for block_id, machine_id in self._machine.items()
            if block_id in self._live or block_id in self._durable
        }
        self._live = {
            block_id: self._durable.get(block_id, 0) for block_id in self._live
        } | dict(self._durable)
        return removed
