"""The durable catalog: a WAL-mode SQLite database next to the spill files.

The catalog is the commit point of the persistence tier.  It holds every
piece of metadata a restarted session needs — block metadata and placement,
per-table partition-state epochs and bounded delta chains, serialized
partitioning trees, retained samples, the adaptation window, RNG states and
the session config — while raw column bytes live in per-machine spill files
(:mod:`repro.storage.persist.store`).

Crash consistency is the write ordering: spill files are written *before*
the catalog transaction that references them commits, so a crash at any
point leaves the catalog describing the previous consistent state and at
worst some unreferenced spill files (garbage-collected on the next open).
WAL mode makes the commit itself atomic; SQLite replays a pending WAL
automatically when the database is next opened.

All catalog **mutations** go through :meth:`PersistentCatalog.transaction`
— one ``BEGIN IMMEDIATE``-to-``COMMIT`` span per logical update.  The
``catalog-transaction`` static rule (:mod:`repro.analysis.persist`)
rejects any bare write ``execute`` outside such a block, so a half-written
catalog state cannot be introduced by a future code path either.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ...common.errors import StorageError

#: The catalog's file name under the storage root.
CATALOG_FILENAME = "catalog.sqlite"

_SCHEMA_STATEMENTS = (
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS tables (
        name TEXT PRIMARY KEY,
        payload TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS trees (
        table_name TEXT NOT NULL,
        tree_id INTEGER NOT NULL,
        payload TEXT NOT NULL,
        PRIMARY KEY (table_name, tree_id)
    )""",
    """CREATE TABLE IF NOT EXISTS blocks (
        block_id INTEGER PRIMARY KEY,
        table_name TEXT NOT NULL,
        tree_id INTEGER NOT NULL,
        num_rows INTEGER NOT NULL,
        size_bytes INTEGER NOT NULL,
        version INTEGER NOT NULL,
        payload TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS samples (
        table_name TEXT NOT NULL,
        column_name TEXT NOT NULL,
        dtype TEXT NOT NULL,
        data BLOB NOT NULL,
        PRIMARY KEY (table_name, column_name)
    )""",
    """CREATE TABLE IF NOT EXISTS window (
        position INTEGER PRIMARY KEY,
        payload TEXT NOT NULL
    )""",
)


class PersistentCatalog:
    """SQLite-backed metadata store of one storage root.

    The connection runs in WAL mode with ``synchronous=NORMAL`` (a commit
    is durable up to an OS crash, the standard WAL trade-off) and explicit
    transactions: the connection is opened in autocommit and every mutation
    span is an explicit ``BEGIN IMMEDIATE`` .. ``COMMIT`` issued by
    :meth:`transaction`.  Reads (``SELECT``) are safe outside transactions
    — they see the last committed state.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.path = self.root / CATALOG_FILENAME
        self.root.mkdir(parents=True, exist_ok=True)
        # isolation_level=None puts sqlite3 in autocommit so transaction()
        # controls the BEGIN/COMMIT span itself.  Connecting replays any WAL
        # left behind by a crashed writer before the first statement runs.
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        with self.transaction() as cur:
            for statement in _SCHEMA_STATEMENTS:
                cur.execute(statement)

    # ------------------------------------------------------------------ #
    # The transactional write path
    # ------------------------------------------------------------------ #
    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Cursor]:
        """One atomic catalog update: commit on success, rollback on error.

        Every catalog mutation must run on the yielded cursor inside this
        context — the ``catalog-transaction`` static rule enforces it.
        """
        cursor = self._conn.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        try:
            yield cursor
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")
        finally:
            cursor.close()

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # Reads (always against the last committed state)
    # ------------------------------------------------------------------ #
    def get_meta(self, key: str) -> Any | None:
        """JSON-decoded ``meta`` value for ``key``, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def require_meta(self, key: str) -> Any:
        """Like :meth:`get_meta` but raises when the key is absent."""
        value = self.get_meta(key)
        if value is None:
            raise StorageError(
                f"storage root {str(self.root)!r} holds no {key!r} metadata; "
                "was it ever checkpointed?"
            )
        return value

    def table_payloads(self) -> list[tuple[str, dict[str, Any]]]:
        """``(name, payload)`` for every table, sorted by name."""
        rows = self._conn.execute(
            "SELECT name, payload FROM tables ORDER BY name"
        ).fetchall()
        return [(name, json.loads(payload)) for name, payload in rows]

    def tree_payloads(self, table_name: str) -> list[tuple[int, dict[str, Any]]]:
        """``(tree_id, payload)`` for one table, sorted by tree id."""
        rows = self._conn.execute(
            "SELECT tree_id, payload FROM trees WHERE table_name = ? ORDER BY tree_id",
            (table_name,),
        ).fetchall()
        return [(tree_id, json.loads(payload)) for tree_id, payload in rows]

    def block_rows(self) -> list[tuple[int, str, int, int, int, int, dict[str, Any]]]:
        """Every block row, sorted by block id (restore iterates in id order
        so every rebuilt dict carries the same deterministic ordering the
        original session had)."""
        rows = self._conn.execute(
            "SELECT block_id, table_name, tree_id, num_rows, size_bytes, version, payload"
            " FROM blocks ORDER BY block_id"
        ).fetchall()
        return [
            (block_id, table_name, tree_id, num_rows, size_bytes, version,
             json.loads(payload))
            for block_id, table_name, tree_id, num_rows, size_bytes, version, payload
            in rows
        ]

    def durable_versions(self) -> dict[int, int]:
        """block id -> committed spill-file version."""
        rows = self._conn.execute("SELECT block_id, version FROM blocks").fetchall()
        return {block_id: version for block_id, version in rows}

    def sample_rows(self, table_name: str) -> list[tuple[str, str, bytes]]:
        """``(column, dtype, raw bytes)`` of a table's retained sample."""
        return self._conn.execute(
            "SELECT column_name, dtype, data FROM samples WHERE table_name = ?"
            " ORDER BY rowid",
            (table_name,),
        ).fetchall()

    def window_payloads(self) -> list[dict[str, Any]]:
        """Serialized window queries, oldest first."""
        rows = self._conn.execute(
            "SELECT payload FROM window ORDER BY position"
        ).fetchall()
        return [json.loads(payload) for (payload,) in rows]

    def has_checkpoint(self) -> bool:
        """Whether this catalog ever committed a checkpoint."""
        return self.get_meta("config") is not None
