"""JSON payload (de)serialization for the durable catalog.

Everything the catalog persists beyond raw column bytes travels as JSON:
schemas, partitioning trees, selection predicates, window queries, change
descriptors and RNG states.  The payload shapes are chosen so a round trip
is *exact* — trees serialize through the same preorder flat-array form the
compiled tree uses (cutpoints survive as shortest-round-trip floats),
predicate values are unwrapped to Python scalars, and RNG states carry the
bit generator's full integer state — because the acceptance contract of the
persistence tier is bit-identical ``QueryResult.fingerprint()``s across a
restart.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...common.errors import StorageError
from ...common.predicates import Operator, Predicate
from ...common.query import JoinClause, Query
from ...common.schema import Column, DataType, Schema
from ...partitioning.tree import PartitioningTree, TreeNode

#: Bumped whenever any payload shape changes incompatibly.
FORMAT_VERSION = 1


def _plain_scalar(value: Any) -> Any:
    """Unwrap numpy scalars so ``json.dumps`` accepts the payload."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# --------------------------------------------------------------------- #
# Schemas
# --------------------------------------------------------------------- #
def schema_to_payload(schema: Schema) -> list[list[str]]:
    """Schema -> ``[[name, dtype], ...]`` in declaration order."""
    return [[column.name, column.dtype.value] for column in schema.columns]


def schema_from_payload(payload: list[list[str]]) -> Schema:
    """Inverse of :func:`schema_to_payload`."""
    return Schema([Column(name, DataType(dtype)) for name, dtype in payload])


# --------------------------------------------------------------------- #
# Predicates and queries (the adaptation window)
# --------------------------------------------------------------------- #
def predicate_to_payload(predicate: Predicate) -> list[Any]:
    """Predicate -> ``[column, op, value, high]`` (IN tuples become lists)."""
    value: Any = predicate.value
    if isinstance(value, tuple):
        value = [_plain_scalar(item) for item in value]
    else:
        value = _plain_scalar(value)
    return [predicate.column, predicate.op.value, value, _plain_scalar(predicate.high)]


def predicate_from_payload(payload: list[Any]) -> Predicate:
    """Inverse of :func:`predicate_to_payload`."""
    column, op_value, value, high = payload
    op = Operator(op_value)
    if op is Operator.IN:
        value = tuple(value)
    return Predicate(column=column, op=op, value=value, high=high)


def query_to_payload(query: Query) -> dict[str, Any]:
    """Query -> JSON dict (``query_id`` is not persisted; it is a process-
    local counter value and feeds no adaptation or planning decision)."""
    return {
        "tables": list(query.tables),
        "template": query.template,
        "predicates": {
            table: [predicate_to_payload(p) for p in predicates]
            for table, predicates in query.predicates.items()
        },
        "joins": [
            [j.left_table, j.right_table, j.left_column, j.right_column]
            for j in query.joins
        ],
    }


def query_from_payload(payload: dict[str, Any]) -> Query:
    """Inverse of :func:`query_to_payload` (a fresh ``query_id`` is drawn)."""
    return Query(
        tables=list(payload["tables"]),
        predicates={
            table: [predicate_from_payload(p) for p in predicates]
            for table, predicates in payload["predicates"].items()
        },
        joins=[JoinClause(lt, rt, lc, rc) for lt, rt, lc, rc in payload["joins"]],
        template=payload["template"],
    )


# --------------------------------------------------------------------- #
# Partitioning trees
# --------------------------------------------------------------------- #
def tree_to_payload(tree: PartitioningTree) -> dict[str, Any]:
    """Tree -> preorder flat arrays (the compiled tree's own shape).

    Leaves carry their bound block ids in left-to-right leaf order, so the
    restored tree's leaves rebind to exactly the same DFS blocks.
    """
    compiled = tree.compiled()
    return {
        "join_attribute": tree.join_attribute,
        "join_levels": tree.join_levels,
        "tree_id": tree.tree_id,
        "attributes": list(compiled.attributes),
        "node_attr": compiled.node_attr.tolist(),
        "cutpoints": compiled.cutpoints.tolist(),
        "left": compiled.left.tolist(),
        "right": compiled.right.tolist(),
        "leaf_pos": compiled.leaf_pos.tolist(),
        "leaf_block_ids": [leaf.block_id for leaf in compiled.leaf_nodes],
    }


def tree_from_payload(payload: dict[str, Any]) -> PartitioningTree:
    """Inverse of :func:`tree_to_payload`."""
    attributes = payload["attributes"]
    node_attr = payload["node_attr"]
    cutpoints = payload["cutpoints"]
    left = payload["left"]
    right = payload["right"]
    leaf_pos = payload["leaf_pos"]
    leaf_block_ids = payload["leaf_block_ids"]
    count = len(node_attr)
    if count == 0:
        raise StorageError("serialized tree has no nodes")
    # Preorder numbering means every child index exceeds its parent's, so a
    # reverse walk can build each node fully-formed from its children.
    nodes: list[TreeNode | None] = [None] * count
    for index in reversed(range(count)):
        if node_attr[index] >= 0:
            nodes[index] = TreeNode(
                attribute=attributes[node_attr[index]],
                cutpoint=cutpoints[index],
                left=nodes[left[index]],
                right=nodes[right[index]],
            )
        else:
            nodes[index] = TreeNode(block_id=leaf_block_ids[leaf_pos[index]])
    return PartitioningTree(
        root=nodes[0],
        join_attribute=payload["join_attribute"],
        join_levels=payload["join_levels"],
        tree_id=payload["tree_id"],
    )


# --------------------------------------------------------------------- #
# RNG states
# --------------------------------------------------------------------- #
def rng_state_payload(rng: np.random.Generator) -> dict[str, Any]:
    """Full bit-generator state (arbitrary-precision ints survive JSON)."""
    return dict(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, payload: dict[str, Any]) -> None:
    """Restore a generator to a previously captured state in place."""
    rng.bit_generator.state = payload
