"""Checkpoint/restore orchestration of one persistent storage root.

A :class:`PersistenceManager` bundles the three pieces of the durable tier
— the WAL-mode :class:`~repro.storage.persist.catalog.PersistentCatalog`,
the mmap :class:`~repro.storage.persist.store.PersistentBlockStore` and the
byte-budgeted :class:`~repro.storage.persist.buffer.BlockBuffer` — and
owns the two lifecycle transitions:

``checkpoint``
    Two-phase: (1) spill every dirty block to a fresh on-disk version,
    then (2) commit *one* catalog transaction rewriting all metadata
    (config, RNG states, per-table epochs + delta chains, serialized
    trees, block rows + placement, samples, the adaptation window).  A
    crash anywhere before the commit leaves the catalog at the previous
    checkpoint; the stranded spill files are garbage-collected on the
    next open.  After the commit the freshly referenced versions become
    durable and superseded version directories are removed.

``restore``
    Rebuilds a session's partition state from the last committed
    checkpoint: blocks come back as *cold* (unloaded) :class:`Block`\\ s
    whose columns fault in through the buffer on first read, tables are
    reconstructed with their exact epoch counters and delta chains (so
    plan-cache keys and ``delta_between`` spans carry across the
    restart), and the session / DFS / repartitioner RNG states and the
    query window are restored so post-restart adaptation decisions are
    bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ...common.epochs import PartitionDelta
from ...common.errors import StorageError
from ..block import Block
from ..table import StoredTable
from .buffer import BlockBuffer
from .catalog import PersistentCatalog
from .serialize import (
    FORMAT_VERSION,
    query_from_payload,
    query_to_payload,
    restore_rng_state,
    rng_state_payload,
    schema_from_payload,
    schema_to_payload,
    tree_from_payload,
    tree_to_payload,
)
from .store import PersistentBlockStore

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a
    # storage -> api import cycle; the manager only duck-types the session)
    from ...api.session import Session


class PersistenceManager:
    """The durable tier of one session: catalog + spill store + buffer."""

    def __init__(
        self,
        root: Path,
        num_machines: int,
        buffer_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.catalog = PersistentCatalog(self.root)
        self.store = PersistentBlockStore(self.root, num_machines)
        self.buffer = BlockBuffer(self.store, budget_bytes=buffer_bytes)

    # ------------------------------------------------------------------ #
    # Lifecycle entry points
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, root: Path, num_machines: int, buffer_bytes: int | None = None
    ) -> "PersistenceManager":
        """Open a storage root for a *fresh* session.

        Raises:
            StorageError: if the root already holds a checkpoint — reusing
                it would collide block ids and spill files; such roots are
                resumed with ``Session.open`` instead.
        """
        manager = cls(root, num_machines, buffer_bytes)
        if manager.catalog.has_checkpoint():
            raise StorageError(
                f"storage root {str(root)!r} already holds a checkpointed "
                "catalog; resume it with Session.open(storage_root) instead "
                "of creating a fresh session over it"
            )
        return manager

    @classmethod
    def open(cls, root: Path) -> "PersistenceManager":
        """Open a storage root holding a committed checkpoint for restore."""
        root = Path(root)
        if not (root / "catalog.sqlite").exists():
            raise StorageError(f"storage root {str(root)!r} holds no catalog")
        # Opening the connection replays any WAL a crashed writer left.
        probe = PersistentCatalog(root)
        try:
            config_payload = probe.require_meta("config")
            num_machines = int(config_payload["num_machines"])
            buffer_bytes = config_payload.get("buffer_bytes")
        finally:
            probe.close()
        return cls(root, num_machines, buffer_bytes)

    def stored_config_payload(self) -> dict[str, Any]:
        """The config dict committed by the last checkpoint."""
        payload = self.catalog.require_meta("config")
        return dict(payload)

    def attach(self, dfs: Any) -> None:
        """Route the DFS's reads and block lifecycle through this tier."""
        dfs.block_store = self.store
        dfs.buffer = self.buffer
        self.buffer.dfs = dfs

    def close(self) -> None:
        """Release the catalog connection (idempotent)."""
        self.catalog.close()

    # ------------------------------------------------------------------ #
    # Checkpoint
    # ------------------------------------------------------------------ #
    def checkpoint(self, session: "Session") -> dict[str, int]:
        """Persist the session's full partition state; returns counters.

        Phase 1 spills every dirty block (new on-disk versions, catalog
        untouched); phase 2 commits one transaction describing exactly
        those versions.  Only after the commit are superseded and stranded
        version directories removed.
        """
        dfs = session.dfs
        tables = session.catalog.tables()
        spilled = 0
        for table in tables:
            for block_id in table.block_ids():
                block = dfs.peek_block(block_id)
                if block.dirty:
                    self.buffer.bind(block, self.store.spill(block))
                    spilled += 1

        self._commit_checkpoint(session, tables)

        self.store.mark_durable()
        removed = self.store.gc()
        return {"blocks_spilled": spilled, "versions_removed": removed}

    def _commit_checkpoint(self, session: "Session", tables: list[StoredTable]) -> None:
        """Phase 2: the single metadata transaction (the crash test's seam)."""
        dfs = session.dfs
        meta_rows = [
            ("format_version", json.dumps(FORMAT_VERSION)),
            ("config", json.dumps(dataclasses.asdict(session.config))),
            ("next_block_id", json.dumps(dfs.next_block_id)),
            ("rng", json.dumps({
                "session": rng_state_payload(session.rng),
                "dfs": rng_state_payload(dfs.rng),
                "repartitioner": rng_state_payload(session.repartitioner.rng),
            })),
        ]
        with self.catalog.transaction() as cur:
            for stale in ("tables", "trees", "blocks", "samples", "window"):
                cur.execute(f"DELETE FROM {stale}")  # noqa: S608 - fixed names
            cur.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", meta_rows
            )
            for table in tables:
                payload = {
                    "schema": schema_to_payload(table.schema),
                    "rows_per_block": table.rows_per_block,
                    "epoch": table.epoch,
                    "next_tree_id": table._next_tree_id,
                    "delta_chain_limit": table.delta_chain_limit,
                    "delta_chain": [
                        [epoch, _delta_to_payload(delta)]
                        for epoch, delta in table._delta_chain
                    ],
                    "total_rows": table.total_rows,
                }
                cur.execute(
                    "INSERT INTO tables (name, payload) VALUES (?, ?)",
                    (table.name, json.dumps(payload)),
                )
                for tree_id in sorted(table.trees):
                    cur.execute(
                        "INSERT INTO trees (table_name, tree_id, payload) VALUES (?, ?, ?)",
                        (table.name, tree_id, json.dumps(tree_to_payload(table.trees[tree_id]))),
                    )
                for block_id in table.block_ids():
                    block = dfs.peek_block(block_id)
                    block_payload = {
                        "ranges": {name: [lo, hi] for name, (lo, hi) in block.ranges.items()},
                        "placement": dfs.replicas_of(block_id),
                    }
                    cur.execute(
                        "INSERT INTO blocks (block_id, table_name, tree_id, num_rows,"
                        " size_bytes, version, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            block_id,
                            table.name,
                            table.tree_of_block(block_id),
                            block.num_rows,
                            block.size_bytes,
                            self.store.live_version(block_id),
                            json.dumps(block_payload),
                        ),
                    )
                for column_name in sorted(table.sample):
                    array = np.ascontiguousarray(table.sample[column_name])
                    cur.execute(
                        "INSERT INTO samples (table_name, column_name, dtype, data)"
                        " VALUES (?, ?, ?, ?)",
                        (table.name, column_name, array.dtype.str,
                         sqlite_blob(array.tobytes())),
                    )
            for position, query in enumerate(session.repartitioner.window.queries):
                cur.execute(
                    "INSERT INTO window (position, payload) VALUES (?, ?)",
                    (position, json.dumps(query_to_payload(query))),
                )

    # ------------------------------------------------------------------ #
    # Restore
    # ------------------------------------------------------------------ #
    def restore(self, session: "Session") -> None:
        """Rebuild ``session``'s state from the last committed checkpoint.

        The session arrives freshly constructed (empty DFS and catalog);
        blocks are re-registered cold, tables are reconstructed at their
        checkpointed epochs, RNG states and the adaptation window are
        restored, and only then is the DFS attached to the buffer/store so
        the restore itself never counts as buffer traffic.
        """
        catalog = self.catalog
        dfs = session.dfs
        block_rows = catalog.block_rows()

        # Adopt placement/version maps first so stranded (uncommitted)
        # spill versions from a crashed writer are collected before any
        # loader can observe them.
        for block_id, _table, _tree, _rows, _size, version, payload in block_rows:
            self.store.adopt_block(block_id, payload["placement"][0], version)
        self.store.mark_durable()
        self.store.gc()

        table_blocks: dict[str, list[tuple[int, int, int]]] = {}
        for block_id, table_name, tree_id, num_rows, size_bytes, version, payload in block_rows:
            ranges = {name: (lo, hi) for name, (lo, hi) in payload["ranges"].items()}
            block = Block.restore(
                block_id=block_id,
                table=table_name,
                ranges=ranges,
                size_bytes=size_bytes,
                num_rows=num_rows,
            )
            self.buffer.bind(block, self.store.loader(block_id, version))
            dfs.put_block(block, machine_ids=payload["placement"])
            table_blocks.setdefault(table_name, []).append((block_id, tree_id, num_rows))
        dfs.restore_block_counter(int(catalog.require_meta("next_block_id")))

        for name, payload in catalog.table_payloads():
            trees = {
                tree_id: tree_from_payload(tree_payload)
                for tree_id, tree_payload in catalog.tree_payloads(name)
            }
            rows_of = table_blocks.get(name, [])
            block_to_tree = {block_id: tree_id for block_id, tree_id, _ in rows_of}
            block_rows_map = {block_id: num_rows for block_id, _, num_rows in rows_of}
            tree_blocks: dict[int, list[int]] = {tree_id: [] for tree_id in trees}
            tree_rows: dict[int, int] = {tree_id: 0 for tree_id in trees}
            non_empty: dict[int, set[int]] = {tree_id: set() for tree_id in trees}
            for block_id, tree_id, num_rows in rows_of:
                tree_blocks[tree_id].append(block_id)
                tree_rows[tree_id] += num_rows
                if num_rows:
                    non_empty[tree_id].add(block_id)
            sample = {
                column: np.frombuffer(data, dtype=np.dtype(dtype_str)).copy()
                for column, dtype_str, data in catalog.sample_rows(name)
            }
            table = StoredTable(
                name=name,
                schema=schema_from_payload(payload["schema"]),
                dfs=dfs,
                trees=trees,
                sample=sample,
                rows_per_block=payload["rows_per_block"],
                _block_to_tree=block_to_tree,
                _next_tree_id=payload["next_tree_id"],
                _epoch=payload["epoch"],
                delta_chain_limit=payload["delta_chain_limit"],
                _delta_chain=[
                    (epoch, _delta_from_payload(delta_payload))
                    for epoch, delta_payload in payload["delta_chain"]
                ],
                _block_rows=block_rows_map,
                _tree_rows=tree_rows,
                _tree_blocks=tree_blocks,
                _non_empty=non_empty,
                _total_rows=payload["total_rows"],
            )
            table.arm_sanitize_snapshot()
            session.catalog.register(table)

        rng_states = catalog.require_meta("rng")
        restore_rng_state(session.rng, rng_states["session"])
        restore_rng_state(dfs.rng, rng_states["dfs"])
        restore_rng_state(session.repartitioner.rng, rng_states["repartitioner"])
        for query_payload in catalog.window_payloads():
            session.repartitioner.window.add(query_from_payload(query_payload))

        self.attach(dfs)


def sqlite_blob(data: bytes) -> memoryview:
    """Wrap raw bytes for a BLOB parameter."""
    return memoryview(data)


def _delta_to_payload(delta: PartitionDelta) -> dict[str, Any]:
    """Change descriptor -> JSON (sorted lists; sets have no JSON form)."""
    return {
        "blocks_changed": sorted(delta.blocks_changed),
        "blocks_dropped": sorted(delta.blocks_dropped),
        "trees_resplit": sorted(delta.trees_resplit),
        "trees_added": sorted(delta.trees_added),
        "trees_dropped": sorted(delta.trees_dropped),
        "full": delta.full,
    }


def _delta_from_payload(payload: dict[str, Any]) -> PartitionDelta:
    """Inverse of :func:`_delta_to_payload`."""
    return PartitionDelta(
        blocks_changed=set(payload["blocks_changed"]),
        blocks_dropped=set(payload["blocks_dropped"]),
        trees_resplit=set(payload["trees_resplit"]),
        trees_added=set(payload["trees_added"]),
        trees_dropped=set(payload["trees_dropped"]),
        full=payload["full"],
    )
