"""Durable storage tier: spill files, LRU buffer, catalog, checkpoints.

See :mod:`repro.storage.persist.manager` for the lifecycle overview.
"""

from .buffer import BlockBuffer
from .catalog import CATALOG_FILENAME, PersistentCatalog
from .manager import PersistenceManager
from .serialize import FORMAT_VERSION
from .store import PersistentBlockStore

__all__ = [
    "BlockBuffer",
    "CATALOG_FILENAME",
    "FORMAT_VERSION",
    "PersistenceManager",
    "PersistentBlockStore",
    "PersistentCatalog",
]
