"""The byte-budgeted LRU block buffer.

Every data read of a persistent session flows through one
:class:`BlockBuffer` sitting between the DFS and the spill store:

* ``DistributedFileSystem.get_block(s)`` calls :meth:`touch` — a resident
  block counts a **hit** and refreshes its recency; a spilled block is left
  to fault lazily (below) so a batch read never materializes more than the
  consumer actually walks.
* A spilled block's columns fault in through the loader the buffer bound
  to it (:meth:`bind`): the fault is counted, the block is (re)admitted at
  the MRU end, and the budget is enforced by evicting from the LRU end —
  clean blocks just drop their in-memory copy, dirty blocks are spilled
  first.  This also covers stragglers: a consumer holding a ``Block``
  handle past an eviction transparently re-faults on its next column read.
* ``peek_block`` never calls into the buffer at all — diagnostic peeks
  neither count as reads nor refresh recency, so metadata probes
  (planning, statistics audits) cannot perturb eviction order.  If a peek
  caller *does* read a spilled block's data, the lazy fault above still
  accounts the materialization — pages became resident, pretending
  otherwise would undercount.

Counters (hits / faults / evictions) accumulate on the buffer for the
lifetime sweeps of fig14 and are mirrored per execution into the DFS's
:class:`~repro.storage.dfs.ReadStats`, which ``Session.execute`` resets per
query and copies onto the ``QueryResult`` — excluded from fingerprints,
because buffer behaviour must never change query answers or plans.

``budget_bytes=None`` means unbounded: blocks stay resident and the buffer
only tracks recency and counters.  The budget is a *target*, not a hard
wall — a single block larger than the budget is still admitted (it must
be, to be read at all) and trimmed back on the next admission.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..block import Block
    from ..dfs import DistributedFileSystem
    from .store import PersistentBlockStore


class BlockBuffer:
    """Bounded pool of resident block copies over a spill store."""

    def __init__(
        self, store: "PersistentBlockStore", budget_bytes: int | None = None
    ) -> None:
        self.store = store
        self.budget_bytes = budget_bytes
        #: Resident block id -> charged bytes; dict order is recency (MRU last).
        self._resident: dict[int, int] = {}
        self._held: dict[int, "Block"] = {}
        self.resident_bytes = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        #: Set once the buffer is attached to a DFS; per-execution counter sink.
        self.dfs: "DistributedFileSystem | None" = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def bind(self, block: "Block", raw_loader: Callable[[], dict[str, np.ndarray]]) -> None:
        """Route ``block``'s future column faults through this buffer."""
        block.set_loader(lambda: self._fault(block, raw_loader))

    def admit(self, block: "Block") -> None:
        """Charge a resident block (creation or restore-with-data) to the pool."""
        self._charge(block)
        self._enforce_budget(exclude=block.block_id)

    # ------------------------------------------------------------------ #
    # The read path
    # ------------------------------------------------------------------ #
    def touch(self, block: "Block") -> None:
        """Account a DFS read: hit + refresh when resident, else defer to the
        lazy fault (the loader bound by :meth:`bind` counts it on first use).
        """
        if block.block_id in self._resident:
            self.hits += 1
            self._record("buffer_hits")
            self._charge(block)  # refresh recency and recharge a grown block

    def _fault(self, block: "Block", raw_loader: Callable[[], dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
        """Materialize a spilled block's columns, admitting it to the pool."""
        columns = raw_loader()
        self.faults += 1
        self._record("buffer_faults")
        self._charge(block)
        self._enforce_budget(exclude=block.block_id)
        return columns

    # ------------------------------------------------------------------ #
    # Residency accounting
    # ------------------------------------------------------------------ #
    def is_resident(self, block_id: int) -> bool:
        """Whether the buffer currently charges ``block_id`` as resident."""
        return block_id in self._resident

    def _charge(self, block: "Block") -> None:
        """(Re)charge a block at its current size and move it to the MRU end."""
        previous = self._resident.pop(block.block_id, 0)
        self._resident[block.block_id] = block.size_bytes
        self._held[block.block_id] = block
        self.resident_bytes += block.size_bytes - previous

    def _enforce_budget(self, exclude: int | None = None) -> None:
        """Evict from the LRU end until the pool fits the budget.

        ``exclude`` protects the block being admitted right now — evicting
        it before its caller ever touched the data would thrash.
        """
        if self.budget_bytes is None:
            return
        while self.resident_bytes > self.budget_bytes:
            victim_id = next(
                (block_id for block_id in self._resident if block_id != exclude), None
            )
            if victim_id is None:
                return
            self._evict(victim_id)

    def _evict(self, block_id: int) -> None:
        charge = self._resident.pop(block_id)
        block = self._held.pop(block_id)
        self.resident_bytes -= charge
        if block.dirty:
            # Write-back: the spill installs a fresh buffer-bound loader for
            # the new version before the in-memory copy is dropped.
            self.bind(block, self.store.spill(block))
        block.unload()
        self.evictions += 1
        self._record("buffer_evictions")

    def discard(self, block_id: int) -> None:
        """Drop tracking for a deleted block (no spill, no eviction count)."""
        charge = self._resident.pop(block_id, None)
        self._held.pop(block_id, None)
        if charge is not None:
            self.resident_bytes -= charge

    # ------------------------------------------------------------------ #
    # Sweeping controls (fig14) and counters
    # ------------------------------------------------------------------ #
    def set_budget(self, budget_bytes: int | None) -> None:
        """Change the byte budget, evicting down to it immediately."""
        self.budget_bytes = budget_bytes
        self._enforce_budget()

    def drop_resident(self) -> int:
        """Evict *everything* (spilling dirty blocks) — a cold-cache reset.

        Returns the number of blocks evicted.
        """
        dropped = 0
        while self._resident:
            self._evict(next(iter(self._resident)))
            dropped += 1
        return dropped

    def reset_counters(self) -> None:
        """Zero the lifetime hit/fault/eviction counters (sweep bookkeeping)."""
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    def _record(self, field_name: str) -> None:
        """Mirror one event into the attached DFS's per-execution ReadStats."""
        dfs = self.dfs
        if dfs is not None:
            stats = dfs.read_stats
            setattr(stats, field_name, getattr(stats, field_name) + 1)
