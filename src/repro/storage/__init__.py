"""Distributed storage engine: blocks, the simulated DFS, tables and catalog.

The durable tier (spill store, block buffer, persistent catalog and
checkpoint/restore) lives in :mod:`repro.storage.persist`.
"""

from .block import Block, compute_ranges, concatenate_columns
from .catalog import Catalog
from .dfs import DEFAULT_REPLICATION, DistributedFileSystem, ReadStats
from .sampling import DEFAULT_SAMPLE_SIZE, sample_columns
from .table import ColumnTable, RepartitionStats, StoredTable
from .persist import BlockBuffer, PersistenceManager, PersistentBlockStore, PersistentCatalog

__all__ = [
    "Block",
    "BlockBuffer",
    "Catalog",
    "ColumnTable",
    "DEFAULT_REPLICATION",
    "DEFAULT_SAMPLE_SIZE",
    "DistributedFileSystem",
    "PersistenceManager",
    "PersistentBlockStore",
    "PersistentCatalog",
    "ReadStats",
    "RepartitionStats",
    "StoredTable",
    "compute_ranges",
    "concatenate_columns",
    "sample_columns",
]
