"""Distributed storage engine: blocks, the simulated DFS, tables and catalog."""

from .block import Block, compute_ranges, concatenate_columns
from .catalog import Catalog
from .dfs import DEFAULT_REPLICATION, DistributedFileSystem, ReadStats
from .sampling import DEFAULT_SAMPLE_SIZE, sample_columns
from .table import ColumnTable, RepartitionStats, StoredTable

__all__ = [
    "Block",
    "Catalog",
    "ColumnTable",
    "DEFAULT_REPLICATION",
    "DEFAULT_SAMPLE_SIZE",
    "DistributedFileSystem",
    "ReadStats",
    "RepartitionStats",
    "StoredTable",
    "compute_ranges",
    "concatenate_columns",
    "sample_columns",
]
