"""Benchmark for Figure 17: ILP-optimal vs approximate block grouping."""

from __future__ import annotations

from repro.experiments import fig17_ilp

from repro.testing import run_once


def test_fig17_ilp_vs_approximate(benchmark, show):
    result = run_once(
        benchmark,
        fig17_ilp.run,
        scale=0.15,
        lineitem_blocks=64,
        orders_blocks=16,
        buffer_sizes=[8, 16, 32, 64],
        ilp_time_limit_seconds=15,
    )
    show(result)
    assert result.notes["max_approx_to_ilp_ratio"] <= 1.6, (
        "the approximate grouping stays close to the (time-limited) ILP solution"
    )
    ilp_ms = result.series_by_label("ILP runtime (ms)").y
    approx_ms = result.series_by_label("Approximate runtime (ms)").y
    assert max(approx_ms) < 100, "paper: the approximate optimizer runs in about a millisecond"
    assert max(ilp_ms) > 10 * max(approx_ms), "the ILP is orders of magnitude slower"
