"""Benchmark for Example 1 (Section 1) and the grouping-algorithm ablation.

The paper's introductory example shows that *which* build blocks share a hash
table changes the probe I/O (6 vs 5 block reads).  The ablation extends this:
on a realistic overlap structure, the cost-aware bottom-up grouping (the
algorithm AdaptDB ships) is compared against the naive first-fit grouping and
the greedy variant, timing the optimizer itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.join.grouping import bottom_up_grouping, first_fit_grouping, greedy_grouping
from repro.join.overlap import compute_overlap_matrix


def example1_overlap() -> np.ndarray:
    return np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=bool)


def realistic_overlap(num_build: int = 256, num_probe: int = 64) -> np.ndarray:
    rng = np.random.default_rng(7)
    starts = rng.uniform(0, 1000, size=num_build)
    build = [(float(s), float(s + rng.uniform(10, 60))) for s in starts]
    edges = np.linspace(0, 1100, num_probe + 1)
    probe = [(float(lo), float(hi)) for lo, hi in zip(edges, edges[1:])]
    return compute_overlap_matrix(build, probe)


def test_example1_bottom_up_matches_paper_optimum(benchmark):
    grouping = benchmark(bottom_up_grouping, example1_overlap(), 2)
    assert grouping.total_probe_reads == 5, "the paper's Example 1 optimum is 5 block reads"


@pytest.mark.parametrize(
    "algorithm",
    [bottom_up_grouping, greedy_grouping, first_fit_grouping],
    ids=["bottom_up", "greedy", "first_fit"],
)
def test_grouping_algorithm_ablation(benchmark, algorithm):
    overlap = realistic_overlap()
    grouping = benchmark(algorithm, overlap, 16)
    grouping.validate(overlap.shape[0], 16)
    # Record the objective value alongside the timing.
    benchmark.extra_info["probe_block_reads"] = grouping.total_probe_reads
    naive = first_fit_grouping(overlap, 16).total_probe_reads
    if algorithm is not first_fit_grouping:
        assert grouping.total_probe_reads <= naive, "cost-aware grouping never loses to first-fit"
