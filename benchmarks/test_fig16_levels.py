"""Benchmark for Figure 16: levels reserved for the join attribute."""

from __future__ import annotations

from repro.experiments import fig16_levels

from repro.testing import run_once


def test_fig16a_with_predicates(benchmark, show):
    result = run_once(
        benchmark, fig16_levels.run, scale=0.2, rows_per_block=128, with_predicates=True
    )
    show(result)
    # With selective predicates the best layout keeps some levels for selections:
    # the minimum must not require *every* orders level on the join attribute,
    # and reserving zero levels is never optimal either.
    assert result.notes["min_at_orders_levels"] > 0
    assert result.notes["min_at_orders_levels"] <= result.notes["max_orders_levels"]


def test_fig16b_without_predicates(show, benchmark):
    result = run_once(
        benchmark, fig16_levels.run, scale=0.2, rows_per_block=128, with_predicates=False
    )
    show(result)
    # Without predicates, more join levels never hurt: every series ends at or
    # below its zero-join-level starting point (the paper's monotone trend).
    for series in result.series:
        assert series.y[-1] <= series.y[0]
