"""Benchmark for Figure 7: scan response time vs data locality."""

from __future__ import annotations

from repro.experiments import fig07_locality

from repro.testing import run_once


def test_fig07_locality(benchmark, show):
    result = run_once(benchmark, fig07_locality.run, scale=0.25)
    show(result)
    times = result.series_by_label("response_time").y
    assert times == sorted(times), "lower locality must never be faster"
    assert times[-1] / times[0] < 1.20, "paper: ~18% slowdown at 27% locality"
