"""Benchmark for Figure 15: query-window size sensitivity."""

from __future__ import annotations

from repro.experiments import fig15_window

from repro.testing import run_once


def test_fig15_window_size(benchmark, show):
    result = run_once(benchmark, fig15_window.run, scale=0.1, window_sizes=[5, 35])
    show(result)
    assert (
        result.notes["last_adaptation_w5"] <= result.notes["last_adaptation_w35"]
    ), "a smaller window converges (stops repartitioning) sooner"
