"""Benchmark for Figure 18: the CMT real-workload trace."""

from __future__ import annotations

from repro.experiments import fig18_cmt

from repro.testing import run_once


def test_fig18_cmt_trace(benchmark, show):
    result = run_once(benchmark, fig18_cmt.run, scale=0.1, num_queries=103, runtime_model="serial")
    show(result)
    assert result.notes["improvement_vs_full_scan"] > 1.5, (
        "paper: AdaptDB roughly halves total runtime vs full scan"
    )
    assert (
        result.notes["repartitioning_max_spike"] >= result.notes["adaptdb_max_spike"]
    ), "full repartitioning pays one huge spike; AdaptDB does not"
    assert result.notes["adaptdb_total"] <= 2.0 * result.notes["fixed_total"], (
        "AdaptDB converges towards the hand-tuned layout"
    )
