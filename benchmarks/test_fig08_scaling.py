"""Benchmark for Figure 8: shuffle-join runtime vs dataset size."""

from __future__ import annotations

from repro.experiments import fig08_scaling

from repro.testing import run_once


def test_fig08_dataset_scaling(benchmark, show):
    result = run_once(benchmark, fig08_scaling.run, scale=0.3)
    show(result)
    times = result.series_by_label("running_time").y
    assert times == sorted(times), "bigger datasets must take longer"
    assert result.notes["linear_fit_r_squared"] > 0.95, "paper: runtime grows linearly"
