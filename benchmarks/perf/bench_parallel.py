"""Parallel-backend benchmark: scan scaling plus sim-vs-real calibration.

Two sections, recorded under the ``"parallel"`` key of the label's entry in
``BENCH_adaptation.json``:

* **scan scaling** — a fig08-style batch of selective ``lineitem`` scans
  executed by the parallel backend at 1/2/4/8 workers (same 8-machine
  schedule every time — only the worker fold changes, so fingerprints must
  be identical across worker counts *and* identical to the in-process task
  backend).  Reports wall seconds per worker count, the speedup relative
  to one worker, and whether the paper-style 1.8x-at-4-workers target is
  met.  The speedup is **measured honestly**: on a single-CPU container
  (``cpu_count`` is recorded) extra workers cannot help, so the target is
  reported but never gates.
* **calibration** — fig08-style scans and fig13-style joins through
  ``repro.parallel.calibrate``: the PR-4 discrete-event simulator predicts
  each schedule's makespan, the parallel backend measures it, and the
  report carries the fitted ``seconds per cost unit`` scale, the mean
  relative error after that fit, and a per-stage (task-kind) share
  breakdown.  Every query is cross-checked to fingerprint-match the task
  backend.

What gates (exit status) and what doesn't:

* fingerprint agreement — across worker counts, against the task backend,
  and (when ``--baseline`` is given) against the committed smoke baseline
  — **fatal** on mismatch,
* calibration error above ``--error-threshold`` — **reported, non-fatal**
  (wall-clock noise on shared CI runners is not a correctness signal).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_parallel.py --smoke \
        --out /tmp/bench.json --baseline benchmarks/perf/BENCH_parallel_smoke_baseline.json
    PYTHONPATH=src python benchmarks/perf/bench_parallel.py --label post
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path

from repro.api import Session
from repro.core.config import AdaptDBConfig
from repro.parallel.calibrate import (
    calibrate,
    fig08_scan_queries,
    fig13_join_queries,
)
from repro.workloads.tpch import TPCHGenerator

DEFAULT_OUT = Path(__file__).resolve().parents[2] / "BENCH_adaptation.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_parallel_smoke_baseline.json"

#: Fig08-style scaling target from the issue: 1.8x at 4 workers.  Only
#: meaningful with >= 4 cores; recorded either way, never load-bearing on
#: fewer cores.
SPEEDUP_TARGET = 1.8
SPEEDUP_TARGET_WORKERS = 4


def _fingerprint_digest(fingerprints: list[tuple]) -> str:
    """Stable hex digest of a list of QueryResult fingerprints."""
    canonical = json.dumps([list(fp) for fp in fingerprints], sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _make_session(
    tables, num_workers: int, rows_per_block: int, seed: int
) -> Session:
    config = AdaptDBConfig(
        rows_per_block=rows_per_block,
        buffer_blocks=8,
        seed=seed,
        num_machines=8,
        num_workers=num_workers,
        execution_backend="parallel",
    )
    session = Session(config=config)
    for table in tables.values():
        session.load_table(table)
    return session


# --------------------------------------------------------------------------- #
# Scan scaling (fig08-style)
# --------------------------------------------------------------------------- #

def run_scan_scaling(
    scale: float,
    rows_per_block: int,
    num_queries: int,
    worker_counts: list[int],
    repeats: int,
    seed: int = 1,
) -> dict:
    """Measure the fig08 scan batch at each worker count.

    Every session uses the same 8-machine cluster, so the compiled
    schedules — and therefore the results — are identical; only the
    machine-to-worker fold varies.  Per worker count the batch runs once
    for warmup (which also pins the shared-memory segments) and then
    ``repeats`` times, keeping the fastest batch time.
    """
    queries = fig08_scan_queries(num_queries)
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem"])

    seconds: dict[str, float] = {}
    digests: dict[str, str] = {}
    tasks_digest = ""
    for workers in worker_counts:
        session = _make_session(tables, workers, rows_per_block, seed)
        try:
            physicals = [
                session.lower(session.plan(query, adapt=False)) for query in queries
            ]
            if not tasks_digest:
                session.use_backend("tasks")
                tasks_digest = _fingerprint_digest(
                    [session.execute(physical).fingerprint() for physical in physicals]
                )
                session.use_backend("parallel")
            results = [session.execute(physical) for physical in physicals]  # warmup
            best = float("inf")
            for _ in range(max(repeats, 1)):
                results = [session.execute(physical) for physical in physicals]
                best = min(best, sum(result.wall_seconds for result in results))
            seconds[str(workers)] = round(best, 6)
            digests[str(workers)] = _fingerprint_digest(
                [result.fingerprint() for result in results]
            )
        finally:
            session.close()

    base = seconds[str(worker_counts[0])]
    speedup = {
        count: round(base / value, 3) if value else 0.0
        for count, value in seconds.items()
    }
    target_key = str(SPEEDUP_TARGET_WORKERS)
    return {
        "scale": scale,
        "rows_per_block": rows_per_block,
        "num_queries": num_queries,
        "repeats": repeats,
        "worker_counts": worker_counts,
        "seconds": seconds,
        "speedup_vs_1_worker": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_workers": SPEEDUP_TARGET_WORKERS,
        "speedup_target_met": speedup.get(target_key, 0.0) >= SPEEDUP_TARGET,
        "fingerprint": digests[str(worker_counts[0])],
        "fingerprints_identical_across_worker_counts": len(set(digests.values())) == 1,
        "matches_tasks_backend": set(digests.values()) == {tasks_digest},
    }


# --------------------------------------------------------------------------- #
# Sim-vs-real calibration (fig08 scans + fig13 joins)
# --------------------------------------------------------------------------- #

def run_calibration(
    scale: float,
    rows_per_block: int,
    num_workers: int,
    scan_queries: int,
    join_queries: int,
    repeats: int,
    seed: int = 1,
) -> dict:
    tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])
    session = _make_session(tables, num_workers, rows_per_block, seed)
    try:
        scan_report = calibrate(
            session,
            fig08_scan_queries(scan_queries),
            repeats=repeats,
            workload="fig08-scans",
        )
        join_report = calibrate(
            session,
            fig13_join_queries(join_queries),
            repeats=repeats,
            workload="fig13-joins",
        )
    finally:
        session.close()
    return {"fig08_scans": scan_report.as_dict(), "fig13_joins": join_report.as_dict()}


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #

def run_suite(smoke: bool) -> dict:
    if smoke:
        scaling = run_scan_scaling(
            scale=0.02, rows_per_block=128, num_queries=3,
            worker_counts=[1, 2], repeats=2,
        )
        calibration = run_calibration(
            scale=0.02, rows_per_block=128, num_workers=2,
            scan_queries=2, join_queries=2, repeats=2,
        )
    else:
        scaling = run_scan_scaling(
            scale=0.1, rows_per_block=256, num_queries=6,
            worker_counts=[1, 2, 4, 8], repeats=3,
        )
        calibration = run_calibration(
            scale=0.1, rows_per_block=256, num_workers=4,
            scan_queries=4, join_queries=3, repeats=3,
        )
    return {
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count(),
        "scan_scaling": scaling,
        "calibration": calibration,
    }


def check(section: dict, baseline_path: Path | None, error_threshold: float) -> int:
    """Gate fingerprints (fatal) and report calibration error (non-fatal)."""
    status = 0
    scaling = section["scan_scaling"]
    print(
        f"scan scaling on {section['cpu_count']} CPU(s): "
        + ", ".join(
            f"{count}w={scaling['seconds'][count]}s "
            f"(x{scaling['speedup_vs_1_worker'][count]})"
            for count in scaling["seconds"]
        )
    )
    target = f"{scaling['speedup_target']}x at {scaling['speedup_target_workers']} workers"
    print(f"speedup target {target}: met={scaling['speedup_target_met']} "
          f"(informational; impossible above cpu_count)")
    if not scaling["fingerprints_identical_across_worker_counts"]:
        print("ERROR: fingerprints differ across worker counts", file=sys.stderr)
        status = 1
    if not scaling["matches_tasks_backend"]:
        print("ERROR: parallel fingerprints differ from the task backend",
              file=sys.stderr)
        status = 1

    for workload, report in section["calibration"].items():
        print(
            f"calibration[{workload}]: fitted "
            f"{report['fitted_seconds_per_unit']} s/unit, "
            f"mean relative error {report['mean_relative_error']}, "
            f"fingerprints match tasks: {report['all_fingerprints_match']}"
        )
        if not report["all_fingerprints_match"]:
            print(f"ERROR: calibration[{workload}] fingerprint mismatch",
                  file=sys.stderr)
            status = 1
        if report["mean_relative_error"] > error_threshold:
            print(
                f"warning: calibration[{workload}] error "
                f"{report['mean_relative_error']} exceeds threshold "
                f"{error_threshold} (non-fatal: wall-clock noise)",
            )

    if baseline_path is not None and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        expected = baseline.get("scan_scaling_fingerprint")
        actual = scaling["fingerprint"]
        if expected != actual:
            print(
                f"ERROR: scan fingerprint {actual} != committed baseline "
                f"{expected} ({baseline_path})",
                file=sys.stderr,
            )
            status = 1
        else:
            print(f"committed smoke baseline matches ({baseline_path.name})")
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="post", choices=["pre", "post"],
                        help="which slot of the JSON to write under")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path (merged, not overwritten)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed smoke baseline to gate fingerprints against")
    parser.add_argument("--error-threshold", type=float, default=0.75,
                        help="non-fatal warning bound on mean relative calibration error")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"refresh {DEFAULT_BASELINE.name} from this run")
    args = parser.parse_args()

    section = run_suite(args.smoke)
    status = check(section, args.baseline, args.error_threshold)

    data = {}
    if args.out.exists():
        data = json.loads(args.out.read_text())
    entry = data.get(args.label) or {}
    entry["parallel"] = section
    data[args.label] = entry
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out} [{args.label}][parallel]")

    if args.write_baseline:
        DEFAULT_BASELINE.write_text(
            json.dumps(
                {
                    "mode": section["mode"],
                    "scan_scaling_fingerprint": section["scan_scaling"]["fingerprint"],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {DEFAULT_BASELINE}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
