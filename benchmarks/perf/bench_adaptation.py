"""Adaptation-path benchmark: fig13-style workload plus storage microbenchmarks.

Times the hot paths this repo's incremental-statistics work targets:

* **end-to-end** — an AdaptDB run (smooth repartitioning + Amoeba refinement
  per query) over a fig13-style switching TPC-H workload at a small block
  size, where per-query bookkeeping dominates,
* **lookup** — repeated partitioning-tree lookups through ``StoredTable``,
* **route** — repeated ``PartitioningTree.route_rows`` calls,
* **append** — repeated block-append cycles (``move_blocks`` back and forth
  between two trees), the smooth-repartitioning write path,
* **plan cache** — a repeated-template planning benchmark: the same converged
  workload is run once with the session plan cache enabled and once with it
  disabled, recording cold vs. cached planning time, the cache hit rate, and
  whether every per-query result fingerprint is bit-identical between the
  two runs (it must be — the cache may only change planning time),
* **persist** — the durable storage tier: the fig13-style switching workload
  runs on an ``mmap`` session whose block buffer is budgeted well below the
  working set (so blocks spill, evict and fault throughout), and every
  per-query fingerprint must stay bit-identical to a plain in-memory
  session; the session then checkpoints and reopens via ``Session.open``,
  where a repeated-template pass must reproduce the pre-restart
  fingerprints — cold on the first pass (the plan cache starts empty) and
  from the plan cache on the second (restored epochs key it identically),
* **sim** — a fig13-style concurrent workload on the ``repro.sim``
  discrete-event simulator: four closed-loop clients with think time plus a
  background repartitioning stream, reporting per-query latency percentiles,
  queueing delay and machine utilisation.  The whole simulation runs twice
  from fresh sessions; the smoke gate fails unless both runs produce
  bit-identical latency fingerprints (the simulator must be deterministic).

Besides wall-clock numbers the end-to-end run records a *decision
fingerprint* — per-query ``output_rows``, blocks read, blocks repartitioned
and trees created — so that before/after runs can prove the optimization
changed nothing observable.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_adaptation.py --label post
    PYTHONPATH=src python benchmarks/perf/bench_adaptation.py --smoke --out /tmp/b.json

Results are merged into ``BENCH_adaptation.json`` (repo root by default)
under the given label, so a ``pre`` entry captured on the old engine survives
a later ``post`` run.  When both ``pre`` and ``post`` are present the script
reports the speedup and verifies the fingerprints match.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import analyze_paths
from repro.api import Session
from repro.baselines.runners import AdaptDBRunner
from repro.common.predicates import between
from repro.common.query import join_query
from repro.common.rng import make_rng
from repro.core.config import AdaptDBConfig
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.sim import run_concurrent_workload
from repro.workloads.generators import switching_workload
from repro.workloads.tpch import TPCHGenerator
from repro.workloads.tpch_queries import EVALUATED_TEMPLATES, tables_for_templates, tpch_query

DEFAULT_OUT = Path(__file__).resolve().parents[2] / "BENCH_adaptation.json"

#: Packages whose behaviour feeds the decision fingerprint.  A timing run
#: over code that violates the repo invariants (epoch discipline, delta
#: completeness, determinism, shared-memory races) would measure a broken
#: engine, so the benchmark refuses to record numbers until the static
#: checkers come back clean on these.
FINGERPRINTED_PACKAGES = (
    "adaptive", "exec", "join", "parallel", "partitioning", "sim", "storage",
)


def assert_analysis_clean() -> None:
    """Exit non-zero if any invariant checker fires on the fingerprinted code."""
    import repro

    root = Path(repro.__file__).resolve().parent
    targets = [root / name for name in FINGERPRINTED_PACKAGES if (root / name).is_dir()]
    violations, file_count = analyze_paths(targets)
    errors = [v for v in violations if v.severity == "error"]
    if errors:
        for violation in errors:
            print(violation.render(), file=sys.stderr)
        print(
            f"ERROR: {len(errors)} invariant violation(s) in the fingerprinted "
            "modules; refusing to record timings for a broken engine",
            file=sys.stderr,
        )
        raise SystemExit(2)
    print(f"invariant checkers clean on {file_count} fingerprinted module file(s)")


# --------------------------------------------------------------------------- #
# End-to-end adaptation workload
# --------------------------------------------------------------------------- #

def run_adaptation_workload(
    scale: float, rows_per_block: int, queries_per_template: int, seed: int = 1
) -> dict:
    """Run the fig13-style switching workload and return timing + fingerprint."""
    templates = list(EVALUATED_TEMPLATES)
    rng = make_rng(seed)
    tables = list(
        TPCHGenerator(scale=scale, seed=seed)
        .generate(tables_for_templates(templates))
        .values()
    )
    queries = switching_workload(templates, queries_per_template, rng)
    config = AdaptDBConfig(rows_per_block=rows_per_block, buffer_blocks=8, seed=seed)

    runner = AdaptDBRunner(tables, config)
    start = time.perf_counter()
    results = runner.run_workload(queries)
    elapsed = time.perf_counter() - start

    per_query = {
        "output_rows": [int(r.output_rows) for r in results],
        "scan_output_rows": [int(r.scan_output_rows) for r in results],
        "blocks_read": [int(r.blocks_read) for r in results],
        "blocks_repartitioned": [int(r.blocks_repartitioned) for r in results],
        "trees_created": [int(r.trees_created) for r in results],
    }
    fingerprint = hashlib.sha256(
        json.dumps(per_query, sort_keys=True).encode()
    ).hexdigest()
    return {
        "seconds": round(elapsed, 4),
        "num_queries": len(queries),
        "scale": scale,
        "rows_per_block": rows_per_block,
        "fingerprint": fingerprint,
        "per_query": per_query,
    }


# --------------------------------------------------------------------------- #
# Plan-cache benchmark (repeated-template planning)
# --------------------------------------------------------------------------- #

def run_plan_cache_benchmark(
    scale: float,
    rows_per_block: int,
    warmup_per_template: int,
    repeats: int,
    seed: int = 1,
) -> dict:
    """Cold vs. cached planning on a fig13-style repeated-template workload.

    The *same* deterministic workload (per-template warmup to convergence,
    then each template's query repeated ``repeats`` times, everything with
    adaptation enabled) runs in two sessions that differ only in whether the
    planning caches are on.  Reported:

    * total planning seconds with the cache disabled (cold) and enabled,
    * the plan-cache hit rate over the measured repeats,
    * whether every measured result fingerprint matches between the runs
      (the cache must never change results or adaptation decisions).
    """
    templates = list(EVALUATED_TEMPLATES)

    def build_and_run(plan_cache_size: int):
        rng = make_rng(seed)
        tables = (
            TPCHGenerator(scale=scale, seed=seed)
            .generate(tables_for_templates(templates))
            .values()
        )
        config = AdaptDBConfig(
            rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
            plan_cache_size=plan_cache_size,
        )
        session = Session(config=config)
        if plan_cache_size == 0:
            # The cold baseline plans from scratch: no plan cache and no
            # epoch-keyed hyper-plan memo (decisions are unaffected — both
            # are pure memoization).
            session.optimizer.hyper_cache = None
        for table in tables:
            session.load_table(table)
        measured = []
        for template in templates:
            # Converge adaptation on this template, then repeat one query:
            # the steady-state regime where repeated templates replan the
            # same thing every query.
            for _ in range(warmup_per_template):
                session.run(tpch_query(template, rng))
            query = tpch_query(template, rng)
            measured.extend(session.run(query) for _ in range(repeats))
        return session, measured

    cached_session, cached_results = build_and_run(64)
    _, cold_results = build_and_run(0)

    cold_planning = sum(r.planning_seconds for r in cold_results)
    cached_planning = sum(r.planning_seconds for r in cached_results)
    hits = sum(r.plan_cache_hit for r in cached_results)
    identical = [r.fingerprint() for r in cached_results] == [
        r.fingerprint() for r in cold_results
    ]
    return {
        "measured_queries": len(cached_results),
        "repeats_per_template": repeats,
        "cold_planning_seconds": round(cold_planning, 6),
        "cached_planning_seconds": round(cached_planning, 6),
        "planning_speedup": round(cold_planning / max(cached_planning, 1e-9), 2),
        "hit_rate": round(hits / len(cached_results), 4),
        "results_identical": identical,
        "session_cache_stats": cached_session.cache_stats(),
    }


# --------------------------------------------------------------------------- #
# Incremental-planning benchmark (cold vs. delta-patched replans)
# --------------------------------------------------------------------------- #

def run_incremental_planning_benchmark(
    scale: float,
    rows_per_block: int,
    repeats: int,
    seed: int = 1,
) -> dict:
    """Cold vs. delta-patched planning across epoch bumps.

    A fig13-style ``lineitem ⋈ orders`` template repeats while background
    adaptation (Amoeba-style leaf re-splits) bumps ``lineitem``'s epoch
    between consecutive queries, so *every* measured query faces a stale
    plan cache.  The workload runs in two sessions differing only in
    ``AdaptDBConfig.incremental_planning``:

    * **cold** — every epoch bump forces a full replan (peek every block,
      recompute the overlap matrix and grouping from scratch),
    * **patched** — the planner consults the tables' change descriptors and
      patches cached state: whole-plan revalidation when the re-split is
      disjoint from the template's relevant set, hyper-plan delta upgrades
      when it is not.

    Most re-splits land outside the template's predicate window (the
    revalidation regime); every third lands wherever the tree offers,
    inside or out (exercising the upgrade path too).  Reported: summed
    planning seconds per mode, the speedup, the patch counters, and
    whether every per-query result fingerprint is bit-identical between
    the modes (it must be — patching may only change planning time).
    """
    window = (5.0, 20.0)

    def fig13_query():
        return join_query(
            "lineitem",
            "orders",
            "l_orderkey",
            "o_orderkey",
            predicates={"lineitem": [between("l_quantity", *window)]},
        )

    def resplit_background(table, fraction: float, disjoint: bool) -> bool:
        """Deterministic Amoeba-style re-split of one bottom leaf pair.

        With ``disjoint`` the chosen node's path bounds on ``l_quantity``
        must avoid the template's window, so the re-split provably leaves
        the query's relevant block set untouched.
        """
        for tree_id in sorted(table.trees):
            tree = table.tree(tree_id)
            for node, bounds in tree.bottom_internal_nodes():
                if disjoint:
                    quantity = bounds.get("l_quantity")
                    if quantity is None or not (
                        quantity[1] < window[0] or quantity[0] > window[1]
                    ):
                        continue
                left_id, right_id = node.left.block_id, node.right.block_id
                ranges = [
                    block_range
                    for block_range in (
                        table.join_range_of_block(left_id, node.attribute),
                        table.join_range_of_block(right_id, node.attribute),
                    )
                    if block_range is not None
                ]
                if not ranges:
                    continue
                low = min(r[0] for r in ranges)
                high = max(r[1] for r in ranges)
                if not low < high:
                    continue
                cutpoint = low + (high - low) * fraction
                if cutpoint == node.cutpoint:
                    cutpoint = low + (high - low) * 0.5
                tree.resplit_node(node, node.attribute, cutpoint)
                table.resplit_leaf_pair(left_id, right_id, node.attribute, cutpoint)
                return True
        return False

    def run_once(incremental: bool):
        config = AdaptDBConfig(
            rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
            incremental_planning=incremental,
        )
        session = Session(config=config)
        tables = TPCHGenerator(scale=scale, seed=seed).generate(["lineitem", "orders"])
        for table in tables.values():
            session.load_table(table)
        results = [session.run(fig13_query(), adapt=True)]  # converge adaptation
        table = session.table("lineitem")
        for step in range(repeats):
            resplit_background(
                table, 0.30 + 0.04 * (step % 10), disjoint=step % 3 != 2
            )
            results.append(session.run(fig13_query(), adapt=False))
        stats = session.cache_stats()
        session.close()
        return results, stats

    patched_results, patched_stats = run_once(True)
    cold_results, cold_stats = run_once(False)
    cold_planning = sum(r.planning_seconds for r in cold_results[1:])
    patched_planning = sum(r.planning_seconds for r in patched_results[1:])
    identical = [r.fingerprint() for r in patched_results] == [
        r.fingerprint() for r in cold_results
    ]
    return {
        "measured_queries": len(patched_results) - 1,
        "cold_planning_seconds": round(cold_planning, 6),
        "patched_planning_seconds": round(patched_planning, 6),
        "planning_speedup": round(cold_planning / max(patched_planning, 1e-9), 2),
        "results_identical": identical,
        "hyper_upgrades": patched_stats["hyper_upgrades"],
        "plan_revalidations": patched_stats["plan_revalidations"],
        "cold_hyper_misses": cold_stats["hyper_misses"],
    }


# --------------------------------------------------------------------------- #
# Durable-storage benchmark (bounded-memory run + checkpoint/restart)
# --------------------------------------------------------------------------- #

def run_persist_benchmark(
    scale: float,
    rows_per_block: int,
    queries_per_template: int,
    buffer_bytes: int,
    seed: int = 1,
) -> dict:
    """Bounded-memory mmap run vs. memory run, then checkpoint + reopen.

    Three gated properties:

    * an ``mmap`` session whose buffer budget is far below the working set
      (every query faults and evicts) produces per-query fingerprints
      bit-identical to a plain in-memory session,
    * after ``checkpoint()`` + close + ``Session.open`` a repeated-template
      pass reproduces the pre-restart fingerprints with an empty plan
      cache (cold, identical results),
    * the second post-restart pass hits the plan cache — the restored
      epochs key it exactly as the original session did.
    """
    import shutil
    import tempfile

    templates = list(EVALUATED_TEMPLATES)

    def build_session(config):
        tables = TPCHGenerator(scale=scale, seed=seed).generate(
            tables_for_templates(templates)
        )
        session = Session(config=config)
        for table in tables.values():
            session.load_table(table)
        return session

    queries = switching_workload(templates, queries_per_template, make_rng(seed))
    repeated = queries[: len(templates)]

    memory = build_session(
        AdaptDBConfig(rows_per_block=rows_per_block, buffer_blocks=8, seed=seed)
    )
    expected = [r.fingerprint() for r in memory.run_workload(queries)]
    memory.close()

    storage_root = tempfile.mkdtemp(prefix="repro-bench-persist-")
    try:
        mmap_session = build_session(
            AdaptDBConfig(
                rows_per_block=rows_per_block, buffer_blocks=8, seed=seed,
                persistence="mmap", storage_root=storage_root,
                buffer_bytes=buffer_bytes,
            )
        )
        start = time.perf_counter()
        fingerprints = [
            r.fingerprint() for r in mmap_session.run_workload(queries)
        ]
        mmap_wall = time.perf_counter() - start
        buffer = mmap_session.persist.buffer
        counters = {
            "buffer_faults": buffer.faults,
            "buffer_hits": buffer.hits,
            "buffer_evictions": buffer.evictions,
            "blocks_spilled": mmap_session.persist.store.spills,
        }
        pre_restart = [
            mmap_session.run(query, adapt=False).fingerprint()
            for query in repeated
        ]
        checkpoint_stats = mmap_session.checkpoint()
        mmap_session.close()

        reopened = Session.open(storage_root)
        cold = [reopened.run(query, adapt=False) for query in repeated]
        warm = [reopened.run(query, adapt=False) for query in repeated]
        reopened.close()
        return {
            "num_queries": len(queries),
            "scale": scale,
            "rows_per_block": rows_per_block,
            "buffer_bytes": buffer_bytes,
            "mmap_wall_seconds": round(mmap_wall, 4),
            "memory_identical": fingerprints == expected,
            **counters,
            **{f"checkpoint_{k}": v for k, v in checkpoint_stats.items()},
            "restore_identical": [r.fingerprint() for r in cold] == pre_restart
            and [r.fingerprint() for r in warm] == pre_restart,
            "cold_cache_hits": sum(r.plan_cache_hit for r in cold),
            "warm_hit_rate": round(
                sum(r.plan_cache_hit for r in warm) / max(len(warm), 1), 4
            ),
        }
    finally:
        shutil.rmtree(storage_root, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Concurrent-workload simulation benchmark
# --------------------------------------------------------------------------- #

def run_sim_workload_benchmark(
    scale: float,
    rows_per_block: int,
    num_clients: int = 4,
    queries_per_client: int = 4,
    think_seconds: float = 20.0,
    background_repartition_blocks: int = 200,
    seed: int = 1,
) -> dict:
    """Fig13-style concurrent run on the discrete-event simulator.

    ``num_clients`` closed-loop clients submit TPC-H template queries with
    seeded exponential think time while a background repartitioning stream
    contends for machines and the bounded repartitioning bandwidth.  The
    simulation runs **twice** from fresh sessions with the same seed; the
    reported ``deterministic`` flag (gated in CI) is whether both runs
    produced bit-identical latency fingerprints.
    """
    templates = ["q12", "q3", "q14", "q12"]

    def run_once():
        config = AdaptDBConfig(rows_per_block=rows_per_block, buffer_blocks=8, seed=seed)
        session = Session(config=config)
        tables = TPCHGenerator(scale=scale, seed=seed).generate(
            ["lineitem", "orders", "customer", "part"]
        )
        for table in tables.values():
            session.load_table(table)
        rng = make_rng(seed + 100)
        clients = [
            [
                tpch_query(templates[i % len(templates)], rng)
                for i in range(queries_per_client)
            ]
            for _ in range(num_clients)
        ]
        start = time.perf_counter()
        report = run_concurrent_workload(
            session,
            clients,
            think_seconds=think_seconds,
            seed=seed,
            background_repartition_blocks=background_repartition_blocks,
        )
        return report, time.perf_counter() - start

    first, first_wall = run_once()
    second, _ = run_once()
    summary = first.summary()
    summary.update(
        num_clients=num_clients,
        queries_per_client=queries_per_client,
        think_seconds=think_seconds,
        background_repartition_blocks=background_repartition_blocks,
        scale=scale,
        rows_per_block=rows_per_block,
        wall_seconds=round(first_wall, 4),
        deterministic=first.fingerprint() == second.fingerprint(),
    )
    return summary


# --------------------------------------------------------------------------- #
# Microbenchmarks
# --------------------------------------------------------------------------- #

def _build_stored_table(num_rows: int, rows_per_block: int):
    from repro.cluster import Cluster
    from repro.common.schema import DataType, Schema
    from repro.storage.dfs import DistributedFileSystem
    from repro.storage.table import ColumnTable, StoredTable
    from repro.partitioning.upfront import UpfrontPartitioner

    rng = np.random.default_rng(7)
    schema = Schema.of(("key", DataType.INT), ("other", DataType.INT), ("value", DataType.FLOAT))
    columns = {
        "key": rng.integers(0, 100_000, size=num_rows),
        "other": rng.integers(0, 1_000, size=num_rows),
        "value": rng.uniform(0, 1, size=num_rows),
    }
    table = ColumnTable("bench", schema, columns)
    tree = UpfrontPartitioner(["key", "other"], rows_per_block).build(
        table.sample(rng=np.random.default_rng(8)), total_rows=num_rows
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(3))
    return StoredTable.load(table, dfs, tree, rows_per_block=rows_per_block)


def bench_lookup(num_rows: int, rows_per_block: int, iterations: int) -> dict:
    """Repeated StoredTable.lookup calls with a selective range predicate."""
    stored = _build_stored_table(num_rows, rows_per_block)
    predicates = [between("key", 10_000, 30_000)]
    stored.lookup(predicates)  # warm-up
    start = time.perf_counter()
    matched = 0
    for _ in range(iterations):
        matched += len(stored.lookup(predicates))
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "iterations": iterations,
        "per_call_us": round(elapsed / iterations * 1e6, 2),
        "blocks_matched": matched // iterations,
    }


def bench_route(num_rows: int, rows_per_block: int, iterations: int) -> dict:
    """Repeated route_rows calls over a fixed batch of rows."""
    stored = _build_stored_table(num_rows, rows_per_block)
    tree = stored.tree(next(iter(stored.trees)))
    rng = np.random.default_rng(11)
    batch = {
        "key": rng.integers(0, 100_000, size=4096),
        "other": rng.integers(0, 1_000, size=4096),
        "value": rng.uniform(0, 1, size=4096),
    }
    tree.route_rows(batch)  # warm-up
    start = time.perf_counter()
    for _ in range(iterations):
        tree.route_rows(batch)
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "iterations": iterations,
        "per_call_us": round(elapsed / iterations * 1e6, 2),
    }


def bench_append(num_rows: int, rows_per_block: int, cycles: int) -> dict:
    """Move every block back and forth between two trees (append-heavy path)."""
    stored = _build_stored_table(num_rows, rows_per_block)
    source_tree = next(iter(stored.trees))
    tree = TwoPhasePartitioner("key", ["other"], rows_per_block=rows_per_block).build(
        stored.sample,
        total_rows=stored.total_rows,
        num_leaves=max(2, stored.total_rows // rows_per_block),
    )
    target_tree = stored.add_empty_tree(tree)
    start = time.perf_counter()
    rows_moved = 0
    for cycle in range(cycles):
        target = target_tree if cycle % 2 == 0 else source_tree
        stats = stored.move_blocks(stored.block_ids(), target)
        rows_moved += stats.rows_moved
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "cycles": cycles,
        "rows_moved": rows_moved,
        "rows_per_second": round(rows_moved / elapsed) if elapsed else None,
    }


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #

def run_suite(smoke: bool) -> dict:
    if smoke:
        e2e = run_adaptation_workload(scale=0.02, rows_per_block=64, queries_per_template=2)
        plan_cache = run_plan_cache_benchmark(
            scale=0.02, rows_per_block=64, warmup_per_template=6, repeats=3
        )
        incremental = run_incremental_planning_benchmark(
            scale=0.05, rows_per_block=64, repeats=9
        )
        persist = run_persist_benchmark(
            scale=0.02, rows_per_block=64, queries_per_template=2,
            buffer_bytes=96_000,
        )
        sim = run_sim_workload_benchmark(
            scale=0.02, rows_per_block=128, num_clients=4, queries_per_client=2,
            background_repartition_blocks=64,
        )
        micro_rows, micro_rpb, iters, cycles = 20_000, 128, 50, 2
    else:
        # rows_per_block=64 is the small-block regime where per-query
        # bookkeeping dominates — the regime the incremental-statistics work
        # targets (the acceptance bar is rows_per_block <= 512).
        e2e = run_adaptation_workload(scale=0.1, rows_per_block=64, queries_per_template=6)
        plan_cache = run_plan_cache_benchmark(
            scale=0.1, rows_per_block=64, warmup_per_template=12, repeats=5
        )
        incremental = run_incremental_planning_benchmark(
            scale=0.1, rows_per_block=64, repeats=12
        )
        persist = run_persist_benchmark(
            scale=0.1, rows_per_block=64, queries_per_template=4,
            buffer_bytes=256_000,
        )
        sim = run_sim_workload_benchmark(
            scale=0.1, rows_per_block=512, num_clients=4, queries_per_client=4,
            background_repartition_blocks=200,
        )
        micro_rows, micro_rpb, iters, cycles = 100_000, 128, 200, 6
    return {
        "mode": "smoke" if smoke else "full",
        "end_to_end": e2e,
        "plan_cache": plan_cache,
        "incremental_planning": incremental,
        "persist": persist,
        "sim": sim,
        "micro": {
            "lookup": bench_lookup(micro_rows, micro_rpb, iters),
            "route": bench_route(micro_rows, micro_rpb, iters),
            "append": bench_append(micro_rows, micro_rpb, cycles),
        },
    }


def check_plan_cache(post: dict) -> int:
    """Gate the plan-cache benchmark: hits must occur, results must match."""
    plan_cache = post.get("plan_cache")
    if not plan_cache:
        return 0
    print(f"plan cache: planning {plan_cache['cold_planning_seconds']}s cold -> "
          f"{plan_cache['cached_planning_seconds']}s cached "
          f"({plan_cache['planning_speedup']}x), "
          f"hit rate {plan_cache['hit_rate']}, "
          f"results identical: {plan_cache['results_identical']}")
    status = 0
    if plan_cache["hit_rate"] <= 0:
        print("ERROR: plan cache never hit on the repeated-template workload",
              file=sys.stderr)
        status = 1
    if not plan_cache["results_identical"]:
        print("ERROR: cached and cold runs produced different result fingerprints",
              file=sys.stderr)
        status = 1
    return status


def check_incremental(post: dict) -> int:
    """Gate the incremental-planning benchmark.

    Fatal if the patched and cold runs differ in any result fingerprint,
    if the delta machinery never engaged, or if patching did not make
    post-epoch-bump planning at least 2x faster.
    """
    incremental = post.get("incremental_planning")
    if not incremental:
        return 0
    print(f"incremental planning: {incremental['cold_planning_seconds']}s cold -> "
          f"{incremental['patched_planning_seconds']}s patched "
          f"({incremental['planning_speedup']}x), "
          f"{incremental['plan_revalidations']} revalidations, "
          f"{incremental['hyper_upgrades']} hyper upgrades, "
          f"results identical: {incremental['results_identical']}")
    status = 0
    if not incremental["results_identical"]:
        print("ERROR: delta-patched and cold planning produced different "
              "result fingerprints", file=sys.stderr)
        status = 1
    if incremental["plan_revalidations"] + incremental["hyper_upgrades"] <= 0:
        print("ERROR: the delta machinery never engaged (no revalidations or "
              "upgrades)", file=sys.stderr)
        status = 1
    if incremental["planning_speedup"] < 2.0:
        print(f"ERROR: incremental planning speedup "
              f"{incremental['planning_speedup']}x is below the 2x threshold",
              file=sys.stderr)
        status = 1
    return status


def check_persist(post: dict) -> int:
    """Gate the durable-storage benchmark.

    Fatal if the bounded-memory mmap run diverged from the memory run, if
    the budget never actually evicted (the run would not have exercised the
    bounded-memory path), if the reopened session failed to reproduce the
    pre-restart fingerprints, or if the restored epochs failed to key the
    plan cache (no hits on the second post-restart pass).
    """
    persist = post.get("persist")
    if not persist:
        return 0
    print(f"persist: {persist['num_queries']} queries under a "
          f"{persist['buffer_bytes']}-byte buffer, "
          f"{persist['buffer_faults']} faults / "
          f"{persist['buffer_evictions']} evictions / "
          f"{persist['blocks_spilled']} spills, "
          f"memory-identical: {persist['memory_identical']}, "
          f"restore-identical: {persist['restore_identical']}, "
          f"post-restart hit rate {persist['warm_hit_rate']}")
    status = 0
    if not persist["memory_identical"]:
        print("ERROR: bounded-memory mmap run diverged from the in-memory run",
              file=sys.stderr)
        status = 1
    if persist["buffer_evictions"] <= 0 or persist["buffer_faults"] <= 0:
        print("ERROR: the buffer budget never evicted/faulted — the benchmark "
              "did not exercise the bounded-memory tier", file=sys.stderr)
        status = 1
    if not persist["restore_identical"]:
        print("ERROR: the reopened session failed to reproduce the "
              "pre-restart result fingerprints", file=sys.stderr)
        status = 1
    if persist["cold_cache_hits"] != 0:
        print("ERROR: the reopened session's first pass hit a plan cache "
              "that should start empty", file=sys.stderr)
        status = 1
    if persist["warm_hit_rate"] <= 0:
        print("ERROR: restored epochs never keyed the plan cache "
              "(no hits on the second post-restart pass)", file=sys.stderr)
        status = 1
    return status


def check_sim(post: dict) -> int:
    """Gate the sim benchmark: the concurrent run must be deterministic."""
    sim = post.get("sim")
    if not sim:
        return 0
    latency = sim["latency"]
    print(f"sim: {sim['queries']} queries over {sim['num_clients']} clients, "
          f"latency p50 {latency['p50']} / p90 {latency['p90']} / p99 {latency['p99']} sim-s, "
          f"mean queueing {sim['mean_queueing_seconds']} sim-s, "
          f"deterministic: {sim['deterministic']}")
    if not sim["deterministic"]:
        print("ERROR: two identically-seeded sim runs produced different latencies",
              file=sys.stderr)
        return 1
    if sim["queries"] <= 0:
        print("ERROR: sim benchmark completed no queries", file=sys.stderr)
        return 1
    return 0


def compare(data: dict) -> int:
    """Report pre/post speedup and fingerprint equality; non-zero on mismatch."""
    post = data.get("post")
    status = (
        check_plan_cache(post) + check_incremental(post)
        + check_persist(post) + check_sim(post)
    ) if post else 0
    pre = data.get("pre")
    if not (pre and post):
        return status
    if pre["mode"] != post["mode"]:
        print(f"note: pre mode {pre['mode']!r} != post mode {post['mode']!r}; skipping comparison")
        return status
    speedup = pre["end_to_end"]["seconds"] / max(post["end_to_end"]["seconds"], 1e-9)
    same = pre["end_to_end"]["fingerprint"] == post["end_to_end"]["fingerprint"]
    print(f"end-to-end speedup: {speedup:.2f}x "
          f"({pre['end_to_end']['seconds']}s -> {post['end_to_end']['seconds']}s)")
    for name in ("lookup", "route", "append"):
        p, q = pre["micro"][name]["seconds"], post["micro"][name]["seconds"]
        print(f"  micro/{name}: {p / max(q, 1e-9):.2f}x ({p}s -> {q}s)")
    print(f"decision fingerprint identical: {same}")
    if not same:
        print("ERROR: pre/post decision fingerprints differ", file=sys.stderr)
        return 1
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="post", choices=["pre", "post"],
                        help="which slot of the JSON to write")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path (merged, not overwritten)")
    args = parser.parse_args()

    assert_analysis_clean()

    data = {}
    if args.out.exists():
        data = json.loads(args.out.read_text())
    suite = run_suite(args.smoke)
    previous = data.get(args.label) or {}
    if "parallel" in previous:
        # bench_parallel.py owns this subsection; re-running this script
        # must not drop its most recent numbers.
        suite["parallel"] = previous["parallel"]
    data[args.label] = suite
    status = compare(data)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out} [{args.label}] "
          f"(end-to-end {data[args.label]['end_to_end']['seconds']}s)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
