"""Benchmark for Figure 13(b): the shifting workload."""

from __future__ import annotations

from repro.experiments import fig13_adaptation

from repro.testing import run_once


def test_fig13b_shifting_workload(benchmark, show):
    result = run_once(
        benchmark,
        fig13_adaptation.run_shifting,
        scale=0.1,
        transition_length=8,
        runtime_model="serial",
    )
    show(result)
    assert result.notes["improvement_vs_full_scan"] > 1.3, "paper: roughly 2x over full scan"
    assert (
        result.notes["repartitioning_max_spike"] >= result.notes["adaptdb_max_spike"]
    ), "AdaptDB spreads repartitioning cost over more queries"
