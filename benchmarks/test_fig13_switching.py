"""Benchmark for Figure 13(a): the switching workload."""

from __future__ import annotations

from repro.experiments import fig13_adaptation

from repro.testing import run_once


def test_fig13a_switching_workload(benchmark, show):
    result = run_once(
        benchmark,
        fig13_adaptation.run_switching,
        scale=0.1,
        queries_per_template=8,
        runtime_model="serial",
    )
    show(result)
    assert result.notes["improvement_vs_full_scan"] > 1.5, "paper: ~2x or better over full scan"
    assert (
        result.notes["repartitioning_max_spike"] > result.notes["adaptdb_max_spike"]
    ), "smooth repartitioning must flatten the reorganization spikes"
