"""Benchmark for Figure 1: shuffle join vs co-partitioned join."""

from __future__ import annotations

from repro.experiments import fig01_copartition

from repro.testing import run_once


def test_fig01_copartition(benchmark, show):
    result = run_once(benchmark, fig01_copartition.run, scale=0.25, rows_per_block=512)
    show(result)
    shuffle, hyper = result.series_by_label("runtime").y
    assert hyper < shuffle, "co-partitioned join must beat shuffle join"
    assert result.notes["speedup"] >= 1.5, "paper reports roughly 2x"
