"""Benchmark for Figure 14: hyper-join memory buffer sweep."""

from __future__ import annotations

from repro.experiments import fig14_buffer

from repro.testing import run_once


def test_fig14_memory_buffer(benchmark, show):
    result = run_once(
        benchmark, fig14_buffer.run, scale=0.25, rows_per_block=256,
        buffer_sizes=[1, 2, 4, 8, 16, 32],
    )
    show(result)
    blocks = result.series_by_label("orders_blocks_read").y
    times = result.series_by_label("running_time").y
    assert blocks == sorted(blocks, reverse=True), "bigger buffers never read more probe blocks"
    assert times == sorted(times, reverse=True), "runtime improves with buffer size"
    # The improvement flattens out: the last doubling helps far less than the first.
    first_gain = blocks[0] - blocks[1]
    last_gain = blocks[-2] - blocks[-1]
    assert last_gain <= first_gain, "paper: benefit saturates at large buffers"
    # The sweep now drives the real bounded-memory tier: the smallest budget
    # must actually thrash (evictions) and fault every probe re-read from the
    # spill files, and a bigger buffer must fault no more than the smallest.
    faults = result.series_by_label("buffer_faults").y
    evictions = result.series_by_label("buffer_evictions").y
    assert evictions[0] > 0, "smallest budget must evict under pressure"
    assert faults[0] > 0, "cold sweep points must fault blocks in from disk"
    assert faults[-1] <= faults[0], "a bigger buffer never faults more than the smallest"
    assert evictions[-1] <= evictions[0], "a bigger buffer never evicts more than the smallest"
