"""Benchmark for Figure 12: per-template TPC-H comparison of the four systems."""

from __future__ import annotations

from repro.experiments import fig12_tpch

from repro.testing import run_once


def test_fig12_tpch_per_template(benchmark, show):
    result = run_once(
        benchmark,
        fig12_tpch.run,
        scale=0.12,
        warmup_queries=10,
        measured_queries=3,
        # The shape assertions pin the serial cost model (see tests/test_experiments.py).
        runtime_model="serial",
    )
    show(result)

    hyper = result.series_by_label("AdaptDB w/ Hyper-Join").y
    shuffle = result.series_by_label("AdaptDB w/ Shuffle Join").y
    amoeba = result.series_by_label("Amoeba").y
    pref = result.series_by_label("Predicate-based Reference Partitioning").y

    assert all(h < s for h, s in zip(hyper, shuffle)), "hyper-join wins every template"
    assert all(h < a for h, a in zip(hyper, amoeba)), "AdaptDB beats Amoeba everywhere"
    assert all(h < p for h, p in zip(hyper, pref)), "AdaptDB beats PREF everywhere"
    assert result.notes["mean_speedup_vs_shuffle"] >= 1.3, "paper reports 1.60x on average"
