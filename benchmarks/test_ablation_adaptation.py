"""Ablation benchmark: which AdaptDB ingredient buys how much?

DESIGN.md calls out two design choices on top of the Amoeba substrate —
(1) hyper-join instead of shuffle join, and (2) smooth repartitioning of the
join attribute into the trees.  This ablation runs the same q12 workload
under four configurations and records the total modelled cost of each, so the
contribution of every ingredient is visible:

* Full Scan                 (no pruning, no adaptation, shuffle joins)
* Amoeba                    (selection adaptation only, shuffle joins)
* AdaptDB w/ shuffle joins  (join-aware partitioning, shuffle joins)
* AdaptDB                   (join-aware partitioning + hyper-join)
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    AdaptDBRunner,
    AdaptDBShuffleOnlyRunner,
    AmoebaBaseline,
    FullScanBaseline,
)
from repro.common.rng import make_rng
from repro.core import AdaptDBConfig
from repro.workloads import TPCHGenerator, tpch_query

RUNNERS = {
    "full_scan": FullScanBaseline,
    "amoeba": AmoebaBaseline,
    "adaptdb_shuffle": AdaptDBShuffleOnlyRunner,
    "adaptdb": AdaptDBRunner,
}


@pytest.fixture(scope="module")
def workload_setup():
    tables = list(TPCHGenerator(scale=0.1, seed=5).generate(["lineitem", "orders"]).values())
    rng = make_rng(13)
    queries = [tpch_query("q12", rng) for _ in range(12)]
    config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=5)
    return tables, queries, config


@pytest.mark.parametrize("name", list(RUNNERS))
def test_adaptation_ablation(benchmark, workload_setup, name):
    tables, queries, config = workload_setup
    runner_cls = RUNNERS[name]

    def run():
        if runner_cls in (AdaptDBRunner, AdaptDBShuffleOnlyRunner, AmoebaBaseline, FullScanBaseline):
            runner = runner_cls(tables, config)
        return runner.run_workload(queries)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    total_cost = sum(result.cost_units for result in results)
    benchmark.extra_info["total_cost_units"] = round(total_cost, 1)
    benchmark.extra_info["steady_state_cost"] = round(
        sum(result.cost_units for result in results[-3:]), 1
    )
    assert all(result.output_rows == results[0].output_rows for result in results[:1])
