"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure of the paper via the corresponding
driver in ``repro.experiments``, times it with pytest-benchmark, prints the
resulting table (run ``pytest benchmarks/ --benchmark-only -s`` to see them),
and asserts the figure's qualitative shape so a regression in the algorithms
fails the benchmark run, not just the timing.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print an experiment result table beneath the benchmark output."""

    def _show(result):
        print()
        print(result.to_table())
        return result

    return _show
