"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure of the paper via the corresponding
driver in ``repro.experiments``, times it with pytest-benchmark, prints the
resulting table (run ``pytest benchmarks/ --benchmark-only -s`` to see them),
and asserts the figure's qualitative shape so a regression in the algorithms
fails the benchmark run, not just the timing.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing.

    The experiment drivers are deterministic simulations, so a single round
    is enough; this keeps the full benchmark suite fast while still recording
    wall-clock timings for every figure.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print an experiment result table beneath the benchmark output."""

    def _show(result):
        print()
        print(result.to_table())
        return result

    return _show
