"""Tests for the comparison systems in repro.baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AdaptDBRunner,
    AdaptDBShuffleOnlyRunner,
    AmoebaBaseline,
    BestGuessFixedBaseline,
    FullRepartitioningBaseline,
    FullScanBaseline,
    PREFBaseline,
)
from repro.common.rng import make_rng
from repro.core import AdaptDBConfig
from repro.workloads.cmt import CMTGenerator
from repro.workloads.tpch_queries import tpch_query


@pytest.fixture(scope="module")
def tables(tpch_tables_module):
    return tpch_tables_module


@pytest.fixture(scope="module")
def tpch_tables_module():
    from repro.workloads.tpch import TPCHGenerator

    return TPCHGenerator(scale=0.08, seed=7).generate(["lineitem", "orders", "part"])


@pytest.fixture(scope="module")
def config():
    return AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=5)


def q12_workload(count=10, seed=1):
    rng = make_rng(seed)
    return [tpch_query("q12", rng) for _ in range(count)]


class TestRunnersProduceConsistentAnswers:
    def test_all_systems_agree_on_query_results(self, tables, config):
        """Every comparison system must return the same join cardinalities."""
        queries = q12_workload(4)
        table_list = list(tables.values())
        runners = [
            FullScanBaseline(table_list, config),
            AmoebaBaseline(table_list, config),
            AdaptDBRunner(table_list, config),
            AdaptDBShuffleOnlyRunner(table_list, config),
            FullRepartitioningBaseline(table_list, config),
            PREFBaseline(table_list, workload_hint=queries, config=config),
            BestGuessFixedBaseline(table_list, queries, config),
        ]
        outputs = []
        for runner in runners:
            results = runner.run_workload(queries)
            outputs.append([r.output_rows for r in results])
        for other in outputs[1:]:
            assert other == outputs[0]


class TestFullScan:
    def test_never_adapts_and_always_shuffles(self, tables, config):
        runner = FullScanBaseline(list(tables.values()), config)
        results = runner.run_workload(q12_workload(5))
        assert all(r.blocks_repartitioned == 0 for r in results)
        assert all(set(r.join_methods) == {"shuffle"} for r in results)

    def test_reads_every_block(self, tables, config):
        runner = FullScanBaseline(list(tables.values()), config)
        result = runner.run_workload(q12_workload(1))[0]
        lineitem_blocks = len(runner.db.table("lineitem").non_empty_block_ids())
        orders_blocks = len(runner.db.table("orders").non_empty_block_ids())
        assert result.blocks_read == lineitem_blocks + orders_blocks


class TestAdaptDBRunners:
    def test_adaptdb_beats_full_scan_after_convergence(self, tables, config):
        queries = q12_workload(12)
        adaptdb = AdaptDBRunner(list(tables.values()), config).run_workload(queries)
        fullscan = FullScanBaseline(list(tables.values()), config).run_workload(queries)
        adaptive_tail = sum(r.cost_units for r in adaptdb[-4:])
        fullscan_tail = sum(r.cost_units for r in fullscan[-4:])
        assert adaptive_tail < fullscan_tail

    def test_shuffle_only_variant_never_uses_hyper_join(self, tables, config):
        runner = AdaptDBShuffleOnlyRunner(list(tables.values()), config)
        results = runner.run_workload(q12_workload(6))
        assert all("hyper" not in r.join_methods for r in results)

    def test_hyper_variant_faster_than_shuffle_variant(self, tables, config):
        queries = q12_workload(12)
        hyper = AdaptDBRunner(list(tables.values()), config).run_workload(queries)
        shuffle = AdaptDBShuffleOnlyRunner(list(tables.values()), config).run_workload(queries)
        assert sum(r.cost_units for r in hyper[-4:]) < sum(r.cost_units for r in shuffle[-4:])


class TestAmoebaBaseline:
    def test_amoeba_never_builds_join_trees(self, tables, config):
        runner = AmoebaBaseline(list(tables.values()), config)
        runner.run_workload(q12_workload(8))
        assert runner.db.table("lineitem").tree_for_join_attribute("l_orderkey") is None

    def test_amoeba_uses_shuffle_joins(self, tables, config):
        runner = AmoebaBaseline(list(tables.values()), config)
        results = runner.run_workload(q12_workload(3))
        assert all(set(r.join_methods) == {"shuffle"} for r in results if r.join_methods)


class TestFullRepartitioning:
    def test_triggers_one_expensive_reorganization(self, tables, config):
        runner = FullRepartitioningBaseline(list(tables.values()), config)
        results = runner.run_workload(q12_workload(10))
        spikes = [r for r in results if r.blocks_repartitioned > 0]
        assert len(spikes) >= 1
        # The spike query is far more expensive than the converged queries.
        assert max(r.cost_units for r in spikes) > 2 * min(r.cost_units for r in results[-3:])

    def test_converges_to_co_partitioned_layout(self, tables, config):
        runner = FullRepartitioningBaseline(list(tables.values()), config)
        runner.run_workload(q12_workload(10))
        lineitem = runner.db.table("lineitem")
        assert lineitem.num_trees == 1
        assert lineitem.tree_for_join_attribute("l_orderkey") is not None

    def test_spike_is_taller_than_adaptdbs_worst_query(self, tables, config):
        queries = q12_workload(10)
        repart = FullRepartitioningBaseline(list(tables.values()), config).run_workload(queries)
        smooth = AdaptDBRunner(list(tables.values()), config).run_workload(queries)
        assert max(r.cost_units for r in repart) > max(r.cost_units for r in smooth)


class TestPREF:
    def test_layout_is_static(self, tables, config):
        queries = q12_workload(6)
        runner = PREFBaseline(list(tables.values()), workload_hint=queries, config=config)
        results = runner.run_workload(queries)
        assert all(r.blocks_repartitioned == 0 for r in results)

    def test_replication_factors_follow_join_attributes(self, tables, config):
        rng = make_rng(2)
        hint = [tpch_query("q12", rng), tpch_query("q14", rng)]
        runner = PREFBaseline(list(tables.values()), workload_hint=hint, config=config)
        assert runner.replication_factors["lineitem"] == 2.0
        assert runner.replication_factors["orders"] == 1.0

    def test_costs_inflated_by_replication(self, tables, config):
        rng = make_rng(2)
        hint = [tpch_query("q12", rng), tpch_query("q14", rng)]
        queries = q12_workload(3)
        with_replication = PREFBaseline(
            list(tables.values()), workload_hint=hint, config=config
        ).run_workload(queries)
        without_replication = PREFBaseline(
            list(tables.values()), workload_hint=[], config=config
        ).run_workload(queries)
        assert sum(r.cost_units for r in with_replication) > sum(
            r.cost_units for r in without_replication
        )

    def test_joins_are_co_partitioned(self, tables, config):
        queries = q12_workload(3)
        runner = PREFBaseline(list(tables.values()), workload_hint=queries, config=config)
        results = runner.run_workload(queries)
        assert all(set(r.join_methods) == {"hyper"} for r in results)


class TestBestGuessFixed:
    def test_trees_match_workload_join_attributes(self, tables, config):
        queries = q12_workload(5)
        runner = BestGuessFixedBaseline(list(tables.values()), queries, config)
        assert runner.db.table("lineitem").tree_for_join_attribute("l_orderkey") is not None
        assert runner.db.table("orders").tree_for_join_attribute("o_orderkey") is not None

    def test_layout_never_changes(self, tables, config):
        queries = q12_workload(5)
        runner = BestGuessFixedBaseline(list(tables.values()), queries, config)
        results = runner.run_workload(queries)
        assert all(r.blocks_repartitioned == 0 for r in results)

    def test_unjoined_table_gets_upfront_tree(self, cmt_tables, config):
        generator_queries = CMTGenerator(scale=0.05, seed=7).query_trace(20)
        runner = BestGuessFixedBaseline(list(cmt_tables.values()), generator_queries, config)
        # trip_latest is rarely joined; whatever tree it gets must hold all rows.
        assert runner.db.table("trip_latest").total_rows == cmt_tables["trip_latest"].num_rows

    def test_adaptdb_converges_towards_fixed_layout(self, tables, config):
        queries = q12_workload(14)
        fixed = BestGuessFixedBaseline(list(tables.values()), queries, config).run_workload(queries)
        adaptive = AdaptDBRunner(list(tables.values()), config).run_workload(queries)
        fixed_tail = np.mean([r.cost_units for r in fixed[-4:]])
        adaptive_tail = np.mean([r.cost_units for r in adaptive[-4:]])
        assert adaptive_tail <= 2.0 * fixed_tail
