"""Tests for repro.storage.table (ColumnTable and StoredTable)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.common.errors import PartitioningError, SchemaError, StorageError
from repro.common.predicates import between, le
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, RepartitionStats, StoredTable


def make_column_table(rows: int = 2000, name: str = "t") -> ColumnTable:
    rng = np.random.default_rng(5)
    schema = Schema.of(("key", DataType.INT), ("other", DataType.INT), ("value", DataType.FLOAT))
    columns = {
        "key": rng.integers(0, 10_000, size=rows),
        "other": rng.integers(0, 100, size=rows),
        "value": rng.uniform(0, 1, size=rows),
    }
    return ColumnTable(name, schema, columns)


def make_dfs() -> DistributedFileSystem:
    return DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(2))


def load_table(rows: int = 2000, rows_per_block: int = 256) -> StoredTable:
    table = make_column_table(rows)
    tree = UpfrontPartitioner(["key", "other"], rows_per_block).build(
        table.sample(), total_rows=table.num_rows
    )
    return StoredTable.load(table, make_dfs(), tree, rows_per_block=rows_per_block)


class TestColumnTable:
    def test_schema_validated_on_construction(self):
        schema = Schema.of(("a", DataType.INT))
        with pytest.raises(SchemaError):
            ColumnTable("bad", schema, {"b": np.arange(3)})

    def test_num_rows(self):
        assert make_column_table(123).num_rows == 123

    def test_sample_smaller_than_table(self):
        table = make_column_table(5000)
        sample = table.sample(100, make_rng(1))
        assert len(sample["key"]) == 100

    def test_select_projection(self):
        table = make_column_table(10)
        assert list(table.select(["key"])) == ["key"]


class TestStoredTableLoad:
    def test_all_rows_stored(self):
        stored = load_table(2000, 256)
        assert stored.total_rows == 2000

    def test_blocks_respect_target_size_roughly(self):
        stored = load_table(2048, 256)
        sizes = [stored.dfs.peek_block(b).num_rows for b in stored.non_empty_block_ids()]
        assert len(sizes) == 8
        assert max(sizes) <= 2.5 * 256

    def test_sample_retained(self):
        stored = load_table()
        assert "key" in stored.sample and len(stored.sample["key"]) > 0

    def test_single_tree_after_load(self):
        stored = load_table()
        assert stored.num_trees == 1

    def test_block_ownership(self):
        stored = load_table()
        tree_id = next(iter(stored.trees))
        for block_id in stored.block_ids():
            assert stored.tree_of_block(block_id) == tree_id

    def test_unknown_block_ownership_raises(self):
        with pytest.raises(StorageError):
            load_table().tree_of_block(10_000)

    def test_unknown_tree_raises(self):
        with pytest.raises(PartitioningError):
            load_table().tree(99)


class TestLookup:
    def test_lookup_without_predicates_returns_all_non_empty(self):
        stored = load_table()
        assert set(stored.lookup()) == set(stored.non_empty_block_ids())

    def test_lookup_prunes_with_predicate(self):
        stored = load_table(4000, 128)
        pruned = stored.lookup([le("key", 100)])
        assert 0 < len(pruned) < len(stored.non_empty_block_ids())

    def test_lookup_matches_actual_data(self):
        """Rows satisfying a predicate only live in blocks returned by lookup."""
        stored = load_table(4000, 128)
        predicate = between("key", 2000, 2500)
        matching_blocks = set(stored.lookup([predicate]))
        for block_id in stored.non_empty_block_ids():
            block = stored.dfs.peek_block(block_id)
            if block.matching_count([predicate]) > 0:
                assert block_id in matching_blocks

    def test_lookup_can_include_empty_blocks(self):
        stored = load_table()
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=4
        )
        stored.add_empty_tree(tree)
        with_empty = stored.lookup(include_empty=True)
        without_empty = stored.lookup()
        assert len(with_empty) > len(without_empty)


class TestTreeManagement:
    def test_add_empty_tree_creates_empty_blocks(self):
        stored = load_table()
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=4
        )
        tree_id = stored.add_empty_tree(tree)
        assert stored.rows_under_tree(tree_id) == 0
        assert len(stored.block_ids(tree_id)) == 4
        assert stored.num_trees == 2

    def test_tree_for_join_attribute(self):
        stored = load_table()
        assert stored.tree_for_join_attribute("key") is None
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=4
        )
        tree_id = stored.add_empty_tree(tree)
        assert stored.tree_for_join_attribute("key") == tree_id

    def test_tree_row_fractions_sum_to_one(self):
        stored = load_table()
        fractions = stored.tree_row_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_describe_lists_trees(self):
        text = load_table().describe()
        assert "tree 0" in text and "rows" in text


class TestMoveBlocks:
    def make_migrating_table(self):
        stored = load_table(4000, 256)
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=16
        )
        target = stored.add_empty_tree(tree)
        return stored, target

    def test_rows_preserved_across_migration(self):
        stored, target = self.make_migrating_table()
        before = stored.total_rows
        moved = stored.block_ids(0)[:4]
        stats = stored.move_blocks(moved, target)
        assert stored.total_rows == before
        assert stats.rows_moved > 0
        assert 0 < stats.source_blocks <= len(moved)

    def test_key_multiset_preserved_across_migration(self):
        stored, target = self.make_migrating_table()
        def all_keys():
            return np.sort(
                np.concatenate(
                    [
                        stored.dfs.peek_block(b).column("key")
                        for b in stored.non_empty_block_ids()
                    ]
                )
            )
        before = all_keys()
        stored.move_blocks(stored.block_ids(0), target)
        assert np.array_equal(before, all_keys())

    def test_source_blocks_emptied(self):
        stored, target = self.make_migrating_table()
        moved = stored.block_ids(0)[:2]
        stored.move_blocks(moved, target)
        for block_id in moved:
            assert stored.dfs.peek_block(block_id).num_rows == 0

    def test_moving_blocks_already_in_target_is_noop(self):
        stored, target = self.make_migrating_table()
        stats = stored.move_blocks(stored.block_ids(target), target)
        assert stats.source_blocks == 0 and stats.rows_moved == 0

    def test_moved_rows_respect_target_tree_ranges(self):
        stored, target = self.make_migrating_table()
        stored.move_blocks(stored.block_ids(0), target)
        bounds = stored.tree(target).leaf_bounds("key")
        for block_id, (lo, hi) in bounds.items():
            block = stored.dfs.peek_block(block_id)
            if block.num_rows == 0:
                continue
            keys = block.column("key")
            assert keys.min() >= lo and keys.max() <= hi

    def test_full_migration_then_drop_empty_trees(self):
        stored, target = self.make_migrating_table()
        stored.move_blocks(stored.block_ids(0), target)
        removed = stored.drop_empty_trees()
        assert 0 in removed
        assert stored.num_trees == 1
        assert stored.total_rows == 4000

    def test_drop_empty_trees_keeps_at_least_one(self):
        stored = load_table(100, 256)
        # A healthy single-tree table must never lose its only tree.
        assert stored.drop_empty_trees() == []
        assert stored.num_trees == 1


class TestReplaceWithTree:
    def test_replace_rebuilds_single_tree(self):
        stored = load_table(2000, 256)
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=8
        )
        stats = stored.replace_with_tree(tree)
        assert isinstance(stats, RepartitionStats)
        assert stored.num_trees == 1
        assert stored.total_rows == 2000
        assert stored.tree_for_join_attribute("key") is not None

    def test_replace_reports_work(self):
        stored = load_table(2000, 256)
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=8
        )
        stats = stored.replace_with_tree(tree)
        assert stats.rows_moved == 2000
        assert stats.source_blocks > 0
        assert stats.target_blocks_touched == 8


class TestJoinRange:
    def test_join_range_of_block(self):
        stored = load_table()
        block_id = stored.non_empty_block_ids()[0]
        lo, hi = stored.join_range_of_block(block_id, "key")
        block = stored.dfs.peek_block(block_id)
        assert (lo, hi) == block.range_of("key")

    def test_join_range_of_empty_block_is_none(self):
        stored = load_table()
        tree = TwoPhasePartitioner("key", ["other"]).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=2
        )
        tree_id = stored.add_empty_tree(tree)
        empty_block = stored.block_ids(tree_id)[0]
        assert stored.join_range_of_block(empty_block, "key") is None
