"""Tests for repro.common.schema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.schema import Column, DataType, Schema


class TestDataType:
    def test_int_maps_to_int64(self):
        assert DataType.INT.numpy_dtype == np.dtype(np.int64)

    def test_float_maps_to_float64(self):
        assert DataType.FLOAT.numpy_dtype == np.dtype(np.float64)

    def test_date_is_stored_as_integer(self):
        assert DataType.DATE.numpy_dtype == np.dtype(np.int64)

    def test_category_is_stored_as_integer(self):
        assert DataType.CATEGORY.numpy_dtype == np.dtype(np.int64)


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INT)

    def test_columns_are_hashable_value_objects(self):
        assert Column("a", DataType.INT) == Column("a", DataType.INT)
        assert len({Column("a", DataType.INT), Column("a", DataType.INT)}) == 1


class TestSchema:
    def make_schema(self) -> Schema:
        return Schema.of(("id", DataType.INT), ("price", DataType.FLOAT), ("day", DataType.DATE))

    def test_of_builds_ordered_columns(self):
        schema = self.make_schema()
        assert schema.column_names == ["id", "price", "day"]
        assert len(schema) == 3

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("id", DataType.INT), ("id", DataType.FLOAT))

    def test_contains(self):
        schema = self.make_schema()
        assert "price" in schema
        assert "missing" not in schema

    def test_column_lookup(self):
        schema = self.make_schema()
        assert schema.column("price").dtype is DataType.FLOAT

    def test_column_lookup_unknown_raises(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make_schema().column("missing")

    def test_dtype_of(self):
        assert self.make_schema().dtype_of("day") is DataType.DATE

    def test_validate_columns_accepts_matching_arrays(self):
        schema = self.make_schema()
        schema.validate_columns(
            {
                "id": np.arange(5),
                "price": np.ones(5),
                "day": np.zeros(5, dtype=np.int64),
            }
        )

    def test_validate_columns_rejects_missing_column(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError, match="missing"):
            schema.validate_columns({"id": np.arange(5), "price": np.ones(5)})

    def test_validate_columns_rejects_extra_column(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError, match="extra"):
            schema.validate_columns(
                {
                    "id": np.arange(5),
                    "price": np.ones(5),
                    "day": np.zeros(5),
                    "bonus": np.zeros(5),
                }
            )

    def test_validate_columns_rejects_ragged_lengths(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError, match="differing lengths"):
            schema.validate_columns(
                {"id": np.arange(5), "price": np.ones(4), "day": np.zeros(5)}
            )

    def test_validate_columns_rejects_two_dimensional_arrays(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError, match="one-dimensional"):
            schema.validate_columns(
                {"id": np.arange(4).reshape(2, 2), "price": np.ones(2), "day": np.zeros(2)}
            )
