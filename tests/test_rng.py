"""Tests for repro.common.rng."""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED, derive_rng, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(1).integers(0, 1000, 10).tolist() == make_rng(1).integers(0, 1000, 10).tolist()

    def test_different_seeds_differ(self):
        assert make_rng(1).integers(0, 10**9) != make_rng(2).integers(0, 10**9)

    def test_none_uses_default_seed(self):
        assert make_rng(None).integers(0, 10**9) == make_rng(DEFAULT_SEED).integers(0, 10**9)


class TestDeriveRng:
    def test_children_are_deterministic(self):
        a = derive_rng(make_rng(5), "child")
        b = derive_rng(make_rng(5), "child")
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_children_with_different_keys_differ(self):
        parent = make_rng(5)
        a = derive_rng(parent, "a")
        b = derive_rng(parent, "b")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_derivation_advances_parent(self):
        parent = make_rng(5)
        first = derive_rng(parent, "same")
        second = derive_rng(parent, "same")
        assert first.integers(0, 10**9) != second.integers(0, 10**9)


class TestSpawnRngs:
    def test_one_generator_per_key(self):
        children = spawn_rngs(make_rng(9), ["a", "b", "c"])
        assert sorted(children) == ["a", "b", "c"]
        values = {key: child.integers(0, 10**9) for key, child in children.items()}
        assert len(set(values.values())) == 3
