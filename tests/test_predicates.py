"""Tests for repro.common.predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PlanningError
from repro.common.predicates import (
    Operator,
    Predicate,
    between,
    block_may_match,
    eq,
    ge,
    gt,
    isin,
    le,
    lt,
    rows_matching,
)


class TestConstructors:
    def test_eq(self):
        predicate = eq("a", 5)
        assert predicate.op is Operator.EQ and predicate.value == 5

    def test_between_requires_high(self):
        with pytest.raises(PlanningError):
            Predicate("a", Operator.BETWEEN, 1)

    def test_between_constructor_sets_bounds(self):
        predicate = between("a", 2, 7)
        assert (predicate.value, predicate.high) == (2, 7)

    def test_isin_requires_tuple(self):
        with pytest.raises(PlanningError):
            Predicate("a", Operator.IN, [1, 2])  # type: ignore[arg-type]

    def test_isin_constructor(self):
        assert isin("a", (1, 2)).value == (1, 2)


class TestMask:
    values = np.array([1, 3, 5, 7, 9])

    def test_eq_mask(self):
        assert eq("a", 5).mask(self.values).tolist() == [False, False, True, False, False]

    def test_lt_mask(self):
        assert lt("a", 5).mask(self.values).sum() == 2

    def test_le_mask(self):
        assert le("a", 5).mask(self.values).sum() == 3

    def test_gt_mask(self):
        assert gt("a", 5).mask(self.values).sum() == 2

    def test_ge_mask(self):
        assert ge("a", 5).mask(self.values).sum() == 3

    def test_ne_mask(self):
        predicate = Predicate("a", Operator.NE, 3)
        assert predicate.mask(self.values).sum() == 4

    def test_between_mask_is_inclusive(self):
        assert between("a", 3, 7).mask(self.values).tolist() == [False, True, True, True, False]

    def test_isin_mask(self):
        assert isin("a", (1, 9)).mask(self.values).sum() == 2


class TestRangePruning:
    def test_eq_inside_range(self):
        assert eq("a", 5).may_match_range(0, 10)

    def test_eq_outside_range(self):
        assert not eq("a", 50).may_match_range(0, 10)

    def test_lt_requires_range_start_below_value(self):
        assert lt("a", 5).may_match_range(0, 10)
        assert not lt("a", 5).may_match_range(5, 10)

    def test_le_boundary(self):
        assert le("a", 5).may_match_range(5, 10)
        assert not le("a", 4).may_match_range(5, 10)

    def test_gt_requires_range_end_above_value(self):
        assert gt("a", 5).may_match_range(0, 10)
        assert not gt("a", 10).may_match_range(0, 10)

    def test_ge_boundary(self):
        assert ge("a", 10).may_match_range(0, 10)
        assert not ge("a", 11).may_match_range(0, 10)

    def test_between_overlapping(self):
        assert between("a", 5, 15).may_match_range(10, 20)

    def test_between_disjoint(self):
        assert not between("a", 5, 8).may_match_range(10, 20)

    def test_isin_any_member_inside(self):
        assert isin("a", (1, 50)).may_match_range(40, 60)
        assert not isin("a", (1, 2)).may_match_range(40, 60)

    def test_ne_only_excluded_when_range_is_single_value(self):
        predicate = Predicate("a", Operator.NE, 5)
        assert not predicate.may_match_range(5, 5)
        assert predicate.may_match_range(5, 6)

    def test_mask_and_range_agree(self, rng):
        """If may_match_range says no for the data's own min/max, the mask must be empty."""
        values = rng.integers(0, 100, size=200)
        lo, hi = float(values.min()), float(values.max())
        for predicate in (eq("a", 150), lt("a", -5), gt("a", 200), between("a", 150, 180)):
            assert not predicate.may_match_range(lo, hi)
            assert predicate.mask(values).sum() == 0


class TestRowsMatching:
    def test_conjunction(self):
        columns = {"a": np.array([1, 2, 3, 4]), "b": np.array([10, 20, 30, 40])}
        mask = rows_matching(columns, [ge("a", 2), lt("b", 40)])
        assert mask.tolist() == [False, True, True, False]

    def test_empty_predicates_match_everything(self):
        columns = {"a": np.array([1, 2, 3])}
        assert rows_matching(columns, []).all()

    def test_unknown_column_raises(self):
        with pytest.raises(PlanningError):
            rows_matching({"a": np.array([1])}, [eq("b", 1)])

    def test_empty_columns(self):
        assert rows_matching({}, []).size == 0

    def test_empty_columns_with_predicates_fail_loudly(self):
        """A miswired caller that lost its projection must not get an
        all-empty mask back silently."""
        with pytest.raises(PlanningError):
            rows_matching({}, [eq("a", 1)])


class TestBlockMayMatch:
    def test_all_predicates_must_be_satisfiable(self):
        ranges = {"a": (0.0, 10.0), "b": (100.0, 200.0)}
        assert block_may_match(ranges, [le("a", 5), ge("b", 150)])
        assert not block_may_match(ranges, [le("a", 5), ge("b", 250)])

    def test_columns_without_ranges_are_conservative(self):
        assert block_may_match({}, [eq("missing", 1)])
