"""Tests for repro.partitioning.builders (median splits, attribute allocation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PartitioningError
from repro.partitioning.builders import (
    BalancedAttributeAllocator,
    build_median_tree,
    median_cutpoint,
    split_leaf_budget,
)
from repro.partitioning.tree import PartitioningTree


class TestMedianCutpoint:
    def test_splits_into_non_empty_halves(self):
        values = np.array([1, 2, 3, 4, 5, 6])
        cut = median_cutpoint(values)
        assert cut is not None
        assert 0 < (values <= cut).sum() < len(values)

    def test_balanced_for_uniform_values(self):
        values = np.arange(1000)
        cut = median_cutpoint(values)
        left = (values <= cut).sum()
        assert 450 <= left <= 550

    def test_single_value_cannot_split(self):
        assert median_cutpoint(np.array([5])) is None

    def test_constant_values_cannot_split(self):
        assert median_cutpoint(np.array([3, 3, 3, 3])) is None

    def test_skewed_values_still_split(self):
        values = np.array([1] * 99 + [2])
        cut = median_cutpoint(values)
        assert cut == 1
        assert (values <= cut).sum() == 99

    def test_empty_values(self):
        assert median_cutpoint(np.array([])) is None


class TestSplitLeafBudget:
    @pytest.mark.parametrize(
        "total, expected",
        [(2, (1, 1)), (3, (2, 1)), (7, (4, 3)), (8, (4, 4)), (1, (1, 0))],
    )
    def test_budget_split(self, total, expected):
        assert split_leaf_budget(total) == expected


class TestBalancedAttributeAllocator:
    def test_requires_attributes(self):
        with pytest.raises(PartitioningError):
            BalancedAttributeAllocator([])

    def test_prefers_attributes_not_on_path(self):
        allocator = BalancedAttributeAllocator(["a", "b", "c"])
        assert allocator(0, [], np.arange(10)) == "a"
        assert allocator(1, ["a"], np.arange(10)) == "b"
        assert allocator(2, ["a", "b"], np.arange(10)) == "c"

    def test_balances_global_usage(self):
        allocator = BalancedAttributeAllocator(["a", "b"])
        picks = [allocator(0, [], np.arange(4)) for _ in range(10)]
        assert picks.count("a") == picks.count("b") == 5

    def test_usage_tracking(self):
        allocator = BalancedAttributeAllocator(["a", "b"])
        allocator(0, [], np.arange(4))
        allocator(0, [], np.arange(4))
        assert allocator.usage == {"a": 1, "b": 1}


class TestBuildMedianTree:
    def make_sample(self, n: int = 1024):
        rng = np.random.default_rng(0)
        return {
            "a": rng.uniform(0, 100, size=n),
            "b": rng.integers(0, 1000, size=n).astype(float),
        }

    def test_builds_requested_number_of_leaves(self):
        sample = self.make_sample()
        for leaves in (1, 2, 3, 5, 8, 13):
            root = build_median_tree(sample, leaves, lambda d, p, i: "a", ["a", "b"])
            assert PartitioningTree(root=root).num_leaves == leaves

    def test_invalid_leaf_count(self):
        with pytest.raises(PartitioningError):
            build_median_tree(self.make_sample(), 0, lambda d, p, i: "a", ["a"])

    def test_missing_attribute_rejected(self):
        with pytest.raises(PartitioningError):
            build_median_tree(self.make_sample(), 4, lambda d, p, i: "a", ["a", "missing"])

    def test_routes_rows_evenly(self):
        sample = self.make_sample()
        root = build_median_tree(sample, 8, lambda d, p, i: "a", ["a"])
        tree = PartitioningTree(root=root)
        leaves = tree.route_rows(sample)
        counts = np.bincount(leaves, minlength=8)
        assert counts.min() > 0
        assert counts.max() <= 2.5 * counts.min()

    def test_falls_back_when_chosen_attribute_constant(self):
        sample = {"a": np.ones(100), "b": np.arange(100).astype(float)}
        root = build_median_tree(sample, 4, lambda d, p, i: "a", ["a", "b"])
        tree = PartitioningTree(root=root)
        counts = np.bincount(tree.route_rows(sample), minlength=4)
        assert (counts > 0).sum() >= 3  # b-based splits still spread the data

    def test_degenerate_sample_still_builds_tree(self):
        sample = {"a": np.ones(10)}
        root = build_median_tree(sample, 4, lambda d, p, i: "a", ["a"])
        assert PartitioningTree(root=root).num_leaves == 4

    def test_chooser_receives_depth_and_path(self):
        observed: list[tuple[int, tuple[str, ...]]] = []

        def chooser(depth, path, indices):
            observed.append((depth, tuple(path)))
            return "a"

        build_median_tree(self.make_sample(64), 4, chooser, ["a"])
        assert (0, ()) in observed
        assert any(depth == 1 and path == ("a",) for depth, path in observed)
