"""Tests for repro.common.query."""

from __future__ import annotations

import pytest

from repro.common.errors import PlanningError
from repro.common.predicates import eq, gt
from repro.common.query import JoinClause, Query, join_query, scan_query


class TestJoinClause:
    clause = JoinClause("lineitem", "orders", "l_orderkey", "o_orderkey")

    def test_involves(self):
        assert self.clause.involves("lineitem")
        assert self.clause.involves("orders")
        assert not self.clause.involves("part")

    def test_column_for(self):
        assert self.clause.column_for("lineitem") == "l_orderkey"
        assert self.clause.column_for("orders") == "o_orderkey"

    def test_column_for_unknown_table(self):
        with pytest.raises(PlanningError):
            self.clause.column_for("part")

    def test_other_table(self):
        assert self.clause.other_table("lineitem") == "orders"
        assert self.clause.other_table("orders") == "lineitem"

    def test_other_table_unknown(self):
        with pytest.raises(PlanningError):
            self.clause.other_table("part")


class TestQueryValidation:
    def test_requires_at_least_one_table(self):
        with pytest.raises(PlanningError):
            Query(tables=[])

    def test_predicates_must_reference_read_tables(self):
        with pytest.raises(PlanningError):
            Query(tables=["a"], predicates={"b": [eq("x", 1)]})

    def test_joins_must_reference_read_tables(self):
        with pytest.raises(PlanningError):
            Query(tables=["a"], joins=[JoinClause("a", "b", "x", "y")])

    def test_query_ids_are_unique_and_increasing(self):
        first = scan_query("a")
        second = scan_query("a")
        assert second.query_id > first.query_id


class TestQueryAccessors:
    def make_query(self) -> Query:
        return Query(
            tables=["lineitem", "orders", "customer"],
            predicates={
                "lineitem": [gt("l_shipdate", 100), eq("l_returnflag", 1)],
                "orders": [gt("o_orderdate", 50)],
            },
            joins=[
                JoinClause("lineitem", "orders", "l_orderkey", "o_orderkey"),
                JoinClause("orders", "customer", "o_custkey", "c_custkey"),
            ],
            template="q3",
        )

    def test_predicates_on_returns_copy(self):
        query = self.make_query()
        predicates = query.predicates_on("lineitem")
        predicates.clear()
        assert len(query.predicates_on("lineitem")) == 2

    def test_predicates_on_absent_table_is_empty(self):
        assert self.make_query().predicates_on("customer") == []

    def test_joins_involving(self):
        query = self.make_query()
        assert len(query.joins_involving("orders")) == 2
        assert len(query.joins_involving("customer")) == 1

    def test_join_attribute_uses_first_clause(self):
        query = self.make_query()
        assert query.join_attribute("lineitem") == "l_orderkey"
        assert query.join_attribute("orders") == "o_orderkey"
        assert query.join_attribute("customer") == "c_custkey"

    def test_join_attribute_none_for_unjoined_table(self):
        assert scan_query("lineitem").join_attribute("lineitem") is None

    def test_is_join_query(self):
        assert self.make_query().is_join_query
        assert not scan_query("lineitem").is_join_query

    def test_predicate_attributes_deduplicated_in_order(self):
        query = Query(
            tables=["t"],
            predicates={"t": [gt("a", 1), eq("b", 2), gt("a", 3)]},
        )
        assert query.predicate_attributes("t") == ["a", "b"]

    def test_describe_mentions_template_and_joins(self):
        text = self.make_query().describe()
        assert "q3" in text and "lineitem" in text and "o_custkey = customer.c_custkey" in text


class TestConvenienceConstructors:
    def test_scan_query(self):
        query = scan_query("lineitem", [eq("l_returnflag", 1)], template="scan")
        assert query.tables == ["lineitem"]
        assert not query.is_join_query
        assert query.template == "scan"

    def test_join_query(self):
        query = join_query("a", "b", "x", "y", predicates={"a": [eq("x", 1)]})
        assert query.is_join_query
        assert query.join_attribute("a") == "x"
        assert query.join_attribute("b") == "y"
