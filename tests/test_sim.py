"""Tests for the discrete-event cluster simulator (repro.sim).

Covers the simulator core against hand-computed two-machine schedules
(barrier stalls, FIFO first-ready dispatch, bounded repartitioning
bandwidth), event-ordering determinism, the `SimBackend` agreement with the
makespan model on single-query no-contention workloads, and the concurrent
closed-loop workload driver.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.common.errors import ExecutionError
from repro.common.query import join_query, scan_query
from repro.common.rng import make_rng
from repro.core import AdaptDBConfig
from repro.exec import Task, TaskKind, TaskSchedule, compile_plan
from repro.sim import (
    ClusterSimulator,
    background_repartition_schedule,
    run_concurrent_workload,
    task_dependencies,
)
from repro.workloads.tpch_queries import tpch_query


def task(task_id, cost, kind=TaskKind.SCAN, stage=0, join_index=None):
    return Task(
        task_id=task_id, kind=kind, cost_units=cost, stage=stage, join_index=join_index
    )


def schedule_of(num_machines, assignments):
    """Build a TaskSchedule from {machine: [tasks]} without the scheduler."""
    full = {m: list(assignments.get(m, [])) for m in range(num_machines)}
    return TaskSchedule(num_machines=num_machines, assignments=full)


class TestTaskDependencies:
    def test_reduce_depends_on_same_join_maps_only(self):
        tasks = [
            task(0, 1.0, TaskKind.SHUFFLE_MAP, join_index=0),
            task(1, 1.0, TaskKind.SHUFFLE_MAP, join_index=1),
            task(2, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=0),
            task(3, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=1),
            task(4, 1.0),  # scan: no dependencies
        ]
        deps = task_dependencies(tasks)
        assert deps[2] == {0}
        assert deps[3] == {1}
        assert deps[0] == deps[1] == deps[4] == set()

    def test_stage_fallback_without_maps(self):
        """A stage>0 task with no producing maps waits on all lower stages."""
        tasks = [task(0, 1.0), task(1, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=9)]
        deps = task_dependencies(tasks)
        assert deps[1] == {0}


class TestSimulatorCore:
    def test_no_barrier_completion_equals_makespan(self):
        sched = schedule_of(2, {0: [task(0, 4.0)], 1: [task(1, 2.0), task(2, 1.0)]})
        sim = ClusterSimulator(num_machines=2)
        sim.submit(sched)
        report = sim.run()
        assert report.finished_at == pytest.approx(sched.makespan)
        assert report.machine_busy_seconds == pytest.approx([4.0, 3.0])

    def test_barrier_stalls_hand_computed_two_machine_schedule(self):
        """Reduces wait for the slowest producing map; sim > makespan.

        machine 0: map cost 4, then reduce cost 1
        machine 1: map cost 2, then reduce cost 3

        Maps finish at t=4 and t=2.  Both reduces become ready at t=4
        (machine 1 idles from 2 to 4).  Machine 0 finishes 4+1=5, machine 1
        finishes 4+3=7.  The makespan model would report max(5, 5) = 5.
        """
        m0 = task(0, 4.0, TaskKind.SHUFFLE_MAP, join_index=0)
        m1 = task(1, 2.0, TaskKind.SHUFFLE_MAP, join_index=0)
        r0 = task(2, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=0)
        r1 = task(3, 3.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=0)
        sched = schedule_of(2, {0: [m0, r0], 1: [m1, r1]})
        assert sched.makespan == pytest.approx(5.0)
        sim = ClusterSimulator(num_machines=2)
        sim.submit(sched)
        report = sim.run()
        assert report.finished_at == pytest.approx(7.0)
        # Machine 1 was busy 2 (map) + 3 (reduce) = 5 of 7 seconds.
        assert report.machine_busy_seconds == pytest.approx([5.0, 5.0])
        # The reduce on machine 1 waited 0 after ready; queueing counts only
        # runnable-but-waiting time, not barrier time.
        assert report.jobs[0].queueing_seconds == pytest.approx(0.0)

    def test_machine_skips_blocked_task_for_ready_one(self):
        """First-ready dispatch: a ready scan overtakes a blocked reduce."""
        m0 = task(0, 5.0, TaskKind.SHUFFLE_MAP, join_index=0)
        blocked = task(1, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=0)
        ready = task(2, 2.0)
        sched = schedule_of(2, {0: [m0], 1: [blocked, ready]})
        sim = ClusterSimulator(num_machines=2)
        sim.submit(sched)
        report = sim.run()
        # scan runs 0-2, map 0-5, reduce 5-6.
        assert report.finished_at == pytest.approx(6.0)
        starts = {
            task_id: time
            for time, _job, task_id, _machine, kind in sim.event_log
            if kind == "start"
        }
        assert starts[2] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(5.0)

    def test_repartition_bandwidth_serializes_tasks(self):
        jobs = {
            0: [task(0, 4.0, TaskKind.REPARTITION)],
            1: [task(1, 4.0, TaskKind.REPARTITION)],
        }
        unbounded = ClusterSimulator(num_machines=2, repartition_bandwidth=2)
        unbounded.submit(schedule_of(2, jobs))
        assert unbounded.run().finished_at == pytest.approx(4.0)

        bounded = ClusterSimulator(num_machines=2, repartition_bandwidth=1)
        bounded.submit(schedule_of(2, jobs))
        assert bounded.run().finished_at == pytest.approx(8.0)

    def test_repartition_contends_with_query_tasks_for_machines(self):
        """A bandwidth-stalled repartition does not block the machine."""
        repart = task(0, 4.0, TaskKind.REPARTITION)
        other_repart = task(1, 4.0, TaskKind.REPARTITION)
        scan = task(2, 1.0)
        sim = ClusterSimulator(num_machines=2, repartition_bandwidth=1)
        sim.submit(schedule_of(2, {0: [repart], 1: [other_repart, scan]}))
        report = sim.run()
        starts = {
            task_id: time
            for time, _job, task_id, _machine, kind in sim.event_log
            if kind == "start"
        }
        # Machine 1's repartition waits for bandwidth, so its scan runs first.
        assert starts[2] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(4.0)
        assert report.finished_at == pytest.approx(8.0)

    def test_event_order_is_deterministic(self):
        def run_once():
            sim = ClusterSimulator(num_machines=3, repartition_bandwidth=1)
            sim.submit(
                schedule_of(
                    3,
                    {
                        0: [task(0, 2.0, TaskKind.SHUFFLE_MAP, join_index=0),
                            task(3, 1.0, TaskKind.SHUFFLE_REDUCE, stage=1, join_index=0)],
                        1: [task(1, 2.0, TaskKind.REPARTITION), task(4, 2.0)],
                        2: [task(2, 2.0, TaskKind.REPARTITION)],
                    },
                )
            )
            sim.submit(schedule_of(3, {0: [task(0, 1.0)], 1: [task(1, 1.0)]}), arrival=1.0)
            sim.run()
            return list(sim.event_log)

        assert run_once() == run_once()

    def test_concurrent_jobs_interleave_and_each_gets_latency(self):
        sched = schedule_of(1, {0: [task(0, 2.0)]})
        sim = ClusterSimulator(num_machines=1)
        first = sim.submit(sched, arrival=0.0)
        second = sim.submit(schedule_of(1, {0: [task(0, 2.0)]}), arrival=0.0)
        report = sim.run()
        assert first.latency == pytest.approx(2.0)
        assert second.latency == pytest.approx(4.0)
        # The second job's task was runnable at arrival but waited 2s.
        assert second.queueing_seconds == pytest.approx(2.0)
        assert report.finished_at == pytest.approx(4.0)

    def test_empty_job_completes_instantly_and_fires_callback(self):
        completions = []
        sim = ClusterSimulator(num_machines=2)
        def record(job, time):
            completions.append((job.job_id, time))

        sim.on_job_complete = record
        sim.submit(schedule_of(2, {}), arrival=3.0)
        report = sim.run()
        assert completions == [(0, 3.0)]
        assert report.jobs[0].latency == 0.0

    def test_submit_rejects_oversized_schedule(self):
        sim = ClusterSimulator(num_machines=2)
        with pytest.raises(ExecutionError):
            sim.submit(schedule_of(4, {3: [task(0, 1.0)]}))

    def test_utilisation_timeline_bins_cover_busy_time(self):
        sim = ClusterSimulator(num_machines=2)
        sim.submit(schedule_of(2, {0: [task(0, 4.0)], 1: [task(1, 4.0)]}))
        report = sim.run()
        bins = report.utilisation_timeline(bins=4)
        assert bins == pytest.approx([1.0, 1.0, 1.0, 1.0])
        assert report.utilisation() == pytest.approx([1.0, 1.0])


@pytest.fixture
def sim_session(tpch_tables):
    config = AdaptDBConfig(
        rows_per_block=512, buffer_blocks=4, seed=3, execution_backend="simulated"
    )
    session = Session(config=config)
    for name in ("lineitem", "orders", "customer"):
        session.load_table(tpch_tables[name])
    return session


class TestSimBackend:
    def test_selectable_via_config_and_use_backend(self, sim_session):
        assert sim_session.backend.name == "simulated"
        result = sim_session.run(tpch_query("q12", make_rng(1)), adapt=False)
        assert result.sim_seconds > 0.0
        sim_session.use_backend("tasks")
        result = sim_session.run(tpch_query("q12", make_rng(1)), adapt=False)
        assert result.sim_seconds == 0.0
        sim_session.use_backend("simulated")
        result = sim_session.run(tpch_query("q12", make_rng(1)), adapt=False)
        assert result.sim_seconds > 0.0

    def test_agreement_with_makespan_without_barriers(self, sim_session):
        """Scan-only plans have no stage-1 tasks: sim == makespan exactly."""
        result = sim_session.run(scan_query("lineitem"), adapt=False)
        assert result.makespan_seconds > 0.0
        assert result.sim_seconds == pytest.approx(result.makespan_seconds)

    def test_agreement_with_makespan_within_barrier_delta(self, tpch_tables):
        """Shuffle plans: makespan <= sim <= per-stage makespan sum."""
        config = AdaptDBConfig(
            rows_per_block=512, buffer_blocks=4, seed=3,
            execution_backend="simulated", force_join_method="shuffle",
        )
        session = Session(config=config)
        for name in ("lineitem", "orders"):
            session.load_table(tpch_tables[name])
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        physical = session.lower(session.plan(query, adapt=False))
        result = session.execute(physical)
        assert result.sim_seconds >= result.makespan_seconds - 1e-9
        per_stage = {}
        for machine_id, placed in physical.schedule.assignments.items():
            for t in placed:
                key = (t.stage, machine_id)
                per_stage[key] = per_stage.get(key, 0.0) + t.cost_units
        stage_makespans = {}
        for (stage, _machine), load in per_stage.items():
            stage_makespans[stage] = max(stage_makespans.get(stage, 0.0), load)
        barrier_bound = sum(stage_makespans.values())
        assert result.sim_seconds <= barrier_bound + 1e-9

    def test_same_answers_as_task_backend(self, sim_session, tpch_tables):
        query = tpch_query("q3", make_rng(5))
        sim_result = sim_session.run(query, adapt=False)
        config = AdaptDBConfig(
            rows_per_block=512, buffer_blocks=4, seed=3, execution_backend="tasks"
        )
        task_session = Session(config=config)
        for name in ("lineitem", "orders", "customer"):
            task_session.load_table(tpch_tables[name])
        task_result = task_session.run(query, adapt=False)
        assert sim_result.fingerprint() == task_result.fingerprint()
        assert sim_result.output_rows == task_result.output_rows
        assert sim_result.makespan_seconds == pytest.approx(task_result.makespan_seconds)

    def test_simulated_runs_are_deterministic(self, tpch_tables):
        def run_once():
            config = AdaptDBConfig(
                rows_per_block=512, buffer_blocks=4, seed=3,
                execution_backend="simulated",
            )
            session = Session(config=config)
            for name in ("lineitem", "orders"):
                session.load_table(tpch_tables[name])
            result = session.run(tpch_query("q12", make_rng(11)))
            return (
                result.sim_seconds,
                result.sim_queueing_seconds,
                tuple(result.sim_machine_busy_seconds),
            )

        assert run_once() == run_once()


class TestWorkloadDriver:
    def make_clients(self, num_clients=4, per_client=2, seed=9):
        rng = make_rng(seed)
        templates = ["q12", "q3"]
        return [
            [tpch_query(templates[i % len(templates)], rng) for i in range(per_client)]
            for _ in range(num_clients)
        ]

    def build_session(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=3)
        session = Session(config=config)
        for name in ("lineitem", "orders", "customer"):
            session.load_table(tpch_tables[name])
        return session

    def test_report_shape_and_percentiles(self, tpch_tables):
        session = self.build_session(tpch_tables)
        report = run_concurrent_workload(
            session, self.make_clients(), think_seconds=1.0, seed=2
        )
        assert len(report.queries) == 8
        percentiles = report.percentiles()
        assert 0.0 < percentiles["p50"] <= percentiles["p90"] <= percentiles["p99"]
        assert percentiles["max"] >= percentiles["p99"]
        assert all(timing.latency > 0.0 for timing in report.queries)
        assert len(report.utilisation_bins) == 20
        assert report.finished_at >= max(t.finished for t in report.queries)

    def test_deterministic_across_fresh_sessions(self, tpch_tables):
        def run_once():
            session = self.build_session(tpch_tables)
            return run_concurrent_workload(
                session,
                self.make_clients(),
                think_seconds=2.0,
                seed=5,
                background_repartition_blocks=32,
            ).fingerprint()

        assert run_once() == run_once()

    def test_seed_changes_arrivals(self, tpch_tables):
        first = run_concurrent_workload(
            self.build_session(tpch_tables), self.make_clients(),
            think_seconds=2.0, seed=1,
        )
        second = run_concurrent_workload(
            self.build_session(tpch_tables), self.make_clients(),
            think_seconds=2.0, seed=2,
        )
        assert first.fingerprint() != second.fingerprint()

    def test_background_repartitioning_adds_contention(self, tpch_tables):
        quiet = run_concurrent_workload(
            self.build_session(tpch_tables), self.make_clients(),
            think_seconds=1.0, seed=4,
        )
        contended = run_concurrent_workload(
            self.build_session(tpch_tables), self.make_clients(),
            think_seconds=1.0, seed=4, background_repartition_blocks=64,
        )
        assert contended.background_jobs == 1
        assert contended.percentiles()["mean"] > quiet.percentiles()["mean"]
        assert contended.mean_queueing_seconds >= quiet.mean_queueing_seconds

    def test_closed_loop_respects_think_time(self, tpch_tables):
        """A client's next arrival is its previous completion plus think."""
        session = self.build_session(tpch_tables)
        report = run_concurrent_workload(
            session, self.make_clients(num_clients=1, per_client=3),
            think_seconds=5.0, seed=8,
        )
        by_index = {t.index: t for t in report.queries}
        for index in range(1, 3):
            assert by_index[index].arrival >= by_index[index - 1].finished

    def test_rejects_empty_workload(self, tpch_tables):
        session = self.build_session(tpch_tables)
        with pytest.raises(ExecutionError):
            run_concurrent_workload(session, [[]], seed=1)

    def test_background_schedule_spreads_chunks(self):
        from repro.cluster.costmodel import CostModel

        schedule = background_repartition_schedule(
            num_machines=3, blocks=20, cost_model=CostModel(), chunk_blocks=8
        )
        tasks = schedule.tasks
        assert all(t.kind is TaskKind.REPARTITION for t in tasks)
        assert len(tasks) == 3  # 8 + 8 + 4 blocks
        total_cost = sum(t.cost_units for t in tasks)
        assert total_cost == pytest.approx(CostModel().repartition_cost(20))
