"""Tests for repro.join.ilp (the optimal MILP grouping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PlanningError
from repro.join.grouping import bottom_up_grouping, grouping_cost
from repro.join.ilp import ilp_grouping
from repro.join.overlap import compute_overlap_matrix


def example1_overlap() -> np.ndarray:
    return np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=bool)


def small_overlap(rng, num_build=12, num_probe=8) -> np.ndarray:
    starts = rng.uniform(0, 100, size=num_build)
    build = [(float(s), float(s + 25)) for s in starts]
    edges = np.linspace(0, 130, num_probe + 1)
    probe = [(float(lo), float(hi)) for lo, hi in zip(edges, edges[1:])]
    return compute_overlap_matrix(build, probe)


class TestILPGrouping:
    def test_example1_optimum_is_five(self):
        solution = ilp_grouping(example1_overlap(), budget=2)
        assert solution.optimal
        assert solution.grouping.total_probe_reads == 5

    def test_solution_is_valid_grouping(self, rng):
        overlap = small_overlap(rng)
        solution = ilp_grouping(overlap, budget=4)
        solution.grouping.validate(overlap.shape[0], budget=4)

    def test_reported_objective_matches_grouping_cost(self, rng):
        overlap = small_overlap(rng)
        solution = ilp_grouping(overlap, budget=4)
        assert solution.objective == sum(grouping_cost(overlap, solution.grouping.groups))

    def test_ilp_never_worse_than_heuristic_when_optimal(self, rng):
        for _ in range(3):
            overlap = small_overlap(rng)
            solution = ilp_grouping(overlap, budget=3)
            heuristic = bottom_up_grouping(overlap, budget=3)
            if solution.optimal:
                assert solution.grouping.total_probe_reads <= heuristic.total_probe_reads

    def test_exhaustive_optimum_on_tiny_instance(self, rng):
        """Brute-force all assignments of 6 blocks into 2 groups of 3 and compare."""
        from itertools import combinations

        overlap = small_overlap(rng, num_build=6, num_probe=5)
        best = None
        indices = set(range(6))
        for first in combinations(sorted(indices), 3):
            second = tuple(sorted(indices - set(first)))
            cost = sum(grouping_cost(overlap, [list(first), list(second)]))
            best = cost if best is None else min(best, cost)
        solution = ilp_grouping(overlap, budget=3)
        assert solution.optimal
        assert solution.grouping.total_probe_reads == best

    def test_budget_validation(self):
        with pytest.raises(PlanningError):
            ilp_grouping(example1_overlap(), budget=0)

    def test_matrix_validation(self):
        with pytest.raises(PlanningError):
            ilp_grouping(np.zeros(3, dtype=bool), budget=1)

    def test_empty_build_side(self):
        solution = ilp_grouping(np.zeros((0, 4), dtype=bool), budget=2)
        assert solution.optimal and solution.objective == 0.0

    def test_solve_time_reported(self, rng):
        solution = ilp_grouping(small_overlap(rng), budget=4)
        assert solution.solve_seconds >= 0.0

    def test_time_limit_still_returns_a_grouping(self, rng):
        overlap = small_overlap(rng, num_build=16, num_probe=10)
        solution = ilp_grouping(overlap, budget=4, time_limit_seconds=0.5)
        solution.grouping.validate(overlap.shape[0], budget=4)
