"""Tests for repro.adaptive.repartitioner (the per-query adaptation driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.repartitioner import AdaptiveRepartitioner
from repro.cluster import Cluster
from repro.common.predicates import gt
from repro.common.query import join_query, scan_query
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.catalog import Catalog
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable


@pytest.fixture
def catalog():
    """A catalog with lineitem-like and orders-like tables sharing one DFS."""
    rng = np.random.default_rng(4)
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(8))
    catalog = Catalog()

    lineitem_schema = Schema.of(
        ("l_orderkey", DataType.INT), ("l_partkey", DataType.INT), ("l_shipdate", DataType.DATE)
    )
    lineitem = ColumnTable(
        "lineitem",
        lineitem_schema,
        {
            "l_orderkey": rng.integers(0, 2000, size=4096),
            "l_partkey": rng.integers(0, 400, size=4096),
            "l_shipdate": rng.integers(0, 2500, size=4096),
        },
    )
    orders_schema = Schema.of(("o_orderkey", DataType.INT), ("o_orderdate", DataType.DATE))
    orders = ColumnTable(
        "orders",
        orders_schema,
        {
            "o_orderkey": np.arange(2000, dtype=np.int64),
            "o_orderdate": rng.integers(0, 2500, size=2000),
        },
    )
    for table in (lineitem, orders):
        tree = UpfrontPartitioner(table.schema.column_names, 512).build(
            table.sample(), total_rows=table.num_rows
        )
        catalog.register(StoredTable.load(table, dfs, tree, rows_per_block=512))
    return catalog


def q12_like():
    return join_query(
        "lineitem", "orders", "l_orderkey", "o_orderkey",
        predicates={"lineitem": [gt("l_shipdate", 1000)]}, template="q12",
    )


class TestOnQuery:
    def test_join_query_triggers_smooth_repartitioning(self, catalog):
        repartitioner = AdaptiveRepartitioner(window_size=10, rows_per_block=512, rng=make_rng(1))
        report = repartitioner.on_query(catalog, q12_like())
        assert report.trees_created >= 1
        assert report.blocks_repartitioned > 0
        assert "lineitem" in report.per_table_blocks

    def test_window_records_queries(self, catalog):
        repartitioner = AdaptiveRepartitioner(window_size=3, rng=make_rng(1))
        for _ in range(5):
            repartitioner.on_query(catalog, q12_like())
        assert len(repartitioner.window) == 3

    def test_scan_query_does_not_create_trees(self, catalog):
        repartitioner = AdaptiveRepartitioner(
            window_size=10, enable_amoeba=False, rng=make_rng(1)
        )
        report = repartitioner.on_query(catalog, scan_query("lineitem"))
        assert report.trees_created == 0
        assert report.blocks_repartitioned == 0

    def test_unknown_tables_are_ignored(self, catalog):
        repartitioner = AdaptiveRepartitioner(rng=make_rng(1))
        query = join_query("unknown_a", "unknown_b", "x", "y")
        report = repartitioner.on_query(catalog, query)
        assert report.blocks_repartitioned == 0

    def test_disabling_smooth_disables_tree_creation(self, catalog):
        repartitioner = AdaptiveRepartitioner(
            enable_smooth=False, enable_amoeba=False, rng=make_rng(1)
        )
        report = repartitioner.on_query(catalog, q12_like())
        assert report.trees_created == 0
        assert catalog.get("lineitem").tree_for_join_attribute("l_orderkey") is None

    def test_amoeba_contributes_transforms(self, catalog):
        repartitioner = AdaptiveRepartitioner(
            enable_smooth=False, enable_amoeba=True, rng=make_rng(1)
        )
        # The upfront tree's bottom level splits on l_shipdate, so a selective
        # predicate on a *different* hot attribute (l_partkey) makes re-splitting
        # clearly beneficial once enough window queries ask for it.
        selective = join_query(
            "lineitem", "orders", "l_orderkey", "o_orderkey",
            predicates={"lineitem": [gt("l_partkey", 390)]}, template="q12",
        )
        total_transforms = 0
        for _ in range(8):
            report = repartitioner.on_query(catalog, selective)
            total_transforms += report.amoeba_transforms
        assert total_transforms >= 1

    def test_rows_conserved_across_many_queries(self, catalog):
        repartitioner = AdaptiveRepartitioner(window_size=5, rows_per_block=512, rng=make_rng(1))
        before = {name: catalog.get(name).total_rows for name in catalog.table_names}
        for _ in range(15):
            repartitioner.on_query(catalog, q12_like())
        after = {name: catalog.get(name).total_rows for name in catalog.table_names}
        assert before == after

    def test_repeated_queries_converge_to_single_tree(self, catalog):
        repartitioner = AdaptiveRepartitioner(window_size=5, rows_per_block=512, rng=make_rng(1))
        for _ in range(25):
            repartitioner.on_query(catalog, q12_like())
        lineitem = catalog.get("lineitem")
        target = lineitem.tree_for_join_attribute("l_orderkey")
        assert target is not None
        assert lineitem.rows_under_tree(target) / lineitem.total_rows > 0.9

    def test_report_accumulates_per_table(self, catalog):
        repartitioner = AdaptiveRepartitioner(window_size=10, rng=make_rng(1))
        report = repartitioner.on_query(catalog, q12_like())
        assert report.blocks_repartitioned == sum(report.per_table_blocks.values())
