"""Tests for the consolidated experiment runner (repro.experiments.run_all)."""

from __future__ import annotations

from repro.experiments import fig01_copartition, fig07_locality
from repro.experiments.run_all import full_suite, quick_suite, render_report, run_suite


class TestSuites:
    def test_quick_suite_covers_every_figure(self):
        expected = {
            "fig1", "fig7", "fig8", "fig12", "fig13a", "fig13b",
            "fig14", "fig15", "fig16a", "fig16b", "fig17", "fig18",
        }
        assert set(quick_suite()) == expected
        assert set(full_suite()) == expected

    def test_run_suite_records_wall_time(self):
        suite = {
            "fig1": lambda: fig01_copartition.run(scale=0.05, rows_per_block=512),
            "fig7": lambda: fig07_locality.run(scale=0.05),
        }
        results = run_suite(suite)
        assert set(results) == {"fig1", "fig7"}
        for result in results.values():
            assert result.notes["driver_wall_seconds"] >= 0.0

    def test_render_report_contains_tables_and_verdicts(self):
        suite = {
            "fig1": lambda: fig01_copartition.run(scale=0.05, rows_per_block=512),
            "fig7": lambda: fig07_locality.run(scale=0.05),
        }
        report = render_report(run_suite(suite))
        assert "fig1" in report and "fig7" in report
        assert "Verdicts:" in report
        assert "Shuffle Join" in report
