"""Tests for repro.join.grouping (bottom-up, greedy, first-fit block grouping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PlanningError
from repro.join.grouping import (
    GROUPING_ALGORITHMS,
    average_probe_multiplicity,
    bottom_up_grouping,
    first_fit_grouping,
    greedy_grouping,
    group_blocks,
    grouping_cost,
)
from repro.join.overlap import compute_overlap_matrix


def example1_overlap() -> np.ndarray:
    """Example 1 from the paper's introduction (3 build blocks, 3 probe blocks)."""
    return np.array(
        [
            [1, 1, 0],  # A1 joins B1, B2
            [1, 1, 1],  # A2 joins B1, B2, B3
            [0, 1, 1],  # A3 joins B2, B3
        ],
        dtype=bool,
    )


def random_overlap(rng, num_build=32, num_probe=16, width=20.0) -> np.ndarray:
    starts = rng.uniform(0, 100, size=num_build)
    build = [(float(s), float(s + width)) for s in starts]
    edges = np.linspace(0, 100 + width, num_probe + 1)
    probe = [(float(lo), float(hi)) for lo, hi in zip(edges, edges[1:])]
    return compute_overlap_matrix(build, probe)


class TestExample1:
    def test_good_grouping_costs_five(self):
        """Grouping {A1,A2},{A3} reads 5 probe blocks — the paper's optimum."""
        assert sum(grouping_cost(example1_overlap(), [[0, 1], [2]])) == 5

    def test_bad_grouping_costs_six(self):
        """Grouping {A1,A3},{A2} reads 6 probe blocks — the paper's bad example."""
        assert sum(grouping_cost(example1_overlap(), [[0, 2], [1]])) == 6

    def test_bottom_up_finds_the_optimum(self):
        grouping = bottom_up_grouping(example1_overlap(), budget=2)
        assert grouping.total_probe_reads == 5


class TestGroupingValidity:
    @pytest.mark.parametrize("algorithm", sorted(GROUPING_ALGORITHMS))
    @pytest.mark.parametrize("budget", [1, 2, 4, 7, 32])
    def test_every_block_grouped_exactly_once(self, rng, algorithm, budget):
        overlap = random_overlap(rng)
        grouping = group_blocks(overlap, budget, algorithm)
        grouping.validate(overlap.shape[0], budget)

    @pytest.mark.parametrize("algorithm", sorted(GROUPING_ALGORITHMS))
    def test_probe_reads_match_reported_cost(self, rng, algorithm):
        overlap = random_overlap(rng)
        grouping = group_blocks(overlap, 4, algorithm)
        assert grouping.total_probe_reads == sum(grouping_cost(overlap, grouping.groups))

    def test_budget_one_reads_every_overlap(self, rng):
        """With one block per group there is no sharing: cost equals total overlaps."""
        overlap = random_overlap(rng)
        grouping = bottom_up_grouping(overlap, budget=1)
        assert grouping.total_probe_reads == int(overlap.sum())

    def test_budget_covering_all_blocks_reads_each_probe_once(self, rng):
        overlap = random_overlap(rng)
        grouping = bottom_up_grouping(overlap, budget=overlap.shape[0])
        assert grouping.num_groups == 1
        assert grouping.total_probe_reads == int(overlap.any(axis=0).sum())

    def test_invalid_budget_rejected(self, rng):
        with pytest.raises(PlanningError):
            bottom_up_grouping(random_overlap(rng), 0)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(PlanningError):
            bottom_up_grouping(np.zeros(4, dtype=bool), 2)

    def test_unknown_algorithm_rejected(self, rng):
        with pytest.raises(PlanningError):
            group_blocks(random_overlap(rng), 2, "magic")

    def test_empty_relation(self):
        grouping = bottom_up_grouping(np.zeros((0, 5), dtype=bool), 4)
        assert grouping.groups == [] and grouping.total_probe_reads == 0


class TestGroupingQuality:
    def test_bottom_up_beats_or_matches_first_fit_on_average(self, rng):
        """Cost-aware grouping should not lose to naive chunking on sorted-range data."""
        wins = 0
        trials = 10
        for trial in range(trials):
            overlap = random_overlap(rng, num_build=40, num_probe=20)
            # Shuffle build order so first-fit cannot benefit from accidental ordering.
            permutation = rng.permutation(overlap.shape[0])
            shuffled = overlap[permutation]
            smart = bottom_up_grouping(shuffled, 4).total_probe_reads
            naive = first_fit_grouping(shuffled, 4).total_probe_reads
            assert smart <= naive + 2  # never meaningfully worse
            if smart < naive:
                wins += 1
        assert wins >= trials // 2

    def test_greedy_and_bottom_up_are_comparable(self, rng):
        overlap = random_overlap(rng, num_build=40, num_probe=20)
        greedy = greedy_grouping(overlap, 4).total_probe_reads
        bottom_up = bottom_up_grouping(overlap, 4).total_probe_reads
        assert abs(greedy - bottom_up) <= 0.3 * max(greedy, bottom_up)

    def test_larger_budget_never_increases_cost(self, rng):
        overlap = random_overlap(rng, num_build=48, num_probe=24)
        costs = [
            bottom_up_grouping(overlap, budget).total_probe_reads
            for budget in (1, 2, 4, 8, 16, 48)
        ]
        assert all(later <= earlier for earlier, later in zip(costs, costs[1:]))

    def test_co_partitioned_input_reaches_multiplicity_one(self):
        edges = np.linspace(0, 100, 17)
        ranges = [(float(lo), float(hi) - 1e-9) for lo, hi in zip(edges, edges[1:])]
        overlap = compute_overlap_matrix(ranges, ranges)
        grouping = bottom_up_grouping(overlap, 4)
        assert average_probe_multiplicity(overlap, grouping) == pytest.approx(1.0)

    def test_multiplicity_of_empty_problem_is_one(self):
        overlap = np.zeros((0, 0), dtype=bool)
        grouping = bottom_up_grouping(np.zeros((0, 4), dtype=bool), 2)
        assert average_probe_multiplicity(np.zeros((0, 4), dtype=bool), grouping) == 1.0
