"""Shape tests for the experiment drivers (one per paper figure).

Each test runs the corresponding driver at a very small scale and asserts the
qualitative relationship the paper reports — who wins, what trends up or
down — rather than any absolute number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig01_copartition,
    fig07_locality,
    fig08_scaling,
    fig12_tpch,
    fig13_adaptation,
    fig14_buffer,
    fig15_window,
    fig16_levels,
    fig17_ilp,
    fig18_cmt,
)
from repro.experiments.harness import ExperimentResult, Series


class TestHarness:
    def test_series_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_add_and_lookup_series(self):
        result = ExperimentResult("x", "t", "x", "y")
        result.add_series("a", [1, 2], [3.0, 4.0])
        assert result.series_by_label("a").total == 7.0
        with pytest.raises(KeyError):
            result.series_by_label("missing")

    def test_to_table_renders_all_series(self):
        result = ExperimentResult("x", "demo", "param", "value")
        result.add_series("a", [1, 2], [3.0, 4.0])
        result.add_series("b", [1, 2], [5.0, 6.0])
        text = result.to_table()
        assert "demo" in text and "a" in text and "b" in text and "5.0" in text

    def test_summary_totals(self):
        result = ExperimentResult("x", "t", "x", "y")
        result.add_series("a", [1], [2.0])
        assert result.summary() == {"a": 2.0}


class TestFig1:
    def test_co_partitioned_join_is_faster(self):
        result = fig01_copartition.run(scale=0.1, rows_per_block=512)
        runtime = result.series_by_label("runtime")
        shuffle, hyper = runtime.y
        assert hyper < shuffle
        assert result.notes["speedup"] >= 1.5
        assert result.notes["shuffle_output_rows"] == result.notes["hyper_output_rows"]


class TestFig7:
    def test_slowdown_at_low_locality_is_small(self):
        result = fig07_locality.run(scale=0.1)
        times = result.series_by_label("response_time").y
        assert times == sorted(times)  # monotone: less locality is never faster
        assert times[-1] / times[0] < 1.20  # paper: ~18% at 27% locality


class TestFig8:
    def test_runtime_linear_in_dataset_size(self):
        result = fig08_scaling.run(scale=0.2)
        times = result.series_by_label("running_time").y
        assert times == sorted(times)
        assert result.notes["linear_fit_r_squared"] > 0.95


class TestFig12:
    # The shape assertions pin the serial cost model: at these tiny scales
    # the makespan model (the drivers' default) adds scheduling effects that
    # drown the per-template ordering the paper's figures are about.
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_tpch.run(
            scale=0.08, warmup_queries=8, measured_queries=2, templates=["q3", "q12", "q14"],
            runtime_model="serial",
        )

    def test_hyper_join_beats_shuffle_join_everywhere(self, result):
        hyper = result.series_by_label("AdaptDB w/ Hyper-Join").y
        shuffle = result.series_by_label("AdaptDB w/ Shuffle Join").y
        assert all(h < s for h, s in zip(hyper, shuffle))

    def test_adaptdb_beats_amoeba_everywhere(self, result):
        hyper = result.series_by_label("AdaptDB w/ Hyper-Join").y
        amoeba = result.series_by_label("Amoeba").y
        assert all(h < a for h, a in zip(hyper, amoeba))

    def test_adaptdb_beats_pref(self, result):
        hyper = result.series_by_label("AdaptDB w/ Hyper-Join").y
        pref = result.series_by_label("Predicate-based Reference Partitioning").y
        assert all(h < p for h, p in zip(hyper, pref))

    def test_mean_speedup_in_plausible_band(self, result):
        assert 1.2 <= result.notes["mean_speedup_vs_shuffle"] <= 4.0


class TestFig13:
    @pytest.fixture(scope="class")
    def switching(self):
        return fig13_adaptation.run_switching(
            scale=0.06, queries_per_template=5, templates=["q12", "q14", "q3"],
            runtime_model="serial",
        )

    def test_adaptdb_beats_full_scan_overall(self, switching):
        assert switching.notes["improvement_vs_full_scan"] > 1.3

    def test_full_repartitioning_spikes_taller_than_adaptdb(self, switching):
        assert switching.notes["repartitioning_max_spike"] > switching.notes["adaptdb_max_spike"]

    def test_adaptdb_converges_within_each_template_phase(self, switching):
        adaptdb = switching.series_by_label("AdaptDB").y
        # Last query of the first template phase is cheaper than its first query.
        assert adaptdb[4] <= adaptdb[0]

    def test_shifting_workload_shape(self):
        result = fig13_adaptation.run_shifting(
            scale=0.06, transition_length=6, templates=["q12", "q14"],
            runtime_model="serial",
        )
        assert result.notes["improvement_vs_full_scan"] > 1.2

    def test_makespan_runtime_model_changes_series(self):
        kwargs = dict(scale=0.05, queries_per_template=2, templates=["q12", "q14"])
        serial = fig13_adaptation.run_switching(**kwargs, runtime_model="serial")
        makespan = fig13_adaptation.run_switching(**kwargs)  # makespan is the default
        assert serial.notes["runtime_model"] == "serial"
        assert makespan.notes["runtime_model"] == "makespan"
        # The schedule's completion time includes straggler effects the
        # serial model hides, so the two series must not coincide.
        assert serial.series_by_label("AdaptDB").y != makespan.series_by_label("AdaptDB").y


class TestFig14:
    def test_bigger_buffers_read_fewer_probe_blocks(self):
        result = fig14_buffer.run(scale=0.1, rows_per_block=256, buffer_sizes=[1, 2, 4, 8])
        blocks = result.series_by_label("orders_blocks_read").y
        times = result.series_by_label("running_time").y
        assert blocks == sorted(blocks, reverse=True)
        assert times == sorted(times, reverse=True)
        assert blocks[-1] < blocks[0]


class TestFig15:
    def test_small_window_converges_faster(self):
        result = fig15_window.run(scale=0.06, window_sizes=[5, 35])
        assert result.notes["last_adaptation_w5"] <= result.notes["last_adaptation_w35"]

    def test_both_windows_reach_similar_steady_state(self):
        result = fig15_window.run(scale=0.06, window_sizes=[5, 35])
        small = result.series_by_label("Window size (5)").y
        large = result.series_by_label("Window size (35)").y
        assert np.mean(small[25:35]) <= np.mean(large[:10])


class TestFig16:
    def test_with_predicates_interior_minimum_not_at_zero_levels(self):
        result = fig16_levels.run(scale=0.12, rows_per_block=128, with_predicates=True)
        assert result.notes["min_at_orders_levels"] > 0

    def test_without_predicates_more_join_levels_never_hurt_much(self):
        result = fig16_levels.run(scale=0.12, rows_per_block=128, with_predicates=False)
        # In the no-predicate case the paper observes a monotone improvement as
        # more levels are reserved for the join attribute.
        for series in result.series:
            assert series.y[-1] <= series.y[0]
        max_levels_series = result.series[-1].y
        assert max_levels_series[-1] <= max_levels_series[0]


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_ilp.run(
            scale=0.08, lineitem_blocks=24, orders_blocks=8,
            buffer_sizes=[4, 8, 24], ilp_time_limit_seconds=20,
        )

    def test_approximate_is_close_to_ilp(self, result):
        assert result.notes["max_approx_to_ilp_ratio"] <= 1.6

    def test_approximate_runs_much_faster_than_ilp(self, result):
        ilp_ms = result.series_by_label("ILP runtime (ms)").y
        approx_ms = result.series_by_label("Approximate runtime (ms)").y
        assert max(approx_ms) < 100
        assert max(ilp_ms) > max(approx_ms)


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18_cmt.run(scale=0.05, num_queries=30, runtime_model="serial")

    def test_adaptdb_beats_full_scan(self, result):
        assert result.notes["improvement_vs_full_scan"] > 1.3

    def test_adaptdb_approaches_hand_tuned_layout(self, result):
        adaptdb = result.series_by_label("AdaptDB").y
        fixed = result.series_by_label('"Best Guess" Fixed Partitioning').y
        # After convergence (last third of the trace) AdaptDB is within 2x of
        # the hand-tuned static layout.
        tail = slice(2 * len(adaptdb) // 3, None)
        assert np.mean(adaptdb[tail]) <= 2.0 * np.mean(fixed[tail]) + 1.0

    def test_full_repartitioning_has_the_tallest_spike(self, result):
        assert result.notes["repartitioning_max_spike"] >= result.notes["adaptdb_max_spike"]
