"""Tests for the multi-core execution backend (repro.parallel).

The contract under test: the parallel backend executes compiled task
schedules on real worker processes, with block columns shipped through
shared-memory segments, and produces results **bit-identical** to the
in-process task backend — same ``output_rows``, same ``fingerprint()`` —
on scan, shuffle-join and hyper-join workloads, including adaptive
workloads that repartition tables (epoch bumps) mid-stream.  Around that
core: segment lifecycle (no leaks after close, epoch-bumped pins rebuilt,
crashed workers recovered) and the wall-clock reporting fields that
fingerprints must ignore.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.api import Session
from repro.common.epochs import PartitionDelta
from repro.common.predicates import between
from repro.common.query import join_query, scan_query
from repro.core import AdaptDBConfig
from repro.parallel import ParallelBackend, WorkerPool
from repro.parallel.calibrate import fig08_scan_queries, fig13_join_queries
from repro.parallel.pool import ShuffleReducePayload
from repro.common.errors import ExecutionError
from repro.storage.shared_memory import _attach_untracked
from repro.workloads.tpch_queries import tpch_query


def parallel_config(**overrides) -> AdaptDBConfig:
    settings = dict(
        rows_per_block=512,
        buffer_blocks=4,
        window_size=10,
        seed=3,
        num_machines=4,
        num_workers=2,
        execution_backend="parallel",
    )
    settings.update(overrides)
    return AdaptDBConfig(**settings)


def make_session(tpch_tables, **overrides) -> Session:
    session = Session(config=parallel_config(**overrides))
    for name in ("lineitem", "orders", "part"):
        session.load_table(tpch_tables[name])
    return session


@pytest.fixture
def par_session(tpch_tables):
    session = make_session(tpch_tables)
    yield session
    session.close()


def assert_backends_agree(session: Session, query) -> tuple:
    """Plan once, execute on both backends, demand bit-identical results.

    Returns ``(tasks_result, parallel_result)`` for extra assertions.
    """
    physical = session.lower(session.plan(query, adapt=True))
    session.use_backend("tasks")
    tasks_result = session.execute(physical)
    session.use_backend("parallel")
    parallel_result = session.execute(physical)
    assert parallel_result.output_rows == tasks_result.output_rows
    assert parallel_result.fingerprint() == tasks_result.fingerprint()
    return tasks_result, parallel_result


def segment_exists(name: str) -> bool:
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


# --------------------------------------------------------------------- #
# Bit-identical agreement with the in-process task backend
# --------------------------------------------------------------------- #
class TestAgreement:
    def test_fig12_mini_workload_bit_identical(self, par_session):
        """TPC-H template mix (fig12-style), adapting as it runs."""
        rng = np.random.default_rng(42)
        templates = ["q6", "q12", "q14", "q12", "q6"]
        for template in templates:
            assert_backends_agree(par_session, tpch_query(template, rng))

    def test_fig13_switching_workload_bit_identical(self, par_session):
        """Join workload with shifting predicates (fig13-style).

        Runs with adaptation on, so partition trees are rewritten and
        table epochs bump mid-workload; every post-repartition query must
        still match the task backend bit for bit (stale shared-memory
        pins would break this).
        """
        epoch_before = par_session.table("lineitem").epoch
        for query in fig13_join_queries(4) + fig08_scan_queries(2):
            assert_backends_agree(par_session, query)
        # Adaptation must actually have happened for this test to bite.
        assert par_session.table("lineitem").epoch > epoch_before

    def test_num_workers_one_equivalent(self, tpch_tables):
        session = make_session(tpch_tables, num_workers=1)
        try:
            backend = session.backends["parallel"]
            assert backend.num_workers == 1
            for query in fig13_join_queries(1) + fig08_scan_queries(1):
                assert_backends_agree(session, query)
            assert backend.pool is not None
            assert backend.pool.num_workers == 1
        finally:
            session.close()

    def test_spawn_start_method_smoke(self, tpch_tables):
        session = make_session(tpch_tables, worker_start_method="spawn")
        try:
            assert_backends_agree(
                session,
                scan_query("lineitem", [between("l_quantity", 5, 25)]),
            )
            assert_backends_agree(
                session,
                join_query("lineitem", "orders", "l_orderkey", "o_orderkey"),
            )
            assert session.backends["parallel"].pool.start_method == "spawn"
        finally:
            session.close()

    def test_wall_clock_fields_reported_but_not_fingerprinted(self, par_session):
        query = scan_query("lineitem", [between("l_quantity", 10, 30)])
        tasks_result, parallel_result = assert_backends_agree(par_session, query)
        # The task backend never measures wall time; the parallel backend
        # always does — yet the fingerprints above already compared equal.
        assert tasks_result.wall_seconds == 0.0
        assert tasks_result.machine_wall_seconds == []
        assert parallel_result.wall_seconds > 0.0
        assert len(parallel_result.machine_wall_seconds) == 4
        backend = par_session.backends["parallel"]
        assert backend.last_task_records
        assert all(r.wall_seconds >= 0.0 for r in backend.last_task_records)


# --------------------------------------------------------------------- #
# Shared-memory segment lifecycle
# --------------------------------------------------------------------- #
class TestSegmentLifecycle:
    def test_close_unlinks_every_segment(self, tpch_tables):
        session = make_session(tpch_tables)
        session.run(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"))
        backend = session.backends["parallel"]
        segments = [
            backend.store.current_pin(name).segment
            for name in backend.store.pinned_tables
        ]
        assert segments, "executing a join should have pinned tables"
        assert all(segment_exists(segment) for segment in segments)
        session.close()
        assert backend.store.pinned_tables == []
        assert not any(segment_exists(segment) for segment in segments)

    def test_epoch_bump_invalidates_pin(self, par_session):
        query = scan_query("lineitem", [between("l_quantity", 1, 20)])
        par_session.run(query)
        backend = par_session.backends["parallel"]
        table = par_session.table("lineitem")
        stale = backend.store.current_pin("lineitem")
        assert stale is not None and stale.epoch == table.epoch

        table.bump_epoch(PartitionDelta.full_change())
        par_session.run(query)
        fresh = backend.store.current_pin("lineitem")
        assert fresh.epoch == table.epoch
        assert fresh.segment != stale.segment
        assert not segment_exists(stale.segment)
        assert segment_exists(fresh.segment)

    def test_worker_crash_recovers_and_leaks_nothing(self, tpch_tables):
        session = make_session(tpch_tables)
        query = scan_query("lineitem", [between("l_quantity", 5, 40)])
        baseline = session.run(query).fingerprint()
        backend = session.backends["parallel"]
        pool = backend.pool
        os.kill(pool._workers[0].pid, signal.SIGKILL)
        pool._workers[0].join(timeout=5.0)
        assert not pool.alive

        # The next execution transparently restarts the pool...
        assert session.run(query).fingerprint() == baseline
        assert backend.pool is not pool
        assert backend.pool.alive

        # ...and teardown still unlinks every segment.
        segments = [
            backend.store.current_pin(name).segment
            for name in backend.store.pinned_tables
        ]
        session.close()
        assert not any(segment_exists(segment) for segment in segments)

    def test_abandoned_pool_does_not_hang_interpreter_exit(self):
        """A pool dropped without close() must not deadlock at shutdown.

        Regression test: ``__del__`` at interpreter finalization used to
        send queue sentinels, and a first ``put`` on an idle worker's
        queue starts the feeder thread — ``Thread.start()`` deadlocks
        once the interpreter stops admitting new threads.
        """
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "import numpy as np\n"
            "from repro.parallel.pool import WorkerPool, ShuffleReducePayload\n"
            "pool = WorkerPool(2)\n"
            "pool.submit(0, ShuffleReducePayload(0, np.array([1]), np.array([1])))\n"
            "assert pool.collect(1)[0].rows == 1\n"
            "# worker 1 never ran a task; no close() — just exit\n"
        )
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        completed = subprocess.run(
            [sys.executable, "-c", script, src], timeout=60, capture_output=True
        )
        assert completed.returncode == 0, completed.stderr.decode()

    def test_collect_detects_worker_death(self):
        pool = WorkerPool(1)
        try:
            os.kill(pool._workers[0].pid, signal.SIGKILL)
            pool._workers[0].join(timeout=5.0)
            pool.submit(
                0,
                ShuffleReducePayload(
                    task_id=0,
                    build_keys=np.array([1], dtype=np.int64),
                    probe_keys=np.array([1], dtype=np.int64),
                ),
            )
            with pytest.raises(ExecutionError, match="died"):
                pool.collect(1, timeout=10.0)
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# Backend protocol details
# --------------------------------------------------------------------- #
class TestBackendProtocol:
    def test_registered_and_selected_via_config(self, par_session):
        backend = par_session.backends["parallel"]
        assert isinstance(backend, ParallelBackend)
        assert backend.consumes_schedule is True
        assert par_session.backend.name == "parallel"

    def test_pool_starts_lazily(self, tpch_tables):
        session = make_session(tpch_tables)
        try:
            backend = session.backends["parallel"]
            assert backend.pool is None
            session.run(scan_query("lineitem", [between("l_quantity", 1, 10)]))
            assert backend.pool is not None and backend.pool.alive
        finally:
            session.close()

    def test_handles_schedule_elided_plans(self, tpch_tables):
        """Plans lowered for the serial backend re-compile on demand."""
        session = make_session(tpch_tables, execution_backend="serial")
        try:
            query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
            physical = session.lower(session.plan(query, adapt=False))
            assert physical.schedule_elided
            serial_rows = session.execute(physical).output_rows
            session.use_backend("parallel")
            parallel_result = session.execute(physical)
            assert parallel_result.output_rows == serial_rows
        finally:
            session.close()
