"""Tests for repro.adaptive.window (the query window)."""

from __future__ import annotations

import pytest

from repro.adaptive.window import QueryWindow
from repro.common.errors import PlanningError
from repro.common.predicates import eq, gt
from repro.common.query import join_query, scan_query


def l_o_query(template="q12"):
    return join_query(
        "lineitem", "orders", "l_orderkey", "o_orderkey",
        predicates={"lineitem": [gt("l_shipdate", 10)]}, template=template,
    )


def l_p_query(template="q14"):
    return join_query(
        "lineitem", "part", "l_partkey", "p_partkey",
        predicates={"part": [eq("p_brand", 3)]}, template=template,
    )


class TestWindowBasics:
    def test_size_must_be_positive(self):
        with pytest.raises(PlanningError):
            QueryWindow(size=0)

    def test_fifo_eviction(self):
        window = QueryWindow(size=3)
        queries = [scan_query("t", template=f"q{i}") for i in range(5)]
        for query in queries:
            window.add(query)
        assert len(window) == 3
        assert [q.template for q in window.queries] == ["q2", "q3", "q4"]

    def test_iteration_matches_queries(self):
        window = QueryWindow(size=5)
        window.add(l_o_query())
        assert list(window) == window.queries

    def test_clear(self):
        window = QueryWindow(size=5)
        window.add(l_o_query())
        window.clear()
        assert len(window) == 0


class TestWindowAggregates:
    def test_join_attribute_counts_per_table(self):
        window = QueryWindow(size=10)
        for _ in range(3):
            window.add(l_o_query())
        for _ in range(2):
            window.add(l_p_query())
        assert window.join_attribute_counts("lineitem") == {"l_orderkey": 3, "l_partkey": 2}
        assert window.join_attribute_counts("orders") == {"o_orderkey": 3}
        assert window.count_join_attribute("lineitem", "l_partkey") == 2
        assert window.count_join_attribute("lineitem", "l_suppkey") == 0

    def test_scan_queries_do_not_count_join_attributes(self):
        window = QueryWindow(size=10)
        window.add(scan_query("lineitem"))
        assert window.join_attribute_counts("lineitem") == {}

    def test_predicate_attribute_counts(self):
        window = QueryWindow(size=10)
        window.add(l_o_query())
        window.add(l_o_query())
        window.add(l_p_query())
        assert window.predicate_attribute_counts("lineitem") == {"l_shipdate": 2}
        assert window.predicate_attribute_counts("part") == {"p_brand": 1}

    def test_counts_respect_eviction(self):
        window = QueryWindow(size=2)
        window.add(l_o_query())
        window.add(l_p_query())
        window.add(l_p_query())
        assert window.count_join_attribute("lineitem", "l_orderkey") == 0
        assert window.count_join_attribute("lineitem", "l_partkey") == 2

    def test_queries_on_table(self):
        window = QueryWindow(size=10)
        window.add(l_o_query())
        window.add(l_p_query())
        window.add(scan_query("orders"))
        assert len(window.queries_on("lineitem")) == 2
        assert len(window.queries_on("orders")) == 2
        assert len(window.queries_on("customer")) == 0
